open Resa_core
open Resa_algos

let test_single_job () =
  let inst = Instance.of_sizes ~m:4 [ (3, 2) ] in
  let s = Lsrc.run inst in
  Alcotest.(check int) "starts immediately" 0 (Schedule.start s 0);
  Alcotest.(check int) "makespan" 3 (Schedule.makespan inst s)

let test_packs_greedily () =
  let inst = Instance.of_sizes ~m:4 [ (2, 3); (2, 1); (1, 4) ] in
  let s = Lsrc.run inst in
  Alcotest.(check int) "j0 at 0" 0 (Schedule.start s 0);
  Alcotest.(check int) "j1 fits alongside" 0 (Schedule.start s 1);
  Alcotest.(check int) "j2 after both" 2 (Schedule.start s 2);
  Alcotest.(check int) "makespan" 3 (Schedule.makespan inst s)

let test_skips_blocked_head () =
  (* A list algorithm starts later jobs when the next-in-list does not fit:
     the aggressive behaviour distinguishing LSRC from FCFS (paper §2.2). *)
  let inst = Instance.of_sizes ~m:4 [ (2, 3); (2, 2); (2, 1) ] in
  let s = Lsrc.run inst in
  Alcotest.(check int) "wide first" 0 (Schedule.start s 0);
  Alcotest.(check int) "q=2 cannot fit at 0" 2 (Schedule.start s 1);
  Alcotest.(check int) "q=1 jumps the queue" 0 (Schedule.start s 2)

let test_respects_reservation_window () =
  (* Job must not overlap a reservation anywhere in its window. *)
  let inst = Instance.of_sizes ~m:2 ~reservations:[ (2, 2, 2) ] [ (3, 1) ] in
  let s = Lsrc.run inst in
  Alcotest.(check int) "waits for reservation to end" 4 (Schedule.start s 0)

let test_uses_gap_before_reservation () =
  let inst = Instance.of_sizes ~m:2 ~reservations:[ (2, 2, 2) ] [ (2, 2); (1, 1) ] in
  let s = Lsrc.run inst in
  Alcotest.(check int) "fills the gap" 0 (Schedule.start s 0);
  Alcotest.(check int) "short job after first, still before reservation? no: at 4" 4
    (Schedule.start s 1)

let test_partial_availability () =
  (* Narrow reservation leaves room to run alongside. *)
  let inst = Instance.of_sizes ~m:3 ~reservations:[ (0, 4, 2) ] [ (4, 1); (1, 2) ] in
  let s = Lsrc.run inst in
  Alcotest.(check int) "narrow job alongside reservation" 0 (Schedule.start s 0);
  Alcotest.(check int) "wide job after" 4 (Schedule.start s 1)

let test_priority_changes_schedule () =
  let inst, _ = Resa_gen.Adversarial.graham_tight ~m:4 in
  let fifo = Schedule.makespan inst (Lsrc.run ~priority:Priority.Fifo inst) in
  let lpt = Schedule.makespan inst (Lsrc.run ~priority:Priority.Lpt inst) in
  Alcotest.(check int) "FIFO hits the bad case" 7 fifo;
  Alcotest.(check int) "LPT fixes this family" 4 lpt

let test_order_length_checked () =
  let inst = Instance.of_sizes ~m:2 [ (1, 1) ] in
  Alcotest.check_raises "bad length" (Invalid_argument "Lsrc.run_order: order length mismatch")
    (fun () -> ignore (Lsrc.run_order inst [| 0; 0 |]))

let test_empty_instance () =
  let inst = Instance.of_sizes ~m:3 [] in
  let s = Lsrc.run inst in
  Alcotest.(check int) "empty makespan" 0 (Schedule.makespan inst s)

let test_is_greedy_detects_idling () =
  let inst = Instance.of_sizes ~m:2 [ (2, 1); (2, 1) ] in
  let greedy = Schedule.make [| 0; 0 |] in
  let lazy_s = Schedule.make [| 0; 5 |] in
  Alcotest.(check bool) "parallel is greedy" true (Lsrc.is_greedy inst greedy);
  Alcotest.(check bool) "delayed is not greedy" false (Lsrc.is_greedy inst lazy_s)

let test_decision_times () =
  let inst = Instance.of_sizes ~m:2 ~reservations:[ (3, 1, 2) ] [ (2, 1) ] in
  let s = Lsrc.run inst in
  let times = Lsrc.decision_times inst s in
  Alcotest.(check bool) "starts with 0" true (List.mem 0 times);
  Alcotest.(check bool) "contains completion" true (List.mem 2 times)

(* --- properties --- *)

let prop_feasible =
  Tutil.qcheck ~count:200 "LSRC schedules are feasible" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      List.for_all
        (fun p -> Schedule.is_feasible inst (Lsrc.run ~priority:p inst))
        [ Priority.Fifo; Priority.Lpt; Priority.Random seed ])

let prop_greedy =
  Tutil.qcheck ~count:200 "LSRC schedules are greedy (list property)" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      Lsrc.is_greedy inst (Lsrc.run inst))

let prop_graham_on_rigid =
  Tutil.qcheck ~count:150 "LSRC <= (2 - 1/m) * OPT without reservations (Thm 2)" Tutil.seed_arb
    (fun seed ->
      let inst = Tutil.small_rigid_of_seed seed in
      let lsrc = Schedule.makespan inst (Lsrc.run inst) in
      match Resa_exact.Bnb.optimal_makespan ~node_limit:300_000 inst with
      | None -> QCheck.assume_fail ()
      | Some opt ->
        float_of_int lsrc
        <= ((2.0 -. (1.0 /. float_of_int (Instance.m inst))) *. float_of_int opt) +. 1e-9)

let prop_work_conservation =
  Tutil.qcheck "all jobs scheduled exactly once" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      let s = Lsrc.run inst in
      Array.for_all (fun st -> st >= 0) (Schedule.starts s))

let scale_instance c inst =
  (* Multiply every duration and reservation coordinate by [c] — the
     operation that turns the paper's fractional instances into the integer
     ones used here (DESIGN.md §1). *)
  let jobs =
    Array.to_list (Instance.jobs inst)
    |> List.map (fun j -> Job.make ~id:(Job.id j) ~p:(c * Job.p j) ~q:(Job.q j))
  in
  let reservations =
    Array.to_list (Instance.reservations inst)
    |> List.map (fun r ->
           Reservation.make ~id:(Reservation.id r)
             ~start:(c * Reservation.start r)
             ~p:(c * Reservation.p r) ~q:(Reservation.q r))
  in
  Instance.create_exn ~m:(Instance.m inst) ~jobs ~reservations

let prop_time_scaling_invariance =
  (* Justifies the integer-time model: scaling time by c scales every LSRC
     start (hence every ratio) exactly by c. *)
  Tutil.qcheck ~count:150 "LSRC commutes with time scaling" QCheck.(pair Tutil.seed_arb (int_range 2 7))
    (fun (seed, c) ->
      let inst = Tutil.small_resa_of_seed seed in
      let scaled = scale_instance c inst in
      let s = Lsrc.run inst and s' = Lsrc.run scaled in
      Array.for_all2 (fun a b -> c * a = b) (Schedule.starts s) (Schedule.starts s'))

let prop_scaling_other_algorithms =
  Tutil.qcheck ~count:100 "FCFS and backfilling commute with time scaling"
    QCheck.(pair Tutil.seed_arb (int_range 2 5))
    (fun (seed, c) ->
      let inst = Tutil.small_resa_of_seed seed in
      let scaled = scale_instance c inst in
      List.for_all
        (fun (run : Instance.t -> Schedule.t) ->
          Array.for_all2
            (fun a b -> c * a = b)
            (Schedule.starts (run inst))
            (Schedule.starts (run scaled)))
        [ (fun i -> Fcfs.run i); (fun i -> Backfill.conservative i); (fun i -> Backfill.easy i) ])

let prop_lsrc_never_beats_lower_bound =
  Tutil.qcheck "LSRC >= availability-aware lower bound" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      Schedule.makespan inst (Lsrc.run inst) >= Resa_exact.Lower_bounds.best inst)

let suite =
  [
    Alcotest.test_case "single job at time 0" `Quick test_single_job;
    Alcotest.test_case "greedy packing" `Quick test_packs_greedily;
    Alcotest.test_case "jumps blocked list entries" `Quick test_skips_blocked_head;
    Alcotest.test_case "whole window avoids reservations" `Quick test_respects_reservation_window;
    Alcotest.test_case "fills gaps before reservations" `Quick test_uses_gap_before_reservation;
    Alcotest.test_case "runs alongside narrow reservations" `Quick test_partial_availability;
    Alcotest.test_case "priority rules change the outcome" `Quick test_priority_changes_schedule;
    Alcotest.test_case "order length is validated" `Quick test_order_length_checked;
    Alcotest.test_case "empty instance" `Quick test_empty_instance;
    Alcotest.test_case "is_greedy certificate" `Quick test_is_greedy_detects_idling;
    Alcotest.test_case "decision times exposed" `Quick test_decision_times;
    prop_feasible;
    prop_greedy;
    prop_graham_on_rigid;
    prop_work_conservation;
    prop_time_scaling_invariance;
    prop_scaling_other_algorithms;
    prop_lsrc_never_beats_lower_bound;
  ]
