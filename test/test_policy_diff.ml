(* Differential suite: the timeline-native policies must take exactly the
   decisions of the retained Profile-based oracles ([Policy.*_reference],
   the pre-timeline-native engine) — same starts, same makespan, and the
   same traced event stream (plans, wakes, provenance) — on random reserved
   workloads, with exact runtimes and with overestimated walltimes. *)

open Resa_core
open Resa_sim
module Trace = Resa_obs.Trace

let pairs =
  [
    ("FCFS", Policy.fcfs, Policy.fcfs_reference);
    ("CONS", Policy.conservative, Policy.conservative_reference);
    ("EASY", Policy.easy, Policy.easy_reference);
    ("LSRC", Policy.aggressive, Policy.aggressive_reference);
  ]

let starts (t : Simulator.trace) =
  List.map (fun (r : Simulator.record) -> r.start) t.records

(* Random alpha-restricted instance with reservations and poisson arrivals;
   size varies with the seed so queues range from empty to congested. *)
let workload_of_seed seed =
  let rng = Prng.create ~seed in
  let n = 6 + Prng.int rng ~bound:15 in
  let mean_gap = 1.0 +. (float_of_int (Prng.int rng ~bound:40) /. 10.0) in
  let inst = Resa_gen.Random_inst.alpha_restricted rng ~m:8 ~n ~alpha:0.5 ~pmax:9 () in
  let arr = Resa_gen.Arrivals.poisson rng ~n ~mean_gap in
  let subs =
    List.init n (fun i -> Simulator.{ job = Instance.job inst i; submit = arr.(i) })
  in
  (n, subs, Array.to_list (Instance.reservations inst))

let stream obs = String.concat "\n" (List.map Trace.to_json (Trace.contents obs))

let run_traced ~policy ~m ~reservations ~estimates subs =
  let obs = Trace.buffer () in
  let trace = Simulator.run_estimated ~obs ~policy ~m ~reservations ~estimates subs in
  (trace, stream obs)

let agree ~estimates ~reservations subs seed =
  List.for_all
    (fun (name, native, reference) ->
      let a, sa = run_traced ~policy:native ~m:8 ~reservations ~estimates subs in
      let b, sb = run_traced ~policy:reference ~m:8 ~reservations ~estimates subs in
      let ok = starts a = starts b && a.makespan = b.makespan && sa = sb in
      if not ok then Printf.eprintf "%s diverges from its oracle on seed %d\n" name seed;
      ok)
    pairs

let prop_exact =
  Tutil.qcheck ~count:120 "native = oracle on reserved workloads" Tutil.seed_arb
    (fun seed ->
      let _, subs, reservations = workload_of_seed seed in
      let estimates =
        Array.of_list (List.map (fun (s : Simulator.submitted) -> Job.p s.job) subs)
      in
      agree ~estimates ~reservations subs seed)

let prop_overestimated =
  Tutil.qcheck ~count:120 "native = oracle under walltime overestimates"
    QCheck.(pair Tutil.seed_arb Tutil.seed_arb)
    (fun (s1, s2) ->
      let _, subs, reservations = workload_of_seed s1 in
      let erng = Prng.create ~seed:s2 in
      (* Factor 1..4 per job: early releases make decision instants that
         neither engine saw at planning time. *)
      let estimates =
        Array.of_list
          (List.map
             (fun (s : Simulator.submitted) -> Job.p s.job * Prng.int_incl erng ~lo:1 ~hi:4)
             subs)
      in
      agree ~estimates ~reservations subs s1)

(* Deterministic pin: the EASY backfill example must also agree traced —
   guards the checkpoint/commit trial path against silent drift. *)
let test_easy_pinned () =
  let subs =
    [
      Simulator.{ job = Job.make ~id:0 ~p:4 ~q:3; submit = 0 };
      Simulator.{ job = Job.make ~id:1 ~p:4 ~q:4; submit = 0 };
      Simulator.{ job = Job.make ~id:2 ~p:4 ~q:1; submit = 0 };
    ]
  in
  let estimates = [| 4; 4; 4 |] in
  let a, sa = run_traced ~policy:Policy.easy ~m:4 ~reservations:[] ~estimates subs in
  let b, sb =
    run_traced ~policy:Policy.easy_reference ~m:4 ~reservations:[] ~estimates subs
  in
  Alcotest.(check (list int)) "same starts" (starts b) (starts a);
  Alcotest.(check string) "same event stream" sb sa;
  Alcotest.(check (list int)) "expected schedule" [ 0; 4; 0 ] (starts a)

let suite =
  [
    Alcotest.test_case "EASY pinned example agrees traced" `Quick test_easy_pinned;
    prop_exact;
    prop_overestimated;
  ]
