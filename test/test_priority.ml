open Resa_core
open Resa_algos

let inst = Instance.of_sizes ~m:8 [ (5, 2); (1, 7); (5, 1); (3, 3); (1, 2) ]

let order_of p = Array.to_list (Priority.order p inst)

let test_fifo () = Alcotest.(check (list int)) "identity" [ 0; 1; 2; 3; 4 ] (order_of Priority.Fifo)

let test_lpt () =
  Alcotest.(check (list int)) "decreasing p, ties by index" [ 0; 2; 3; 1; 4 ]
    (order_of Priority.Lpt)

let test_spt () =
  Alcotest.(check (list int)) "increasing p, ties by index" [ 1; 4; 3; 0; 2 ]
    (order_of Priority.Spt)

let test_widest () =
  Alcotest.(check (list int)) "decreasing q" [ 1; 3; 0; 4; 2 ] (order_of Priority.Widest_first)

let test_narrowest () =
  Alcotest.(check (list int)) "increasing q" [ 2; 0; 4; 3; 1 ] (order_of Priority.Narrowest_first)

let test_area () =
  (* areas: 10, 7, 5, 9, 2 *)
  Alcotest.(check (list int)) "decreasing area" [ 0; 3; 1; 2; 4 ]
    (order_of Priority.Largest_area_first)

let test_random_deterministic () =
  let a = order_of (Priority.Random 5) and b = order_of (Priority.Random 5) in
  Alcotest.(check (list int)) "same seed, same order" a b;
  let sorted = List.sort Int.compare a in
  Alcotest.(check (list int)) "permutation" [ 0; 1; 2; 3; 4 ] sorted

let test_explicit () =
  Alcotest.(check (list int)) "passthrough" [ 4; 3; 2; 1; 0 ]
    (order_of (Priority.Explicit [| 4; 3; 2; 1; 0 |]))

let test_explicit_rejects () =
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Priority.order: Explicit array is not a permutation of job indices")
    (fun () -> ignore (Priority.order (Priority.Explicit [| 0; 0; 1; 2; 3 |]) inst))

let test_names_distinct () =
  let names = List.map Priority.name Priority.standard in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let prop_always_permutation =
  Tutil.qcheck "every rule yields a permutation" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_rigid_of_seed seed in
      let n = Instance.n_jobs inst in
      List.for_all
        (fun p ->
          let o = Array.to_list (Priority.order p inst) in
          List.sort Int.compare o = List.init n Fun.id)
        (Priority.Random seed :: Priority.standard))

let suite =
  [
    Alcotest.test_case "FIFO is submission order" `Quick test_fifo;
    Alcotest.test_case "LPT sorts by duration" `Quick test_lpt;
    Alcotest.test_case "SPT sorts by duration ascending" `Quick test_spt;
    Alcotest.test_case "widest-first sorts by width" `Quick test_widest;
    Alcotest.test_case "narrowest-first" `Quick test_narrowest;
    Alcotest.test_case "largest-area-first" `Quick test_area;
    Alcotest.test_case "random order is seeded" `Quick test_random_deterministic;
    Alcotest.test_case "explicit order passes through" `Quick test_explicit;
    Alcotest.test_case "explicit order validated" `Quick test_explicit_rejects;
    Alcotest.test_case "standard rule names are distinct" `Quick test_names_distinct;
    prop_always_permutation;
  ]
