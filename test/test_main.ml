(* Test runner: every suite of the repository. *)

let () =
  Alcotest.run "resa"
    [
      ("prng", Test_prng.suite);
      ("profile", Test_profile.suite);
      ("timeline", Test_timeline.suite);
      ("core-types", Test_core_types.suite);
      ("priority", Test_priority.suite);
      ("lsrc", Test_lsrc.suite);
      ("fcfs", Test_fcfs.suite);
      ("backfill", Test_backfill.suite);
      ("shelf", Test_shelf.suite);
      ("online", Test_online.suite);
      ("preemptive", Test_preemptive.suite);
      ("exact", Test_exact.suite);
      ("bnb-diff", Test_bnb_diff.suite);
      ("single-machine", Test_single_machine.suite);
      ("graham", Test_graham.suite);
      ("ratio-bounds", Test_ratio_bounds.suite);
      ("transform", Test_transform.suite);
      ("anomaly", Test_anomaly.suite);
      ("generators", Test_gen.suite);
      ("simulator", Test_sim.suite);
      ("policy-diff", Test_policy_diff.suite);
      ("swf", Test_swf.suite);
      ("stream", Test_stream.suite);
      ("stats", Test_stats.suite);
      ("par", Test_par.suite);
      ("obs", Test_obs.suite);
      ("metrics", Test_metrics.suite);
      ("instance-io", Test_io.suite);
    ]
