open Resa_analysis

let feq = Alcotest.(check (float 1e-9))

let test_upper_bound () =
  feq "alpha=1" 2.0 (Ratio_bounds.upper_bound ~alpha:1.0);
  feq "alpha=0.5" 4.0 (Ratio_bounds.upper_bound ~alpha:0.5);
  feq "alpha=0.25" 8.0 (Ratio_bounds.upper_bound ~alpha:0.25)

let test_prop2_value () =
  (* k = 2/alpha: ratio = k − 1 + 1/k. *)
  feq "alpha=2/3 (k=3)" (3.0 -. 1.0 +. (1.0 /. 3.0)) (Ratio_bounds.prop2_value ~alpha:(2.0 /. 3.0));
  feq "alpha=1/3 (k=6)" (6.0 -. 1.0 +. (1.0 /. 6.0)) (Ratio_bounds.prop2_value ~alpha:(1.0 /. 3.0))

let test_b1_matches_prop2_at_even_points () =
  (* When 2/alpha is an integer, B1 = 2/alpha − 1 + alpha/2. *)
  List.iter
    (fun k ->
      let alpha = 2.0 /. float_of_int k in
      feq (Printf.sprintf "k=%d" k) (Ratio_bounds.prop2_value ~alpha) (Ratio_bounds.b1 ~alpha))
    [ 2; 3; 4; 5; 8; 10 ]

let test_b2_below_b1 () =
  List.iter
    (fun alpha ->
      let b1 = Ratio_bounds.b1 ~alpha and b2 = Ratio_bounds.b2 ~alpha in
      if b2 > b1 +. 1e-9 then Alcotest.failf "B2 %.4f > B1 %.4f at alpha=%.3f" b2 b1 alpha)
    [ 0.1; 0.15; 0.2; 0.3; 0.33; 0.4; 0.5; 0.6; 0.66; 0.75; 0.9; 1.0 ]

let test_bounds_below_upper () =
  List.iter
    (fun alpha ->
      let ub = Ratio_bounds.upper_bound ~alpha in
      if Ratio_bounds.b1 ~alpha > ub +. 1e-9 then
        Alcotest.failf "B1 above the upper bound at alpha=%.3f" alpha)
    [ 0.05; 0.1; 0.2; 0.25; 0.33; 0.5; 0.66; 0.8; 1.0 ]

let test_b2_closed_form () =
  (* alpha = 0.5: ceil(4) = 4, B2 = 4 − 3/4. *)
  feq "alpha=0.5" 3.25 (Ratio_bounds.b2 ~alpha:0.5);
  (* alpha = 0.4: 2/α = 5, B2 = 5 − 4/5. *)
  feq "alpha=0.4" 4.2 (Ratio_bounds.b2 ~alpha:0.4)

let test_graham_prop1 () =
  feq "graham m=1" 1.0 (Ratio_bounds.graham ~m:1);
  feq "graham m=4" 1.75 (Ratio_bounds.graham ~m:4);
  feq "prop1 m(C_opt)=2" 1.5 (Ratio_bounds.prop1_bound ~m_at_opt:2)

let test_figure4_rows () =
  let rows = Ratio_bounds.figure4_rows ~alphas:[ 0.5; 1.0 ] in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let a, ub, b1, b2 = List.hd rows in
  feq "alpha" 0.5 a;
  feq "ub" 4.0 ub;
  feq "b1 at 0.5" (Ratio_bounds.prop2_value ~alpha:0.5) b1;
  feq "b2 at 0.5" 3.25 b2

let test_alpha_validation () =
  Alcotest.check_raises "alpha 0" (Invalid_argument "Ratio_bounds: alpha must be in (0,1]")
    (fun () -> ignore (Ratio_bounds.upper_bound ~alpha:0.0));
  Alcotest.check_raises "alpha > 1" (Invalid_argument "Ratio_bounds: alpha must be in (0,1]")
    (fun () -> ignore (Ratio_bounds.b1 ~alpha:1.5))

let prop_gap_shrinks_with_alpha =
  (* Figure 4's visual claim: upper and lower bounds stay within 1 + α/2 of
     each other — in particular the gap B1..2/α never exceeds 1.5. *)
  Tutil.qcheck "upper/lower gap is small" QCheck.(float_range 0.05 1.0) (fun alpha ->
      Ratio_bounds.upper_bound ~alpha -. Ratio_bounds.b1 ~alpha <= 1.5 +. 1e-9)

let suite =
  [
    Alcotest.test_case "upper bound 2/alpha" `Quick test_upper_bound;
    Alcotest.test_case "Prop 2 value" `Quick test_prop2_value;
    Alcotest.test_case "B1 matches Prop 2 at alpha=2/k" `Quick test_b1_matches_prop2_at_even_points;
    Alcotest.test_case "B2 <= B1" `Quick test_b2_below_b1;
    Alcotest.test_case "lower bounds below upper bound" `Quick test_bounds_below_upper;
    Alcotest.test_case "B2 closed form" `Quick test_b2_closed_form;
    Alcotest.test_case "Graham and Prop 1 values" `Quick test_graham_prop1;
    Alcotest.test_case "Figure 4 rows" `Quick test_figure4_rows;
    Alcotest.test_case "alpha validation" `Quick test_alpha_validation;
    prop_gap_shrinks_with_alpha;
  ]
