open Resa_core
open Resa_algos

let test_head_blocks () =
  (* FCFS: the wide head blocks the narrow follower (no backfilling). *)
  let inst = Instance.of_sizes ~m:4 [ (2, 3); (2, 2); (2, 1) ] in
  let s = Fcfs.run inst in
  Alcotest.(check int) "j0 at 0" 0 (Schedule.start s 0);
  Alcotest.(check int) "j1 waits" 2 (Schedule.start s 1);
  Alcotest.(check int) "j2 does NOT jump (contrast with LSRC)" 2 (Schedule.start s 2)

let test_same_time_allowed () =
  let inst = Instance.of_sizes ~m:4 [ (2, 2); (2, 2) ] in
  let s = Fcfs.run inst in
  Alcotest.(check int) "both at 0" 0 (max (Schedule.start s 0) (Schedule.start s 1))

let test_reservation_respected () =
  let inst = Instance.of_sizes ~m:2 ~reservations:[ (1, 3, 1) ] [ (2, 2) ] in
  let s = Fcfs.run inst in
  Alcotest.(check int) "waits for full width" 4 (Schedule.start s 0)

let test_ratio_m_family () =
  (* §2.2: FCFS has no constant guarantee; ratio approaches m. *)
  let m = 5 and len = 50 in
  let inst, opt = Resa_gen.Adversarial.fcfs_bad ~m ~len in
  let fcfs = Schedule.makespan inst (Fcfs.run inst) in
  Alcotest.(check int) "optimal known" (len + m) opt;
  Alcotest.(check int) "FCFS serialises everything" (m * (len + 1)) fcfs;
  let ratio = float_of_int fcfs /. float_of_int opt in
  Alcotest.(check bool) "ratio beyond 4" true (ratio > 4.0);
  (* LSRC on the same instance stays within its guarantee. *)
  let lsrc = Schedule.makespan inst (Lsrc.run inst) in
  Alcotest.(check bool) "LSRC below 2x opt" true
    (float_of_int lsrc <= 2.0 *. float_of_int opt)

let test_respects_order_certificate () =
  let inst = Instance.of_sizes ~m:4 [ (2, 3); (2, 2); (2, 1) ] in
  let order = Priority.order Priority.Fifo inst in
  let s = Fcfs.run inst in
  Alcotest.(check bool) "FCFS respects order" true (Fcfs.respects_order inst s order);
  let lsrc = Lsrc.run inst in
  Alcotest.(check bool) "LSRC violates FCFS order here" false
    (Fcfs.respects_order inst lsrc order)

let prop_feasible =
  Tutil.qcheck ~count:200 "FCFS schedules are feasible" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      Schedule.is_feasible inst (Fcfs.run inst))

let prop_monotone_starts =
  Tutil.qcheck "starts non-decreasing along queue" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      let order = Priority.order Priority.Fifo inst in
      Fcfs.respects_order inst (Fcfs.run inst) order)

let prop_never_better_than_lsrc_is_false_but_bounded =
  (* FCFS may beat LSRC on some orders or lose badly, but never beats the
     exact lower bound. *)
  Tutil.qcheck "FCFS >= lower bound" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      Schedule.makespan inst (Fcfs.run inst) >= Resa_exact.Lower_bounds.best inst)

let suite =
  [
    Alcotest.test_case "head blocks followers" `Quick test_head_blocks;
    Alcotest.test_case "simultaneous starts allowed" `Quick test_same_time_allowed;
    Alcotest.test_case "reservations respected" `Quick test_reservation_respected;
    Alcotest.test_case "ratio-m adversarial family" `Quick test_ratio_m_family;
    Alcotest.test_case "order certificate" `Quick test_respects_order_certificate;
    prop_feasible;
    prop_monotone_starts;
    prop_never_better_than_lsrc_is_false_but_bounded;
  ]
