(* Randomized differential suite for the speculative exact solver: the
   timeline-native parallel Bnb.solve against its frozen persistent-profile
   oracle twin Bnb.solve_reference, plus the pool bit-identity and
   speculation-hygiene guarantees of DESIGN.md §8. *)

open Resa_core
open Resa_exact

let node_limit = 400_000

let starts inst sched = List.init (Instance.n_jobs inst) (Schedule.start sched)

(* Same makespan and same optimality certificate as the oracle. Schedules may
   legitimately differ (the speculative solver's chain-twin rule dominates
   more nodes), so each solver's schedule is checked for feasibility and for
   achieving its reported makespan instead of being compared start-by-start. *)
let agrees_with_reference name mk seed =
  let inst = mk seed in
  let r = Bnb.solve ~node_limit inst in
  let oracle = Bnb.solve_reference ~node_limit inst in
  Tutil.check_feasible name inst r.Bnb.schedule;
  let ok = ref true in
  let check what b =
    if not b then (Printf.eprintf "%s: %s (seed %d)\n" name what seed; ok := false)
  in
  check "schedule achieves reported makespan"
    (Schedule.makespan inst r.Bnb.schedule = r.Bnb.makespan);
  check "makespan matches reference" (r.Bnb.makespan = oracle.Bnb.makespan);
  check "optimal flag matches reference" (r.Bnb.optimal = oracle.Bnb.optimal);
  !ok

(* The full result record — makespan, optimal, node count, and the schedule's
   start vector — must be bit-identical at any pool size. *)
let pool_bit_identity mk seed =
  let inst = mk seed in
  let solve d = Resa_par.with_domains d (fun () -> Bnb.solve ~node_limit inst) in
  let a = solve 1 and b = solve 4 in
  let ok = ref true in
  let check what cond =
    if not cond then (Printf.eprintf "pool identity: %s (seed %d)\n" what seed; ok := false)
  in
  check "makespan" (a.Bnb.makespan = b.Bnb.makespan);
  check "optimal" (a.Bnb.optimal = b.Bnb.optimal);
  check "nodes" (a.Bnb.nodes = b.Bnb.nodes);
  check "starts" (starts inst a.Bnb.schedule = starts inst b.Bnb.schedule);
  !ok

(* Speculation hygiene: solve must leave every worker timeline fully unwound —
   each checkpoint paired with exactly one rollback — including when the node
   budget cuts the search short mid-descent (the DFS returns instead of
   raising precisely so the unwind still happens). *)
let test_checkpoint_pairing () =
  Resa_obs.Prof.enable ();
  Fun.protect ~finally:Resa_obs.Prof.disable (fun () ->
      let find name =
        match List.assoc_opt name (Resa_obs.Prof.counters ()) with Some v -> v | None -> 0
      in
      let balanced label =
        Alcotest.(check bool) (label ^ ": checkpoints opened") true (find "timeline.checkpoint" > 0);
        Alcotest.(check int)
          (label ^ ": checkpoints all resolved")
          (find "timeline.checkpoint")
          (find "timeline.rollback" + find "timeline.commit")
      in
      Resa_obs.Prof.reset ();
      (* A batch of seeds: some instances are closed at the root by the
         incumbent-vs-lower-bound test, so one instance alone could open no
         speculation scope at all. *)
      for seed = 0 to 30 do
        ignore (Bnb.solve ~node_limit (Tutil.small_resa_of_seed seed))
      done;
      balanced "full solve";
      Resa_obs.Prof.reset ();
      (* A budget small enough to exhaust mid-search on most instances. *)
      ignore (Bnb.solve ~node_limit:10 (Tutil.small_rigid_of_seed 7));
      balanced "budget-exhausted solve")

let suite =
  [
    Tutil.qcheck ~count:300 "solve = reference (rigid)" Tutil.seed_arb
      (agrees_with_reference "bnb-diff rigid" Tutil.small_rigid_of_seed);
    Tutil.qcheck ~count:300 "solve = reference (reservations)" Tutil.seed_arb
      (agrees_with_reference "bnb-diff resa" Tutil.small_resa_of_seed);
    Tutil.qcheck ~count:100 "bit-identical at pool sizes 1 and 4" Tutil.seed_arb
      (pool_bit_identity Tutil.small_resa_of_seed);
    Alcotest.test_case "checkpoint/rollback pairing" `Quick test_checkpoint_pairing;
  ]
