open Resa_core
open Resa_analysis
open Resa_gen

let test_is_non_increasing () =
  Alcotest.(check bool) "figure 2 example" true
    (Transform.is_non_increasing (Adversarial.figure2_example ()));
  let increasing = Instance.of_sizes ~m:4 ~reservations:[ (5, 3, 2) ] [ (1, 1) ] in
  Alcotest.(check bool) "late reservation is increasing" false
    (Transform.is_non_increasing increasing);
  let none = Instance.of_sizes ~m:4 [ (1, 1) ] in
  Alcotest.(check bool) "no reservations is trivially non-increasing" true
    (Transform.is_non_increasing none)

let test_clip_shapes () =
  let inst = Adversarial.figure2_example () in
  (* U: 6 on [0,4), 3 on [4,9), 0 after; m=10. Clip at 6: m' = 10-3 = 7,
     U' = 3 on [0,4), 0 after. *)
  let clipped = Transform.clip inst ~at:6 in
  Alcotest.(check int) "m'" 7 (Instance.m clipped);
  let u = Instance.unavailability clipped in
  Alcotest.(check int) "U' early" 3 (Profile.value_at u 0);
  Alcotest.(check int) "U' mid" 0 (Profile.value_at u 5);
  Alcotest.(check int) "U' late" 0 (Profile.value_at u 20);
  (* Availability agrees with the original before the clip point. *)
  let a = Instance.availability inst and a' = Instance.availability clipped in
  List.iter
    (fun t ->
      Alcotest.(check int) (Printf.sprintf "avail at %d" t) (Profile.value_at a t)
        (Profile.value_at a' t))
    [ 0; 2; 3; 5 ]

let test_to_rigid_head_jobs () =
  let inst = Adversarial.figure2_example () in
  let rigid, n_head = Transform.to_rigid inst in
  Alcotest.(check int) "two availability steps" 2 n_head;
  Alcotest.(check int) "no reservations left" 0 (Instance.n_reservations rigid);
  Alcotest.(check int) "job count" (Instance.n_jobs inst + n_head) (Instance.n_jobs rigid);
  (* Head jobs: q = U_j − U_{j+1}, p = t_{j+1}: (q=3,p=4) and (q=3,p=9). *)
  let h0 = Instance.job rigid 0 and h1 = Instance.job rigid 1 in
  Alcotest.(check (pair int int)) "head 0" (4, 3) (Job.p h0, Job.q h0);
  Alcotest.(check (pair int int)) "head 1" (9, 3) (Job.p h1, Job.q h1)

let test_to_rigid_preserves_lsrc_makespan () =
  (* Proposition 1's key step: with head jobs first, FIFO LSRC yields the
     same makespan on I'' as on I. *)
  let inst = Adversarial.figure2_example () in
  let rigid, n_head = Transform.to_rigid inst in
  let s = Resa_algos.Lsrc.run inst in
  let s'' = Resa_algos.Lsrc.run rigid in
  (* Heads recreate the staircase at time 0. *)
  for j = 0 to n_head - 1 do
    Alcotest.(check int) (Printf.sprintf "head %d at 0" j) 0 (Schedule.start s'' j)
  done;
  Alcotest.(check int) "makespan preserved" (Schedule.makespan inst s)
    (Schedule.makespan rigid s'')

let test_prop1_bound_holds () =
  (* Full Prop 1 statement on the example: LSRC <= (2 − 1/m(C_opt))·C_opt. *)
  let inst = Adversarial.figure2_example () in
  let r = Resa_exact.Bnb.solve inst in
  Alcotest.(check bool) "exact opt available" true r.optimal;
  let m_at_opt = Profile.value_at (Instance.availability inst) r.makespan in
  let bound = Ratio_bounds.prop1_bound ~m_at_opt *. float_of_int r.makespan in
  let lsrc = Schedule.makespan inst (Resa_algos.Lsrc.run inst) in
  Alcotest.(check bool) "within Prop 1 bound" true (float_of_int lsrc <= bound +. 1e-9)

let prop_clip_at_opt_preserves_optimum =
  (* The proof of Proposition 1 claims I and I' = clip(I, C_opt) have the
     same optimum; check it with the exact solver. *)
  Tutil.qcheck ~count:40 "clip at the optimum preserves the optimum" Tutil.seed_arb
    (fun seed ->
      let rng = Prng.create ~seed in
      let inst = Random_inst.non_increasing rng ~m:6 ~n:4 ~pmax:5 ~levels:2 in
      match Resa_exact.Bnb.optimal_makespan ~node_limit:300_000 inst with
      | None -> QCheck.assume_fail ()
      | Some opt ->
        if Instance.m inst - Profile.value_at (Instance.unavailability inst) opt < 1 then true
        else begin
          let clipped = Transform.clip inst ~at:opt in
          match Resa_exact.Bnb.optimal_makespan ~node_limit:300_000 clipped with
          | None -> QCheck.assume_fail ()
          | Some opt' -> opt = opt'
        end)

let test_clip_rejects_increasing () =
  let inst = Instance.of_sizes ~m:4 ~reservations:[ (5, 3, 2) ] [ (1, 1) ] in
  Alcotest.check_raises "must be non-increasing"
    (Invalid_argument "Transform: instance must have non-increasing reservations") (fun () ->
      ignore (Transform.clip inst ~at:3))

let test_three_partition_reduction_yes () =
  let rng = Prng.create ~seed:5 in
  let tp = Threepartition.random_yes rng ~k:3 ~b:10 in
  let inst = Transform.of_three_partition ~xs:tp.Threepartition.xs ~b:10 ~rho:2 in
  Alcotest.(check int) "single machine" 1 (Instance.m inst);
  Alcotest.(check int) "3k jobs" 9 (Instance.n_jobs inst);
  Alcotest.(check int) "k reservations" 3 (Instance.n_reservations inst);
  let target = Transform.three_partition_target ~k:3 ~b:10 in
  Alcotest.(check int) "target value" 32 target;
  (* YES instance: the optimum hits the target exactly. *)
  let r = Resa_exact.Bnb.solve inst in
  Alcotest.(check bool) "optimal" true r.optimal;
  Alcotest.(check int) "achieves target" target r.makespan

let test_three_partition_reduction_no () =
  (* A NO instance: {5,5,5,5,5,5} cannot triple-sum to 14/16 evenly...
     use xs summing to k*b with one oversized element. *)
  (* 4a + 6b never equals 13, so no subset fills a window of length 13 at
     all: a strict NO instance, with every element inside (B/4, B/2) as
     3-PARTITION requires. *)
  let xs = [| 4; 4; 4; 4; 4; 6 |] in
  let tp = Threepartition.make_exn ~xs ~b:13 in
  Alcotest.(check bool) "really a NO instance" false (Threepartition.is_yes tp);
  let inst = Transform.of_three_partition ~xs ~b:13 ~rho:2 in
  let r = Resa_exact.Bnb.solve inst in
  Alcotest.(check bool) "optimal" true r.optimal;
  (* Any schedule pushes some job past the huge final reservation, which
     ends at (ρ+1)·k·(b+1). *)
  Alcotest.(check bool) "pushed past the wall" true (r.makespan > (2 + 1) * 2 * (13 + 1))

let test_reduction_rejects_bad_input () =
  Alcotest.check_raises "sum mismatch"
    (Invalid_argument "Transform.of_three_partition: sum xs must equal k*b") (fun () ->
      ignore (Transform.of_three_partition ~xs:[| 1; 2; 3 |] ~b:10 ~rho:1))

let prop_to_rigid_work_conserved =
  Tutil.qcheck ~count:100 "transformation conserves blocked area as work" Tutil.seed_arb
    (fun seed ->
      let rng = Prng.create ~seed in
      let inst = Random_inst.non_increasing rng ~m:6 ~n:4 ~pmax:5 ~levels:3 in
      let rigid, n_head = Transform.to_rigid inst in
      let u = Instance.unavailability inst in
      let horizon = Instance.horizon inst in
      let blocked_area = Profile.integral_on u ~lo:0 ~hi:(max 1 horizon) in
      let head_work =
        List.fold_left ( + ) 0 (List.init n_head (fun j -> Job.area (Instance.job rigid j)))
      in
      head_work = blocked_area)

let prop_to_rigid_lsrc_simulation =
  (* LSRC on I'' simulates LSRC on I (Prop 1's argument): the head jobs
     recreate the staircase, so the makespans agree up to the staircase end
     (the head jobs themselves run until the horizon). *)
  Tutil.qcheck ~count:100 "LSRC makespan preserved by the transformation" Tutil.seed_arb
    (fun seed ->
      let rng = Prng.create ~seed in
      let inst = Random_inst.non_increasing rng ~m:6 ~n:5 ~pmax:5 ~levels:3 in
      let rigid, _ = Transform.to_rigid inst in
      let horizon = Instance.horizon inst in
      max horizon (Schedule.makespan inst (Resa_algos.Lsrc.run inst))
      = Schedule.makespan rigid (Resa_algos.Lsrc.run rigid))

let suite =
  [
    Alcotest.test_case "non-increasing detection" `Quick test_is_non_increasing;
    Alcotest.test_case "clip reshapes the machine" `Quick test_clip_shapes;
    Alcotest.test_case "head jobs of I''" `Quick test_to_rigid_head_jobs;
    Alcotest.test_case "LSRC makespan preserved (Fig 2)" `Quick test_to_rigid_preserves_lsrc_makespan;
    Alcotest.test_case "Prop 1 bound holds on the example" `Quick test_prop1_bound_holds;
    Alcotest.test_case "clip rejects increasing availability" `Quick test_clip_rejects_increasing;
    Alcotest.test_case "Thm 1 reduction on a YES instance" `Quick test_three_partition_reduction_yes;
    Alcotest.test_case "Thm 1 reduction on a NO instance" `Quick test_three_partition_reduction_no;
    Alcotest.test_case "reduction input validation" `Quick test_reduction_rejects_bad_input;
    prop_to_rigid_work_conserved;
    prop_to_rigid_lsrc_simulation;
    prop_clip_at_opt_preserves_optimum;
  ]
