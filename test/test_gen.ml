(* Generators: Threepartition, Adversarial, Packed, Random_inst, Arrivals. *)

open Resa_core
open Resa_gen

(* --- 3-PARTITION --- *)

let test_tp_validation () =
  (match Threepartition.make ~xs:[| 1; 2 |] ~b:3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-multiple of 3 accepted");
  match Threepartition.make ~xs:[| 1; 2; 3 |] ~b:10 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad sum accepted"

let test_tp_solver_yes () =
  let tp = Threepartition.make_exn ~xs:[| 4; 3; 3; 5; 4; 1 |] ~b:10 in
  match Threepartition.solve tp with
  | None -> Alcotest.fail "solvable instance declared NO"
  | Some groups -> Alcotest.(check bool) "assignment valid" true (Threepartition.check_assignment tp groups)

let test_tp_solver_no () =
  let tp = Threepartition.make_exn ~xs:[| 5; 5; 5; 1; 2; 2 |] ~b:10 in
  Alcotest.(check bool) "NO detected" false (Threepartition.is_yes tp)

let test_tp_random_yes_solvable () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 10 do
    let tp = Threepartition.random_yes rng ~k:4 ~b:15 in
    Alcotest.(check bool) "planted solution found" true (Threepartition.is_yes tp)
  done

let test_tp_check_assignment_rejects () =
  let tp = Threepartition.make_exn ~xs:[| 4; 3; 3; 5; 4; 1 |] ~b:10 in
  Alcotest.(check bool) "wrong grouping rejected" false
    (Threepartition.check_assignment tp [| 0; 0; 0; 0; 1; 1 |])

let prop_random_has_right_sum =
  Tutil.qcheck ~count:50 "random instances have total k*b" Tutil.seed_arb (fun seed ->
      let rng = Prng.create ~seed in
      let tp = Threepartition.random rng ~k:3 ~b:9 in
      Array.fold_left ( + ) 0 tp.Threepartition.xs = 27)

(* --- adversarial families --- *)

let test_prop2_structure () =
  let k = 4 in
  let inst, opt = Adversarial.prop2 ~k in
  Alcotest.(check int) "m" (k * k * (k - 1)) (Instance.m inst);
  Alcotest.(check int) "jobs" ((2 * k) - 1) (Instance.n_jobs inst);
  Alcotest.(check int) "optimal" k opt;
  (* The instance is alpha-restricted for alpha = 2/k. *)
  Alcotest.(check bool) "alpha-restricted" true
    (Instance.is_alpha_restricted inst ~alpha:(Adversarial.prop2_alpha ~k))

let test_prop2_optimum_achievable () =
  (* A witness schedule of makespan k: long jobs at 0, short-wide jobs
     stacked one per unit step. *)
  let k = 4 in
  let inst, opt = Adversarial.prop2 ~k in
  let starts = Array.make (Instance.n_jobs inst) 0 in
  for i = 0 to k - 1 do
    starts.(i) <- i
  done;
  let witness = Schedule.make starts in
  Tutil.check_feasible "witness" inst witness;
  Alcotest.(check int) "achieves the optimum" opt (Schedule.makespan inst witness)

let test_prop2_lsrc_ratio () =
  List.iter
    (fun k ->
      let inst, opt = Adversarial.prop2 ~k in
      let lsrc = Schedule.makespan inst (Resa_algos.Lsrc.run inst) in
      Alcotest.(check int)
        (Printf.sprintf "LSRC value at k=%d" k)
        (Adversarial.prop2_expected_lsrc ~k) lsrc;
      let ratio = float_of_int lsrc /. float_of_int opt in
      let predicted = Resa_analysis.Ratio_bounds.prop2_value ~alpha:(Adversarial.prop2_alpha ~k) in
      Alcotest.(check (float 1e-9)) "ratio = 2/a - 1 + a/2" predicted ratio)
    [ 3; 4; 5; 6; 7 ]

let test_prop2_figure3_numbers () =
  (* Figure 3 is the k=6 member: C_opt = 6, LSRC = 31 (= 5·6+1). *)
  let inst, opt = Adversarial.prop2 ~k:6 in
  Alcotest.(check int) "C_opt = 6" 6 opt;
  Alcotest.(check int) "LSRC = 31" 31 (Schedule.makespan inst (Resa_algos.Lsrc.run inst));
  Alcotest.(check int) "m = 180" 180 (Instance.m inst)

let test_graham_tight_values () =
  List.iter
    (fun m ->
      let inst, opt = Adversarial.graham_tight ~m in
      let lsrc = Schedule.makespan inst (Resa_algos.Lsrc.run inst) in
      Alcotest.(check int) (Printf.sprintf "opt at m=%d" m) m opt;
      Alcotest.(check int) (Printf.sprintf "lsrc at m=%d" m) ((2 * m) - 1) lsrc)
    [ 2; 3; 5; 8 ]

let test_fcfs_bad_values () =
  let inst, opt = Adversarial.fcfs_bad ~m:6 ~len:30 in
  Alcotest.(check int) "opt" 36 opt;
  Alcotest.(check int) "fcfs" (6 * 31) (Schedule.makespan inst (Resa_algos.Fcfs.run inst));
  (* Optimum is achievable. *)
  let starts = Array.make (Instance.n_jobs inst) 0 in
  for i = 0 to 5 do
    starts.(2 * i) <- 0;
    starts.((2 * i) + 1) <- 30 + i
  done;
  let w = Schedule.make starts in
  Tutil.check_feasible "fcfs_bad witness" inst w;
  Alcotest.(check int) "witness achieves opt" opt (Schedule.makespan inst w)

let test_family_parameter_validation () =
  Alcotest.check_raises "prop2 k<3" (Invalid_argument "Adversarial.prop2: k must be >= 3")
    (fun () -> ignore (Adversarial.prop2 ~k:2));
  Alcotest.check_raises "graham m<2" (Invalid_argument "Adversarial.graham_tight: m must be >= 2")
    (fun () -> ignore (Adversarial.graham_tight ~m:1))

(* --- packed generator --- *)

let test_packed_known_optimum () =
  let rng = Prng.create ~seed:11 in
  let p = Packed.generate rng ~m:8 ~c:20 ~target_jobs:25 () in
  Alcotest.(check int) "optimal = c" 20 p.optimal;
  Tutil.check_feasible "witness feasible" p.instance p.witness;
  Alcotest.(check int) "witness achieves c" 20 (Schedule.makespan p.instance p.witness);
  (* Perfect pack: work fills the machine. *)
  Alcotest.(check int) "full area" (8 * 20) (Instance.total_work p.instance)

let test_packed_with_reservations () =
  let rng = Prng.create ~seed:12 in
  let p = Packed.generate rng ~m:8 ~c:20 ~target_jobs:30 ~reservation_fraction:0.3 () in
  Tutil.check_feasible "witness with reservations" p.instance p.witness;
  Alcotest.(check bool) "some reservations made" true (Instance.n_reservations p.instance > 0);
  (* The work bound certifies optimality of the witness. *)
  Alcotest.(check int) "work bound = c" p.optimal (Resa_exact.Lower_bounds.work_bound p.instance)

let prop_packed_lower_bound_tight =
  Tutil.qcheck ~count:60 "packed: work bound certifies the optimum" Tutil.seed_arb (fun seed ->
      let rng = Prng.create ~seed in
      let p = Packed.generate rng ~m:6 ~c:12 ~target_jobs:12 ~reservation_fraction:0.25 () in
      Resa_exact.Lower_bounds.work_bound p.instance = p.optimal
      && Schedule.makespan p.instance p.witness = p.optimal)

let prop_packed_heuristics_within_graham =
  Tutil.qcheck ~count:60 "LSRC within 2-1/m of packed optimum (no reservations)" Tutil.seed_arb
    (fun seed ->
      let rng = Prng.create ~seed in
      let p = Packed.generate rng ~m:6 ~c:12 ~target_jobs:12 () in
      let lsrc = Schedule.makespan p.instance (Resa_algos.Lsrc.run p.instance) in
      float_of_int lsrc <= (2.0 -. (1.0 /. 6.0)) *. float_of_int p.optimal +. 1e-9)

(* --- random instances and arrivals --- *)

let test_alpha_restricted_generator () =
  let rng = Prng.create ~seed:21 in
  for _ = 1 to 10 do
    let inst = Random_inst.alpha_restricted rng ~m:16 ~n:20 ~alpha:0.5 ~pmax:9 () in
    Alcotest.(check bool) "alpha-restricted" true (Instance.is_alpha_restricted inst ~alpha:0.5);
    Alcotest.(check int) "job count" 20 (Instance.n_jobs inst)
  done

let test_cluster_workload_shapes () =
  let rng = Prng.create ~seed:22 in
  let inst = Random_inst.cluster_workload rng ~m:64 ~n:200 ~max_runtime:1000 in
  Alcotest.(check int) "n" 200 (Instance.n_jobs inst);
  Array.iter
    (fun j ->
      if Job.q j > 64 then Alcotest.fail "width above m";
      if Job.p j > 1000 then Alcotest.fail "runtime above max")
    (Instance.jobs inst)

let test_non_increasing_generator () =
  let rng = Prng.create ~seed:23 in
  for _ = 1 to 10 do
    let inst = Random_inst.non_increasing rng ~m:8 ~n:5 ~pmax:6 ~levels:3 in
    Alcotest.(check bool) "staircase" true (Resa_analysis.Transform.is_non_increasing inst);
    Alcotest.(check bool) "one processor always free" true (Instance.umax inst <= 7)
  done

let test_arrivals_poisson_sorted () =
  let rng = Prng.create ~seed:24 in
  let a = Arrivals.poisson rng ~n:50 ~mean_gap:3.0 in
  Alcotest.(check int) "first at zero" 0 a.(0);
  for i = 1 to 49 do
    if a.(i) < a.(i - 1) then Alcotest.fail "not sorted"
  done

let test_arrivals_uniform_sorted_and_bounded () =
  let rng = Prng.create ~seed:25 in
  let a = Arrivals.uniform rng ~n:50 ~horizon:100 in
  Array.iter (fun t -> if t < 0 || t >= 100 then Alcotest.fail "out of horizon") a;
  for i = 1 to 49 do
    if a.(i) < a.(i - 1) then Alcotest.fail "not sorted"
  done

let test_arrivals_bursts () =
  let rng = Prng.create ~seed:26 in
  let a = Arrivals.bursts rng ~n:10 ~burst_size:3 ~gap:7 in
  Alcotest.(check (array int)) "burst pattern" [| 0; 0; 0; 7; 7; 7; 14; 14; 14; 21 |] a

let suite =
  [
    Alcotest.test_case "3-partition validation" `Quick test_tp_validation;
    Alcotest.test_case "3-partition solver on YES" `Quick test_tp_solver_yes;
    Alcotest.test_case "3-partition solver on NO" `Quick test_tp_solver_no;
    Alcotest.test_case "random_yes is always solvable" `Quick test_tp_random_yes_solvable;
    Alcotest.test_case "assignment checker rejects" `Quick test_tp_check_assignment_rejects;
    prop_random_has_right_sum;
    Alcotest.test_case "prop2 structure and alpha" `Quick test_prop2_structure;
    Alcotest.test_case "prop2 optimum achievable" `Quick test_prop2_optimum_achievable;
    Alcotest.test_case "prop2 LSRC ratio formula (Fig 3)" `Quick test_prop2_lsrc_ratio;
    Alcotest.test_case "Figure 3 exact numbers (k=6)" `Quick test_prop2_figure3_numbers;
    Alcotest.test_case "Graham-tight family values" `Quick test_graham_tight_values;
    Alcotest.test_case "FCFS-bad family values" `Quick test_fcfs_bad_values;
    Alcotest.test_case "family parameter validation" `Quick test_family_parameter_validation;
    Alcotest.test_case "packed: known optimum" `Quick test_packed_known_optimum;
    Alcotest.test_case "packed: with reservations" `Quick test_packed_with_reservations;
    prop_packed_lower_bound_tight;
    prop_packed_heuristics_within_graham;
    Alcotest.test_case "alpha-restricted generator" `Quick test_alpha_restricted_generator;
    Alcotest.test_case "cluster workload shapes" `Quick test_cluster_workload_shapes;
    Alcotest.test_case "non-increasing generator" `Quick test_non_increasing_generator;
    Alcotest.test_case "poisson arrivals" `Quick test_arrivals_poisson_sorted;
    Alcotest.test_case "uniform arrivals" `Quick test_arrivals_uniform_sorted_and_bounded;
    Alcotest.test_case "burst arrivals" `Quick test_arrivals_bursts;
  ]
