(* Streaming replay vs the materialising paths: the constant-memory SWF
   reader, the streaming simulator and the incremental metrics must each be
   observationally identical to their batch counterparts — same entries,
   byte-identical event traces, bit-identical summaries. *)

open Resa_core
open Resa_swf
open Resa_sim

(* --- helpers ------------------------------------------------------------ *)

let policies =
  [ Policy.fcfs; Policy.easy; Policy.conservative; Policy.aggressive ]

let synthetic_text seed ~n =
  let rng = Prng.create ~seed in
  Swf.to_string ~comments:[ "oracle" ]
    (Swf.generate rng ~m:32 ~n ~max_runtime:200 ~mean_gap:6.0)

let drain src =
  let rec go acc = match src () with None -> List.rev acc | Some a -> go (a :: acc) in
  go []

let feed (arrivals : Swf_stream.arrival list) =
  let rest = ref arrivals in
  fun () ->
    match !rest with
    | [] -> None
    | a :: tl ->
      rest := tl;
      Some Simulator.{ job = a.Swf_stream.job; submit = a.Swf_stream.submit;
                       estimate = a.Swf_stream.estimate }

(* --- reader: stream vs parse_string ------------------------------------- *)

let stream_matches_batch keep_failed seed =
  let text = synthetic_text seed ~n:25 in
  let streamed = drain (Swf_stream.of_string ~keep_failed ~m:32 text) in
  match Swf.parse_string text with
  | Error _ -> false
  | Ok entries ->
    let batch = Swf.to_estimated_workload ~keep_failed entries ~m:32 in
    let numbers = Swf.job_numbers ~keep_failed entries in
    List.length streamed = List.length batch
    && List.for_all2
         (fun (a : Swf_stream.arrival) (job, submit, estimate) ->
           a.job = job && a.submit = submit && a.estimate = estimate
           && a.job_number = numbers.(Job.id job))
         streamed batch

let prop_reader_oracle =
  Tutil.qcheck ~count:200 "of_string = parse_string |> to_estimated_workload" Tutil.seed_arb
    (stream_matches_batch true)

let prop_reader_oracle_filtered =
  Tutil.qcheck ~count:100 "reader oracle with keep_failed:false" Tutil.seed_arb
    (stream_matches_batch false)

let test_stream_parse_error_line () =
  let text = "; header\n" ^ "1 0 5 100 8 -1 -1 8 120 -1 1 3 1 1 1 1 -1 -1" ^ "\nbad line\n" in
  let src = Swf_stream.of_string ~m:8 text in
  (match src () with Some _ -> () | None -> Alcotest.fail "first entry expected");
  match src () with
  | exception Swf_stream.Parse_error { line; _ } ->
    Alcotest.(check int) "line number" 3 line
  | _ -> Alcotest.fail "Parse_error expected"

let test_stream_file_roundtrip () =
  let text = synthetic_text 7 ~n:20 in
  let path = Filename.temp_file "resa_stream" ".swf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text);
      let from_file = Swf_stream.with_file ~m:32 path drain in
      let from_string = drain (Swf_stream.of_string ~m:32 text) in
      Alcotest.(check int) "same length" (List.length from_string) (List.length from_file);
      if from_file <> from_string then Alcotest.fail "file and string streams differ")

let test_synthetic_shape () =
  let gen () =
    let rng = Prng.create ~seed:11 in
    drain (Swf_stream.synthetic ~overestimate:2.0 rng ~m:64 ~n:500 ~max_runtime:300 ~mean_gap:4.0)
  in
  let xs = gen () in
  Alcotest.(check int) "exactly n arrivals" 500 (List.length xs);
  if gen () <> xs then Alcotest.fail "same seed must replay identically";
  let last = ref 0 in
  List.iteri
    (fun i (a : Swf_stream.arrival) ->
      if Job.id a.job <> i then Alcotest.failf "id %d at position %d" (Job.id a.job) i;
      if a.submit < !last then Alcotest.fail "submits must be non-decreasing";
      last := a.submit;
      if a.estimate < Job.p a.job then Alcotest.fail "estimate below runtime";
      if Job.q a.job < 1 || Job.q a.job > 64 then Alcotest.fail "width out of range")
    xs

(* --- simulator: run_stream vs run_estimated ----------------------------- *)

let arrivals_of_seed seed ~n =
  let rng = Prng.create ~seed in
  drain (Swf_stream.synthetic ~overestimate:2.0 rng ~m:16 ~n ~max_runtime:60 ~mean_gap:3.0)

let engines_agree ~gc_every policy seed =
  let arrivals = arrivals_of_seed seed ~n:30 in
  let subs =
    List.map (fun (a : Swf_stream.arrival) -> Simulator.{ job = a.job; submit = a.submit })
      arrivals
  in
  let estimates =
    Array.of_list (List.map (fun (a : Swf_stream.arrival) -> a.Swf_stream.estimate) arrivals)
  in
  let obs_b = Resa_obs.Trace.buffer () in
  let trace = Simulator.run_estimated ~obs:obs_b ~policy ~m:16 ~estimates subs in
  let obs_s = Resa_obs.Trace.buffer () in
  let records = ref [] in
  let stats =
    Simulator.run_stream ~obs:obs_s ~gc_every ~policy ~m:16
      ~on_record:(fun r -> records := r :: !records)
      (feed arrivals)
  in
  let by_id =
    List.sort (fun (a : Simulator.record) b -> compare (Job.id a.job) (Job.id b.job))
  in
  stats.Simulator.jobs = List.length arrivals
  && stats.Simulator.makespan = trace.Simulator.makespan
  && by_id !records = by_id trace.Simulator.records
  && Resa_obs.Trace.contents obs_s = Resa_obs.Trace.contents obs_b

let engine_props =
  List.concat_map
    (fun (policy : Policy.t) ->
      [
        Tutil.qcheck ~count:150
          (Printf.sprintf "run_stream = run_estimated (%s)" policy.Policy.name)
          Tutil.seed_arb
          (engines_agree ~gc_every:0 policy);
        Tutil.qcheck ~count:60
          (Printf.sprintf "gc_every:1 is invisible (%s)" policy.Policy.name)
          Tutil.seed_arb
          (engines_agree ~gc_every:1 policy);
      ])
    policies

let test_stream_validates_arrivals () =
  let job = Job.make ~id:0 ~p:5 ~q:2 in
  let once a =
    let sent = ref false in
    fun () -> if !sent then None else (sent := true; Some a)
  in
  let run a = ignore (Simulator.run_stream ~policy:Policy.fcfs ~m:4 (once a)) in
  Alcotest.check_raises "negative submit"
    (Invalid_argument "Simulator.run_stream: negative submit time") (fun () ->
      run Simulator.{ job; submit = -1; estimate = 5 });
  Alcotest.check_raises "estimate below runtime"
    (Invalid_argument "Simulator.run_stream: estimate below the actual runtime") (fun () ->
      run Simulator.{ job; submit = 0; estimate = 4 });
  let wide = Job.make ~id:0 ~p:5 ~q:9 in
  Alcotest.check_raises "too wide"
    (Invalid_argument "Simulator.run_stream: job wider than the machine") (fun () ->
      run Simulator.{ job = wide; submit = 0; estimate = 5 })

(* --- metrics: Stream vs summarize --------------------------------------- *)

let bits = Int64.bits_of_float

let summaries_identical (a : Metrics.summary) (b : Metrics.summary) =
  a.n = b.n && a.makespan = b.makespan && a.max_wait = b.max_wait
  && bits a.mean_wait = bits b.mean_wait
  && bits a.mean_slowdown = bits b.mean_slowdown
  && bits a.mean_bounded_slowdown = bits b.mean_bounded_slowdown
  && bits a.utilization = bits b.utilization

let metrics_agree seed =
  let arrivals = arrivals_of_seed seed ~n:40 in
  let ms = Metrics.Stream.create ~m:16 ~reservations:[] () in
  ignore
    (Simulator.run_stream ~policy:Policy.easy ~m:16
       ~on_record:(Metrics.Stream.observe ms) (feed arrivals)
      : Simulator.stream_stats);
  let subs =
    List.map (fun (a : Swf_stream.arrival) -> Simulator.{ job = a.job; submit = a.submit })
      arrivals
  in
  let estimates =
    Array.of_list (List.map (fun (a : Swf_stream.arrival) -> a.Swf_stream.estimate) arrivals)
  in
  let trace = Simulator.run_estimated ~policy:Policy.easy ~m:16 ~estimates subs in
  summaries_identical (Metrics.Stream.summary ms) (Metrics.summarize trace)

let prop_metrics_bitwise =
  Tutil.qcheck ~count:200 "Metrics.Stream = summarize, bit for bit" Tutil.seed_arb metrics_agree

let test_stream_metrics_empty () =
  let ms = Metrics.Stream.create ~m:4 ~reservations:[] () in
  Alcotest.(check int) "no observations" 0 (Metrics.Stream.count ms);
  let s = Metrics.Stream.summary ms in
  Alcotest.(check int) "degenerate n" 0 s.Metrics.n;
  Alcotest.(check bool) "nan utilization" true (Float.is_nan s.Metrics.utilization);
  Alcotest.(check bool) "nan percentile" true (Float.is_nan (Metrics.Stream.wait_p50 ms))

(* --- queue: Jobq vs a list model ---------------------------------------- *)

let jobq_matches_model seed =
  let rng = Prng.create ~seed in
  let q = Jobq.create () in
  let model = ref [] in
  let ok = ref true in
  for i = 0 to 120 do
    (match Prng.int rng ~bound:3 with
    | 0 | 1 ->
      let j = Job.make ~id:i ~p:1 ~q:1 in
      Jobq.append q j;
      model := !model @ [ j ]
    | _ ->
      let bit = Prng.int rng ~bound:2 in
      let keep j = Job.id j land 1 = bit in
      (* A retained view from before the filter must not be corrupted. *)
      let before = Jobq.view q in
      let copy = List.map Fun.id before in
      Jobq.filter q keep;
      if before <> copy then ok := false;
      model := List.filter keep !model);
    if Jobq.view q <> !model || Jobq.length q <> List.length !model then ok := false
  done;
  !ok

let prop_jobq_model =
  Tutil.qcheck ~count:300 "Jobq behaves as a persistent-view FIFO" Tutil.seed_arb
    jobq_matches_model

let suite =
  [
    prop_reader_oracle;
    prop_reader_oracle_filtered;
    Alcotest.test_case "parse errors carry line numbers" `Quick test_stream_parse_error_line;
    Alcotest.test_case "file and string streams agree" `Quick test_stream_file_roundtrip;
    Alcotest.test_case "synthetic stream shape and determinism" `Quick test_synthetic_shape;
    Alcotest.test_case "bad arrivals rejected" `Quick test_stream_validates_arrivals;
    Alcotest.test_case "empty stream metrics are degenerate" `Quick test_stream_metrics_empty;
    prop_metrics_bitwise;
    prop_jobq_model;
  ]
  @ engine_props
