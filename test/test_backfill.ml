open Resa_core
open Resa_algos

let test_conservative_backfills () =
  (* j2 (narrow, short) slides into the hole in front of j1 without delaying
     it: conservative backfilling's defining move. *)
  let inst = Instance.of_sizes ~m:4 [ (2, 3); (2, 4); (2, 1) ] in
  let s = Backfill.conservative inst in
  Alcotest.(check int) "j0 at 0" 0 (Schedule.start s 0);
  Alcotest.(check int) "j1 planned at 2" 2 (Schedule.start s 1);
  Alcotest.(check int) "j2 backfilled at 0" 0 (Schedule.start s 2)

let test_conservative_never_delays () =
  let inst = Instance.of_sizes ~m:4 [ (2, 3); (2, 4); (2, 1); (5, 2); (1, 1) ] in
  let order = Priority.order Priority.Fifo inst in
  let s = Backfill.conservative inst in
  Alcotest.(check bool) "certificate holds" true (Backfill.no_earlier_job_delayed inst order s)

let test_easy_backfills_safely () =
  (* EASY: j2 may run ahead only when the head's guarantee is kept. *)
  let inst = Instance.of_sizes ~m:4 [ (2, 3); (2, 4); (2, 1) ] in
  let s = Backfill.easy inst in
  Alcotest.(check int) "head j1 guaranteed at 2" 2 (Schedule.start s 1);
  Alcotest.(check int) "j2 backfilled" 0 (Schedule.start s 2)

let test_easy_blocks_harmful_backfill () =
  (* A backfill candidate that would push the head must wait. m=4:
     j0 (p=2,q=3) runs first; head j1 (p=2,q=4) guaranteed at 2;
     j2 (p=3,q=1) fits at 0 but would end at 3 > 2, pushing the head. *)
  let inst = Instance.of_sizes ~m:4 [ (2, 3); (2, 4); (3, 1) ] in
  let s = Backfill.easy inst in
  Alcotest.(check int) "head stays at 2" 2 (Schedule.start s 1);
  Alcotest.(check bool) "j2 not backfilled at 0" true (Schedule.start s 2 > 0)

let test_conservative_allows_what_easy_blocks () =
  (* Same instance: conservative also refuses (it would delay j1). *)
  let inst = Instance.of_sizes ~m:4 [ (2, 3); (2, 4); (3, 1) ] in
  let s = Backfill.conservative inst in
  Alcotest.(check int) "conservative places j2 after head" 4 (Schedule.start s 2)

let test_backfill_around_reservation () =
  let inst = Instance.of_sizes ~m:4 ~reservations:[ (2, 2, 4) ] [ (2, 2); (6, 2); (1, 1) ] in
  let s = Backfill.conservative inst in
  Tutil.check_feasible "conservative around reservation" inst s;
  Alcotest.(check int) "j0 before the reservation" 0 (Schedule.start s 0);
  Alcotest.(check int) "j1 after it" 4 (Schedule.start s 1);
  Alcotest.(check int) "j2 squeezed in front" 0 (Schedule.start s 2)

let test_aggressiveness_ordering_example () =
  (* On the Graham-tight family: FCFS = conservative = EASY = LSRC makespans
     may differ; check the documented ordering on this instance. *)
  let inst, _opt = Resa_gen.Adversarial.fcfs_bad ~m:4 ~len:10 in
  let c name s = (name, Schedule.makespan inst s) in
  let results =
    [
      c "fcfs" (Fcfs.run inst);
      c "cons" (Backfill.conservative inst);
      c "easy" (Backfill.easy inst);
      c "lsrc" (Lsrc.run inst);
    ]
  in
  let get n = List.assoc n results in
  Alcotest.(check bool) "backfilling helps here" true (get "cons" < get "fcfs");
  Alcotest.(check bool) "EASY at least as aggressive" true (get "easy" <= get "cons")

let prop_conservative_feasible =
  Tutil.qcheck ~count:200 "conservative schedules feasible" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      Schedule.is_feasible inst (Backfill.conservative inst))

let prop_easy_feasible =
  Tutil.qcheck ~count:200 "EASY schedules feasible" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      Schedule.is_feasible inst (Backfill.easy inst))

let prop_conservative_certificate =
  Tutil.qcheck ~count:150 "conservative never delays earlier jobs" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      let order = Priority.order Priority.Fifo inst in
      Backfill.no_earlier_job_delayed inst order (Backfill.conservative_order inst order))

let prop_conservative_head_equals_fcfs_head =
  (* The first job of the queue starts at the same instant under FCFS and
     conservative backfilling. *)
  Tutil.qcheck "first queued job identical under FCFS and conservative" Tutil.seed_arb
    (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      Instance.n_jobs inst = 0
      || Schedule.start (Fcfs.run inst) 0 = Schedule.start (Backfill.conservative inst) 0)

let prop_backfillers_above_lower_bound =
  Tutil.qcheck ~count:150 "backfilling variants respect the exact lower bound" Tutil.seed_arb
    (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      let lb = Resa_exact.Lower_bounds.best inst in
      Schedule.makespan inst (Backfill.easy inst) >= lb
      && Schedule.makespan inst (Backfill.conservative inst) >= lb)

let suite =
  [
    Alcotest.test_case "conservative backfills holes" `Quick test_conservative_backfills;
    Alcotest.test_case "conservative never delays" `Quick test_conservative_never_delays;
    Alcotest.test_case "EASY backfills safely" `Quick test_easy_backfills_safely;
    Alcotest.test_case "EASY blocks harmful backfill" `Quick test_easy_blocks_harmful_backfill;
    Alcotest.test_case "conservative places after head" `Quick test_conservative_allows_what_easy_blocks;
    Alcotest.test_case "backfilling around reservations" `Quick test_backfill_around_reservation;
    Alcotest.test_case "aggressiveness ordering example" `Quick test_aggressiveness_ordering_example;
    prop_conservative_feasible;
    prop_easy_feasible;
    prop_conservative_certificate;
    prop_conservative_head_equals_fcfs_head;
    prop_backfillers_above_lower_bound;
  ]
