(* Differential suite for the deterministic executor: every combinator
   must produce bit-identical results at domain counts {1, 2, 4}, PRNG
   streams included; exceptions must propagate deterministically; and a
   real campaign table must render to the same string both ways. *)

open Resa_core

let domain_counts = [ 1; 2; 4 ]

let test_parallel_map_matches_sequential () =
  let input = Array.init 53 (fun i -> i - 7) in
  let f x = (x * x) + (3 * x) - 1 in
  let expect = Array.map f input in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "map equal at domains=%d" d)
        expect
        (Resa_par.parallel_map ~domains:d f input))
    domain_counts

let test_parallel_map_list () =
  let input = List.init 17 string_of_int in
  List.iter
    (fun d ->
      Alcotest.(check (list string))
        (Printf.sprintf "map_list keeps order at domains=%d" d)
        (List.map (fun s -> s ^ "!") input)
        (Resa_par.parallel_map_list ~domains:d (fun s -> s ^ "!") input))
    domain_counts

let test_empty_inputs () =
  List.iter
    (fun d ->
      Alcotest.(check (array int)) "empty map" [||] (Resa_par.parallel_map ~domains:d (fun x -> x) [||]);
      Alcotest.(check int) "empty replicates" 0
        (Array.length
           (Resa_par.parallel_replicates ~domains:d (Prng.create ~seed:1) ~n:0 (fun _ i -> i)));
      Alcotest.(check int) "empty reduce" 42
        (Resa_par.parallel_for_reduce ~domains:d ~lo:3 ~hi:3 ~init:42 ~f:(fun i -> i)
           ~combine:( + ) ()))
    domain_counts

let test_reduce_fixed_order () =
  (* String concatenation is non-commutative: any reduction-order drift
     across domain counts changes the bytes. *)
  let expect =
    List.fold_left (fun acc i -> acc ^ string_of_int i ^ ";") "" (List.init 25 (fun i -> i))
  in
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Printf.sprintf "reduction order fixed at domains=%d" d)
        expect
        (Resa_par.parallel_for_reduce ~domains:d ~lo:0 ~hi:25 ~init:""
           ~f:(fun i -> string_of_int i ^ ";")
           ~combine:( ^ ) ()))
    domain_counts

let test_replicates_prng_stream_equality () =
  let n = 16 in
  let draws rng = (Prng.int rng ~bound:1_000_000, Prng.int rng ~bound:1_000_000) in
  (* Sequential reference: split the generators in ascending order, then
     run the replicates one by one. *)
  let expect =
    let rng = Prng.create ~seed:99 in
    let rngs = Array.make n rng in
    for i = 0 to n - 1 do
      rngs.(i) <- Prng.split rng
    done;
    Array.to_list (Array.mapi (fun i r -> (i, draws r)) rngs)
  in
  List.iter
    (fun d ->
      let got =
        Resa_par.parallel_replicates ~domains:d (Prng.create ~seed:99) ~n (fun r i ->
            (i, draws r))
      in
      Alcotest.(check (list (pair int (pair int int))))
        (Printf.sprintf "replicate streams at domains=%d" d)
        expect (Array.to_list got))
    domain_counts;
  (* The outer generator must be advanced identically too. *)
  let advance d =
    let rng = Prng.create ~seed:7 in
    ignore (Resa_par.parallel_replicates ~domains:d rng ~n:5 (fun _ i -> i));
    Prng.int rng ~bound:1_000_000
  in
  let reference = advance 1 in
  List.iter
    (fun d ->
      Alcotest.(check int)
        (Printf.sprintf "outer generator state at domains=%d" d)
        reference (advance d))
    domain_counts

let test_replicate_streams_disjoint () =
  let outs =
    Resa_par.parallel_replicates ~domains:2 (Prng.create ~seed:5) ~n:12 (fun r _ ->
        Prng.int r ~bound:1_000_000_000)
  in
  let sorted = List.sort_uniq compare (Array.to_list outs) in
  Alcotest.(check int) "replicates draw from disjoint streams" 12 (List.length sorted)

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun d ->
      (* Two failing tasks: the lowest index wins deterministically. *)
      let raised =
        try
          ignore
            (Resa_par.parallel_map ~domains:d
               (fun i -> if i = 5 || i = 11 then raise (Boom i) else i)
               (Array.init 16 (fun i -> i)));
          None
        with Boom i -> Some i
      in
      Alcotest.(check (option int))
        (Printf.sprintf "lowest-index exception at domains=%d" d)
        (Some 5) raised;
      (* The pool must survive a failed batch. *)
      Alcotest.(check (array int))
        "pool usable after exception"
        [| 0; 2; 4 |]
        (Resa_par.parallel_map ~domains:d (fun i -> 2 * i) (Array.init 3 (fun i -> i))))
    [ 2; 4 ]

let test_nested_sections_fall_back () =
  (* A parallel call from inside a worker task must degrade to the inline
     sequential path, with identical results and no deadlock. *)
  let expect = Array.init 6 (fun i -> 15 + (100 * i)) in
  let got =
    Resa_par.parallel_map ~domains:4
      (fun i ->
        Resa_par.parallel_for_reduce ~domains:4 ~lo:0 ~hi:6 ~init:(100 * i) ~f:(fun j -> j)
          ~combine:( + ) ())
      (Array.init 6 (fun i -> i))
  in
  Alcotest.(check (array int)) "nested sections" expect got

let test_worst_order_domain_invariant () =
  let inst =
    Resa_gen.Random_inst.alpha_restricted (Prng.create ~seed:31) ~m:12 ~n:9 ~alpha:0.5 ~pmax:6 ()
  in
  let run d =
    Resa_par.with_domains d (fun () ->
        let rng = Prng.create ~seed:17 in
        Resa_analysis.Anomaly.worst_order ~restarts:4 ~iterations:30 rng inst)
  in
  let order1, worst1 = run 1 in
  List.iter
    (fun d ->
      let order, worst = run d in
      Alcotest.(check int) (Printf.sprintf "worst makespan at domains=%d" d) worst1 worst;
      Alcotest.(check (array int)) (Printf.sprintf "worst order at domains=%d" d) order1 order)
    [ 2; 4 ]

let test_campaign_table_domain_invariant () =
  (* A real experiment table of the benchmark harness, rendered end to
     end at 1 and 4 domains: the strings must match byte for byte. *)
  let render d =
    Resa_par.with_domains d (fun () -> Resa_stats.Table.render (Resa_bench.Experiments.fig3_table ()))
  in
  let s1 = render 1 in
  Alcotest.(check bool) "table non-trivial" true (String.length s1 > 100);
  Alcotest.(check string) "fig3 table byte-identical across domain counts" s1 (render 4)

let suite =
  [
    Alcotest.test_case "parallel_map matches sequential" `Quick test_parallel_map_matches_sequential;
    Alcotest.test_case "parallel_map_list keeps order" `Quick test_parallel_map_list;
    Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
    Alcotest.test_case "reduction order is fixed" `Quick test_reduce_fixed_order;
    Alcotest.test_case "replicate PRNG streams are domain-invariant" `Quick
      test_replicates_prng_stream_equality;
    Alcotest.test_case "replicate streams are disjoint" `Quick test_replicate_streams_disjoint;
    Alcotest.test_case "exceptions re-raise at the join point" `Quick test_exception_propagation;
    Alcotest.test_case "nested sections fall back inline" `Quick test_nested_sections_fall_back;
    Alcotest.test_case "worst_order invariant across domains" `Quick
      test_worst_order_domain_invariant;
    Alcotest.test_case "campaign table invariant across domains" `Quick
      test_campaign_table_domain_invariant;
  ]
