(* Event heap, simulator, policies, metrics, reservation book. *)

open Resa_core
open Resa_sim

(* --- event heap --- *)

let test_heap_ordering () =
  let h = Event_heap.create () in
  List.iter (fun (t, v) -> Event_heap.push h ~time:t v) [ (5, "e"); (1, "a"); (3, "c"); (1, "b") ];
  let pop () = match Event_heap.pop h with Some (t, v) -> (t, v) | None -> (-1, "?") in
  Alcotest.(check (pair int string)) "first" (1, "a") (pop ());
  Alcotest.(check (pair int string)) "fifo on ties" (1, "b") (pop ());
  Alcotest.(check (pair int string)) "third" (3, "c") (pop ());
  Alcotest.(check (pair int string)) "last" (5, "e") (pop ());
  Alcotest.(check bool) "empty" true (Event_heap.is_empty h)

let test_heap_interleaved () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:10 0;
  Event_heap.push h ~time:2 1;
  Alcotest.(check (option int)) "peek" (Some 2) (Event_heap.peek_time h);
  ignore (Event_heap.pop h);
  Event_heap.push h ~time:1 2;
  Alcotest.(check (option int)) "re-peek" (Some 1) (Event_heap.peek_time h);
  Alcotest.(check int) "size" 2 (Event_heap.size h)

let test_heap_rejects_negative () =
  let h = Event_heap.create () in
  Alcotest.check_raises "negative time" (Invalid_argument "Event_heap.push: negative time")
    (fun () -> Event_heap.push h ~time:(-1) ())

let prop_heap_sorts =
  Tutil.qcheck "heap pops in non-decreasing time order" QCheck.(list small_nat) (fun times ->
      let h = Event_heap.create () in
      List.iter (fun t -> Event_heap.push h ~time:t ()) times;
      let rec drain prev =
        match Event_heap.pop h with
        | None -> true
        | Some (t, ()) -> t >= prev && drain t
      in
      drain 0)

let test_heap_pop_clears_slots () =
  (* Popped entries must not linger in the backing array: the heap would
     otherwise pin every payload it ever held until the array is overwritten
     or collected. [live_entries] counts occupied slots structurally. *)
  let h = Event_heap.create () in
  for i = 0 to 99 do
    Event_heap.push h ~time:(i * 7 mod 31) i
  done;
  Alcotest.(check int) "full" 100 (Event_heap.live_entries h);
  for _ = 1 to 60 do
    ignore (Event_heap.pop h)
  done;
  Alcotest.(check int) "popped slots vacated" 40 (Event_heap.live_entries h);
  while not (Event_heap.is_empty h) do
    ignore (Event_heap.pop h)
  done;
  Alcotest.(check int) "empty heap retains nothing" 0 (Event_heap.live_entries h);
  Event_heap.push h ~time:1 0;
  Event_heap.clear h;
  Alcotest.(check int) "clear retains nothing" 0 (Event_heap.live_entries h)

(* --- simulator + policies --- *)

let submit_all_at inst t0 =
  List.init (Instance.n_jobs inst) (fun i ->
      Simulator.{ job = Instance.job inst i; submit = t0 })

let test_aggressive_equals_offline_lsrc () =
  (* With everything submitted at 0, the aggressive policy IS LSRC. *)
  let rng = Prng.create ~seed:31 in
  for _ = 1 to 10 do
    let inst = Resa_gen.Random_inst.alpha_restricted rng ~m:8 ~n:10 ~alpha:0.5 ~pmax:6 () in
    let trace =
      Simulator.run ~policy:Policy.aggressive ~m:8
        ~reservations:(Array.to_list (Instance.reservations inst))
        (submit_all_at inst 0)
    in
    let offline = Resa_algos.Lsrc.run inst in
    let starts_sim = List.map (fun (r : Simulator.record) -> r.start) trace.records in
    Alcotest.(check (list int)) "identical starts"
      (Array.to_list (Schedule.starts offline))
      starts_sim
  done

let test_fcfs_policy_order () =
  (* FCFS online: narrow job behind wide head must wait. *)
  let jobs = [ (2, 3); (2, 2); (2, 1) ] in
  let inst = Instance.of_sizes ~m:4 jobs in
  let trace = Simulator.run ~policy:Policy.fcfs ~m:4 (submit_all_at inst 0) in
  let starts = List.map (fun (r : Simulator.record) -> r.start) trace.records in
  Alcotest.(check (list int)) "strict order" [ 0; 2; 2 ] starts

let test_arrival_order_respected () =
  (* A job cannot start before it is submitted, whatever the policy. *)
  let subs =
    [
      Simulator.{ job = Job.make ~id:0 ~p:2 ~q:1; submit = 0 };
      Simulator.{ job = Job.make ~id:1 ~p:2 ~q:1; submit = 7 };
    ]
  in
  List.iter
    (fun policy ->
      let trace = Simulator.run ~policy ~m:4 subs in
      List.iter
        (fun (r : Simulator.record) ->
          if r.start < r.submit then
            Alcotest.failf "%s started a job before submission" policy.Policy.name)
        trace.records)
    Policy.all

let test_policies_feasible_with_reservations () =
  let rng = Prng.create ~seed:32 in
  let inst = Resa_gen.Random_inst.alpha_restricted rng ~m:12 ~n:15 ~alpha:0.5 ~pmax:8 () in
  let arrivals = Resa_gen.Arrivals.poisson rng ~n:15 ~mean_gap:3.0 in
  let subs =
    List.init 15 (fun i -> Simulator.{ job = Instance.job inst i; submit = arrivals.(i) })
  in
  List.iter
    (fun policy ->
      let trace =
        Simulator.run ~policy ~m:12
          ~reservations:(Array.to_list (Instance.reservations inst))
          subs
      in
      let off_inst, off_sched = Simulator.to_offline trace in
      match Schedule.validate off_inst off_sched with
      | Ok () -> ()
      | Error v ->
        Alcotest.failf "%s produced an infeasible execution: %a" policy.Policy.name
          Schedule.pp_violation v)
    Policy.all

let test_conservative_policy_plans_hold () =
  (* Deterministic example: plans must not shift when later jobs arrive. *)
  let subs =
    [
      Simulator.{ job = Job.make ~id:0 ~p:4 ~q:4; submit = 0 };
      Simulator.{ job = Job.make ~id:1 ~p:4 ~q:4; submit = 1 };
      Simulator.{ job = Job.make ~id:2 ~p:1 ~q:1; submit = 2 };
    ]
  in
  let trace = Simulator.run ~policy:Policy.conservative ~m:4 subs in
  let starts = List.map (fun (r : Simulator.record) -> r.start) trace.records in
  (* j1 planned at 4; j2 (narrow, short) backfills nowhere before 4 on a full
     machine, so it lands at 8. *)
  Alcotest.(check (list int)) "planned starts" [ 0; 4; 8 ] starts

let test_easy_policy_backfills () =
  let subs =
    [
      Simulator.{ job = Job.make ~id:0 ~p:4 ~q:3; submit = 0 };
      Simulator.{ job = Job.make ~id:1 ~p:4 ~q:4; submit = 0 };
      Simulator.{ job = Job.make ~id:2 ~p:4 ~q:1; submit = 0 };
    ]
  in
  let trace = Simulator.run ~policy:Policy.easy ~m:4 subs in
  let starts = List.map (fun (r : Simulator.record) -> r.start) trace.records in
  (* j2 ends exactly at the head's guaranteed start (4): allowed. *)
  Alcotest.(check (list int)) "backfilled" [ 0; 4; 0 ] starts

let test_policy_error_on_rogue_policy () =
  let rogue =
    Policy.
      {
        name = "ROGUE";
        create =
          (fun ~obs:_ ~time:_ ~queue ~free:_ ->
            (* Start everything unconditionally: must violate capacity. *)
            { start_now = queue; wake = None });
      }
  in
  let subs =
    [
      Simulator.{ job = Job.make ~id:0 ~p:2 ~q:2; submit = 0 };
      Simulator.{ job = Job.make ~id:1 ~p:2 ~q:2; submit = 0 };
    ]
  in
  match Simulator.run ~policy:rogue ~m:2 subs with
  | exception Simulator.Policy_error _ -> ()
  | _ -> Alcotest.fail "capacity violation not caught"

let test_simulator_rejects_bad_input () =
  let subs = [ Simulator.{ job = Job.make ~id:0 ~p:1 ~q:5 ; submit = 0 } ] in
  match Simulator.run ~policy:Policy.fcfs ~m:2 subs with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized job accepted"

let prop_all_policies_sound =
  Tutil.qcheck ~count:60 "all policies produce feasible executions"
    QCheck.(pair Tutil.seed_arb Tutil.seed_arb)
    (fun (s1, s2) ->
      let rng = Prng.create ~seed:s1 in
      let inst = Resa_gen.Random_inst.alpha_restricted rng ~m:8 ~n:8 ~alpha:0.5 ~pmax:5 () in
      let arr = Resa_gen.Arrivals.uniform (Prng.create ~seed:s2) ~n:8 ~horizon:20 in
      let subs =
        List.init 8 (fun i -> Simulator.{ job = Instance.job inst i; submit = arr.(i) })
      in
      List.for_all
        (fun policy ->
          let trace =
            Simulator.run ~policy ~m:8
              ~reservations:(Array.to_list (Instance.reservations inst))
              subs
          in
          let oi, os = Simulator.to_offline trace in
          Schedule.is_feasible oi os
          && List.for_all (fun (r : Simulator.record) -> r.start >= r.submit) trace.records)
        Policy.all)

(* --- metrics --- *)

let test_metrics_values () =
  let subs =
    [
      Simulator.{ job = Job.make ~id:0 ~p:4 ~q:2; submit = 0 };
      Simulator.{ job = Job.make ~id:1 ~p:2 ~q:2; submit = 0 };
    ]
  in
  let trace = Simulator.run ~policy:Policy.fcfs ~m:2 subs in
  let s = Metrics.summarize trace in
  Alcotest.(check int) "n" 2 s.n;
  Alcotest.(check int) "makespan" 6 s.makespan;
  (* j0 waits 0; j1 waits 4. *)
  Alcotest.(check (float 1e-9)) "mean wait" 2.0 s.mean_wait;
  Alcotest.(check int) "max wait" 4 s.max_wait;
  (* slowdowns: 1 and (4+2)/2 = 3. *)
  Alcotest.(check (float 1e-9)) "mean slowdown" 2.0 s.mean_slowdown;
  (* utilization: work 12 over 2*6. *)
  Alcotest.(check (float 1e-9)) "utilization" 1.0 s.utilization

let test_metrics_empty () =
  let trace = Simulator.run ~policy:Policy.fcfs ~m:2 [] in
  let s = Metrics.summarize trace in
  Alcotest.(check int) "empty" 0 s.n

let test_bounded_slowdown_bound () =
  (* Very short job with a long wait: bounded slowdown caps the explosion. *)
  let subs =
    [
      Simulator.{ job = Job.make ~id:0 ~p:100 ~q:2; submit = 0 };
      Simulator.{ job = Job.make ~id:1 ~p:1 ~q:2; submit = 0 };
    ]
  in
  let trace = Simulator.run ~policy:Policy.fcfs ~m:2 subs in
  let s = Metrics.summarize ~bound:10 trace in
  Alcotest.(check bool) "raw slowdown explodes" true (s.mean_slowdown > 50.0);
  Alcotest.(check bool) "bounded slowdown tamed" true (s.mean_bounded_slowdown < 10.0)

(* --- reservation book --- *)

let test_book_accepts_within_cap () =
  let book = Reservation_book.create ~m:10 ~alpha:0.6 () in
  Alcotest.(check int) "cap" 4 (Reservation_book.cap book);
  (match Reservation_book.request book ~start:0 ~p:5 ~q:3 with
  | Ok r -> Alcotest.(check int) "id 0" 0 (Reservation.id r)
  | Error e -> Alcotest.failf "rejected: %a" Reservation_book.pp_rejection e);
  match Reservation_book.request book ~start:10 ~p:5 ~q:4 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "disjoint window rejected: %a" Reservation_book.pp_rejection e

let test_book_rejects_too_wide () =
  let book = Reservation_book.create ~m:10 ~alpha:0.6 () in
  match Reservation_book.request book ~start:0 ~p:1 ~q:5 with
  | Error (Reservation_book.Too_wide { q = 5; cap = 4 }) -> ()
  | _ -> Alcotest.fail "too-wide request accepted"

let test_book_rejects_saturation () =
  let book = Reservation_book.create ~m:10 ~alpha:0.6 () in
  (match Reservation_book.request book ~start:0 ~p:10 ~q:3 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "first rejected");
  match Reservation_book.request book ~start:5 ~p:10 ~q:2 with
  | Error (Reservation_book.Saturated _) -> ()
  | _ -> Alcotest.fail "saturating request accepted"

let test_book_keeps_alpha_restriction () =
  (* Whatever is granted, the resulting instance stays alpha-restricted. *)
  let rng = Prng.create ~seed:77 in
  let book = Reservation_book.create ~m:16 ~alpha:0.5 () in
  for _ = 1 to 50 do
    ignore
      (Reservation_book.request book
         ~start:(Prng.int rng ~bound:40)
         ~p:(Prng.int_incl rng ~lo:1 ~hi:10)
         ~q:(Prng.int_incl rng ~lo:1 ~hi:10))
  done;
  let inst =
    Instance.create_exn ~m:16
      ~jobs:[ Job.make ~id:0 ~p:1 ~q:8 ]
      ~reservations:(Reservation_book.accepted book)
  in
  Alcotest.(check bool) "alpha-restricted" true (Instance.is_alpha_restricted inst ~alpha:0.5)

(* --- walltime estimates --- *)

let test_estimated_equals_exact_when_accurate () =
  let rng = Prng.create ~seed:51 in
  let inst = Resa_gen.Random_inst.cluster_workload rng ~m:8 ~n:12 ~max_runtime:20 in
  let subs = submit_all_at inst 0 in
  let estimates = Array.init 12 (fun i -> Job.p (Instance.job inst i)) in
  List.iter
    (fun policy ->
      (* Reusing one policy value across runs must be safe: [create] scopes
         the planning state per run. *)
      let a = Simulator.run ~policy ~m:8 subs in
      let b = Simulator.run_estimated ~policy ~m:8 ~estimates subs in
      List.iter2
        (fun (ra : Simulator.record) (rb : Simulator.record) ->
          Alcotest.(check int) "same start" ra.start rb.start)
        a.records b.records)
    [ Policy.fcfs; Policy.easy; Policy.conservative; Policy.aggressive ]

let test_early_release_unblocks_follower () =
  (* Job 0 requests 10 but runs 2; job 1 needs the whole machine and starts
     the moment the tail is released. *)
  let subs =
    [
      Simulator.{ job = Job.make ~id:0 ~p:2 ~q:2; submit = 0 };
      Simulator.{ job = Job.make ~id:1 ~p:3 ~q:2; submit = 0 };
    ]
  in
  let trace =
    Simulator.run_estimated ~policy:Policy.fcfs ~m:2 ~estimates:[| 10; 3 |] subs
  in
  let starts = List.map (fun (r : Simulator.record) -> r.start) trace.records in
  Alcotest.(check (list int)) "follower starts at the actual completion" [ 0; 2 ] starts

let test_estimates_validated () =
  let subs = [ Simulator.{ job = Job.make ~id:0 ~p:5 ~q:1; submit = 0 } ] in
  Alcotest.check_raises "estimate below runtime"
    (Invalid_argument "Simulator.run_estimated: estimate below the actual runtime") (fun () ->
      ignore (Simulator.run_estimated ~policy:Policy.fcfs ~m:2 ~estimates:[| 3 |] subs));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Simulator.run_estimated: estimates length mismatch") (fun () ->
      ignore (Simulator.run_estimated ~policy:Policy.fcfs ~m:2 ~estimates:[| 5; 5 |] subs))

let prop_estimated_executions_feasible =
  Tutil.qcheck ~count:60 "all policies stay feasible under overestimates"
    QCheck.(pair Tutil.seed_arb Tutil.seed_arb)
    (fun (s1, s2) ->
      let rng = Prng.create ~seed:s1 in
      let inst = Resa_gen.Random_inst.cluster_workload rng ~m:8 ~n:10 ~max_runtime:12 in
      let erng = Prng.create ~seed:s2 in
      let estimates =
        Array.init 10 (fun i ->
            Job.p (Instance.job inst i) * Prng.int_incl erng ~lo:1 ~hi:4)
      in
      let arr = Resa_gen.Arrivals.uniform erng ~n:10 ~horizon:25 in
      let subs =
        List.init 10 (fun i -> Simulator.{ job = Instance.job inst i; submit = arr.(i) })
      in
      List.for_all
        (fun policy ->
          let trace = Simulator.run_estimated ~policy ~m:8 ~estimates subs in
          let oi, os = Simulator.to_offline trace in
          Schedule.is_feasible oi os
          && List.for_all (fun (r : Simulator.record) -> r.start >= r.submit) trace.records)
        Policy.all)

let suite =
  [
    Alcotest.test_case "heap orders by time then FIFO" `Quick test_heap_ordering;
    Alcotest.test_case "heap interleaved push/pop" `Quick test_heap_interleaved;
    Alcotest.test_case "heap rejects negative times" `Quick test_heap_rejects_negative;
    prop_heap_sorts;
    Alcotest.test_case "heap pop clears vacated slots" `Quick test_heap_pop_clears_slots;
    Alcotest.test_case "aggressive = offline LSRC at t=0" `Quick test_aggressive_equals_offline_lsrc;
    Alcotest.test_case "FCFS policy blocks behind head" `Quick test_fcfs_policy_order;
    Alcotest.test_case "no job before its submission" `Quick test_arrival_order_respected;
    Alcotest.test_case "all policies feasible with reservations" `Quick test_policies_feasible_with_reservations;
    Alcotest.test_case "conservative plans are stable" `Quick test_conservative_policy_plans_hold;
    Alcotest.test_case "EASY policy backfills" `Quick test_easy_policy_backfills;
    Alcotest.test_case "rogue policies are caught" `Quick test_policy_error_on_rogue_policy;
    Alcotest.test_case "bad submissions rejected" `Quick test_simulator_rejects_bad_input;
    prop_all_policies_sound;
    Alcotest.test_case "accurate estimates change nothing" `Quick test_estimated_equals_exact_when_accurate;
    Alcotest.test_case "early release unblocks followers" `Quick test_early_release_unblocks_follower;
    Alcotest.test_case "estimates are validated" `Quick test_estimates_validated;
    prop_estimated_executions_feasible;
    Alcotest.test_case "metrics on a hand example" `Quick test_metrics_values;
    Alcotest.test_case "metrics on empty trace" `Quick test_metrics_empty;
    Alcotest.test_case "bounded slowdown" `Quick test_bounded_slowdown_bound;
    Alcotest.test_case "book accepts within cap" `Quick test_book_accepts_within_cap;
    Alcotest.test_case "book rejects too-wide" `Quick test_book_rejects_too_wide;
    Alcotest.test_case "book rejects saturation" `Quick test_book_rejects_saturation;
    Alcotest.test_case "book preserves alpha-restriction" `Quick test_book_keeps_alpha_restriction;
  ]
