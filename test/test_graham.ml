open Resa_core
open Resa_analysis

let test_lemma1_on_list_schedule () =
  let inst = Instance.of_sizes ~m:4 [ (3, 2); (2, 3); (4, 1); (1, 4) ] in
  let s = Resa_algos.Lsrc.run inst in
  Alcotest.(check bool) "holds" true (Graham.lemma1_holds inst s)

let test_lemma1_violated_by_idling () =
  (* Deliberately lazy schedule: long idle gap violates Lemma 1. *)
  let inst = Instance.of_sizes ~m:2 [ (1, 1); (1, 1) ] in
  let s = Schedule.make [| 0; 10 |] in
  match Graham.lemma1_witness inst s with
  | Some (t, t') ->
    Alcotest.(check bool) "witness ordered" true (t' >= t + Instance.pmax inst)
  | None -> Alcotest.fail "expected a violation witness"

let test_lemma1_requires_no_reservations () =
  let inst = Instance.of_sizes ~m:2 ~reservations:[ (0, 1, 1) ] [ (1, 1) ] in
  Alcotest.check_raises "reservations rejected"
    (Invalid_argument "Graham: the appendix machinery applies to reservation-free instances")
    (fun () -> ignore (Graham.lemma1_holds inst (Schedule.make [| 0 |])))

let test_certificate_tight_family () =
  (* Graham-tight family: makespan = (2 − 1/m)·opt exactly; certificate must
     hold with equality. *)
  let m = 6 in
  let inst, opt = Resa_gen.Adversarial.graham_tight ~m in
  let s = Resa_algos.Lsrc.run inst in
  let cert = Graham.theorem2_certificate inst s ~opt in
  Alcotest.(check bool) "holds" true cert.holds;
  Alcotest.(check int) "makespan 2m-1" ((2 * m) - 1) cert.makespan;
  Alcotest.(check (float 1e-9)) "rhs is exactly the bound"
    ((2.0 -. (1.0 /. float_of_int m)) *. float_of_int m)
    cert.graham_rhs

let test_certificate_detects_violation () =
  let inst = Instance.of_sizes ~m:2 [ (1, 1) ] in
  let s = Schedule.make [| 10 |] in
  let cert = Graham.theorem2_certificate inst s ~opt:1 in
  Alcotest.(check bool) "violated" false cert.holds

let test_integral_certificate_tight_family () =
  (* On the tight family the proof's chain is checked with exact integers:
     C_A = 2m-1, C* = m, X must sit between (m+1)(m-1) and W - (2m - C_A). *)
  let m = 6 in
  let inst, opt = Resa_gen.Adversarial.graham_tight ~m in
  let s = Resa_algos.Lsrc.run inst in
  let c = Graham.theorem2_integral_certificate inst s ~opt in
  Alcotest.(check bool) "chain holds" true c.chain_holds;
  Alcotest.(check int) "C_A" ((2 * m) - 1) c.c_list;
  Alcotest.(check int) "lemma lhs" ((m + 1) * (m - 1)) c.lemma1_lhs;
  Alcotest.(check int) "work" (Instance.total_work inst) c.total_work;
  Alcotest.(check bool) "X within" true (c.lemma1_lhs <= c.x_integral && c.x_integral <= c.work_rhs)

let test_integral_certificate_vacuous () =
  let inst = Instance.of_sizes ~m:3 [ (2, 1) ] in
  let s = Resa_algos.Lsrc.run inst in
  let c = Graham.theorem2_integral_certificate inst s ~opt:2 in
  Alcotest.(check bool) "vacuously holds" true c.chain_holds;
  Alcotest.(check int) "no integral" 0 c.x_integral

let prop_integral_certificate =
  Tutil.qcheck ~count:120 "integral chain holds vs exact optimum" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_rigid_of_seed seed in
      match Resa_exact.Bnb.optimal_makespan ~node_limit:300_000 inst with
      | None -> QCheck.assume_fail ()
      | Some opt ->
        List.for_all
          (fun p ->
            (Graham.theorem2_integral_certificate inst
               (Resa_algos.Lsrc.run ~priority:p inst)
               ~opt)
              .chain_holds)
          [ Resa_algos.Priority.Fifo; Resa_algos.Priority.Lpt ])

let prop_lemma1_all_list_schedules =
  Tutil.qcheck ~count:200 "Lemma 1 holds for every list schedule" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_rigid_of_seed seed in
      List.for_all
        (fun p -> Graham.lemma1_holds inst (Resa_algos.Lsrc.run ~priority:p inst))
        [ Resa_algos.Priority.Fifo; Resa_algos.Priority.Lpt; Resa_algos.Priority.Random seed ])

let prop_theorem2_certificate =
  Tutil.qcheck ~count:120 "Theorem 2 certificate vs exact optimum" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_rigid_of_seed seed in
      match Resa_exact.Bnb.optimal_makespan ~node_limit:300_000 inst with
      | None -> QCheck.assume_fail ()
      | Some opt ->
        (Graham.theorem2_certificate inst (Resa_algos.Lsrc.run inst) ~opt).holds)

let suite =
  [
    Alcotest.test_case "Lemma 1 on a list schedule" `Quick test_lemma1_on_list_schedule;
    Alcotest.test_case "Lemma 1 violated by idling" `Quick test_lemma1_violated_by_idling;
    Alcotest.test_case "reservation-free precondition" `Quick test_lemma1_requires_no_reservations;
    Alcotest.test_case "certificate on the tight family" `Quick test_certificate_tight_family;
    Alcotest.test_case "certificate detects violations" `Quick test_certificate_detects_violation;
    Alcotest.test_case "integral certificate on the tight family" `Quick test_integral_certificate_tight_family;
    Alcotest.test_case "integral certificate vacuous case" `Quick test_integral_certificate_vacuous;
    prop_integral_certificate;
    prop_lemma1_all_list_schedules;
    prop_theorem2_certificate;
  ]
