open Resa_core
open Resa_swf

let sample_line = "1 0 5 100 8 -1 -1 8 120 -1 1 3 1 1 1 1 -1 -1"

let test_parse_line () =
  match Swf.parse_line sample_line with
  | Ok (Some e) ->
    Alcotest.(check int) "job number" 1 e.Swf.job_number;
    Alcotest.(check int) "submit" 0 e.Swf.submit;
    Alcotest.(check int) "wait" 5 e.Swf.wait;
    Alcotest.(check int) "run" 100 e.Swf.run;
    Alcotest.(check int) "req procs" 8 e.Swf.req_procs;
    Alcotest.(check int) "think time" (-1) e.Swf.think_time
  | Ok None -> Alcotest.fail "entry expected"
  | Error msg -> Alcotest.fail msg

let test_parse_comments_and_blanks () =
  (match Swf.parse_line "; UnixStartTime: 0" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment not skipped");
  match Swf.parse_line "   " with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank not skipped"

let test_parse_rejects_short_lines () =
  match Swf.parse_line "1 2 3" with
  | Error msg -> Alcotest.(check bool) "mentions field count" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "short line accepted"

let test_parse_rejects_garbage () =
  match Swf.parse_line "1 0 5 abc 8 -1 -1 8 120 -1 1 3 1 1 1 1 -1 -1" with
  | Error msg -> Alcotest.(check bool) "names the field" true (String.length msg > 4)
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_parse_accepts_float_fields () =
  match Swf.parse_line "1 0 5 100 8 12.5 -1 8 120 -1 1 3 1 1 1 1 -1 -1" with
  | Ok (Some e) -> Alcotest.(check int) "truncated" 12 e.Swf.avg_cpu
  | _ -> Alcotest.fail "float field rejected"

let test_parse_crlf_line () =
  (* Windows-edited archives carry \r\n; the trailing \r used to glue onto
     the last field and break its numeric conversion. *)
  match Swf.parse_line (sample_line ^ "\r") with
  | Ok (Some e) ->
    Alcotest.(check int) "last field survives CRLF" (-1) e.Swf.think_time;
    Alcotest.(check int) "run" 100 e.Swf.run
  | Ok None -> Alcotest.fail "entry expected"
  | Error msg -> Alcotest.fail msg

let test_parse_string_crlf () =
  let text = "; header\r\n" ^ sample_line ^ "\r\n\r\n" ^ sample_line ^ "\r\n" in
  match Swf.parse_string text with
  | Ok entries -> Alcotest.(check int) "both entries parsed" 2 (List.length entries)
  | Error msg -> Alcotest.fail msg

let test_parse_ceils_float_durations () =
  (* Archives report sub-second runtimes as floats. Truncation turned a
     0.9-second job into run = 0 — a phantom that [keep] then dropped.
     Durations must round up; the resource-usage fields still truncate. *)
  match Swf.parse_line "1 0 5 0.9 8 12.7 -1 8 10.2 -1 1 3 1 1 1 1 -1 -1" with
  | Ok (Some e) ->
    Alcotest.(check int) "run ceiled" 1 e.Swf.run;
    Alcotest.(check int) "req_time ceiled" 11 e.Swf.req_time;
    Alcotest.(check int) "avg_cpu still truncates" 12 e.Swf.avg_cpu
  | Ok None -> Alcotest.fail "entry expected"
  | Error msg -> Alcotest.fail msg

let test_job_numbers_map () =
  let entry job_number status = { Swf.default with Swf.job_number; req_procs = 1; run = 5; status } in
  let entries = [ entry 17 1; entry 23 0; entry 42 1 ] in
  Alcotest.(check (array int)) "all kept" [| 17; 23; 42 |] (Swf.job_numbers entries);
  Alcotest.(check (array int)) "failed dropped" [| 17; 42 |]
    (Swf.job_numbers ~keep_failed:false entries);
  (* The array aligns with the renumbered ids of [to_estimated_workload]. *)
  let jobs = Swf.to_estimated_workload ~keep_failed:false entries ~m:4 in
  Alcotest.(check (list int)) "ids are indices" [ 0; 1 ]
    (List.map (fun (j, _, _) -> Job.id j) jobs)

let test_parse_string_line_numbers () =
  let text = "; header\n" ^ sample_line ^ "\nbad line\n" in
  match Swf.parse_string text with
  | Error msg -> Alcotest.(check bool) "line number cited" true (String.length msg > 7
                                                                && String.sub msg 0 6 = "line 3")
  | Ok _ -> Alcotest.fail "bad file accepted"

let test_round_trip () =
  let rng = Prng.create ~seed:41 in
  let entries = Swf.generate rng ~m:32 ~n:50 ~max_runtime:500 ~mean_gap:4.0 in
  let text = Swf.to_string ~comments:[ "synthetic" ] entries in
  match Swf.parse_string text with
  | Error msg -> Alcotest.fail msg
  | Ok entries' ->
    Alcotest.(check int) "count preserved" 50 (List.length entries');
    List.iter2
      (fun a b -> if a <> b then Alcotest.fail "entry changed in round trip")
      entries entries'

let test_to_workload_clamps () =
  let e = { Swf.default with Swf.req_procs = 100; run = 0; req_time = 7 } in
  match Swf.to_workload [ e ] ~m:16 with
  | [ (job, submit) ] ->
    Alcotest.(check int) "procs clamped to m" 16 (Job.q job);
    Alcotest.(check int) "falls back to req_time" 7 (Job.p job);
    Alcotest.(check int) "submit" 0 submit
  | _ -> Alcotest.fail "one job expected"

let test_to_workload_skips_phantoms () =
  (* Entries with neither a positive run nor a positive req_time carry no
     work (cancelled before start); they used to surface as phantom
     1-second jobs. Kept entries are renumbered consecutively. *)
  let worker run req_time = { Swf.default with Swf.req_procs = 2; run; req_time } in
  let entries = [ worker 10 (-1); worker 0 0; worker (-1) (-1); worker (-1) 7 ] in
  match Swf.to_workload entries ~m:8 with
  | [ (a, _); (b, _) ] ->
    Alcotest.(check int) "real job kept" 10 (Job.p a);
    Alcotest.(check int) "req_time fallback kept" 7 (Job.p b);
    Alcotest.(check int) "ids renumbered" 1 (Job.id b)
  | l -> Alcotest.fail (Printf.sprintf "%d jobs, expected 2" (List.length l))

let test_to_workload_keep_failed () =
  let entry status = { Swf.default with Swf.req_procs = 1; run = 5; status } in
  let entries = [ entry 1; entry 0; entry 5 ] in
  Alcotest.(check int) "failed kept by default" 3 (List.length (Swf.to_workload entries ~m:4));
  Alcotest.(check int) "failed dropped on request" 2
    (List.length (Swf.to_workload ~keep_failed:false entries ~m:4));
  Alcotest.(check int) "estimated workload filters too" 2
    (List.length (Swf.to_estimated_workload ~keep_failed:false entries ~m:4))

let test_of_workload_waits () =
  let job = Job.make ~id:0 ~p:10 ~q:4 in
  match Swf.of_workload [ (job, 3, 8) ] with
  | [ e ] ->
    Alcotest.(check int) "wait" 5 e.Swf.wait;
    Alcotest.(check int) "run" 10 e.Swf.run;
    Alcotest.(check int) "procs" 4 e.Swf.req_procs
  | _ -> Alcotest.fail "one entry expected"

let test_generated_trace_drives_simulator () =
  let rng = Prng.create ~seed:42 in
  let entries = Swf.generate rng ~m:16 ~n:30 ~max_runtime:100 ~mean_gap:5.0 in
  let subs =
    List.map
      (fun (job, submit) -> Resa_sim.Simulator.{ job; submit })
      (Swf.to_workload entries ~m:16)
  in
  let trace = Resa_sim.Simulator.run ~policy:Resa_sim.Policy.easy ~m:16 subs in
  let inst, sched = Resa_sim.Simulator.to_offline trace in
  Tutil.check_feasible "SWF-driven simulation" inst sched

let prop_round_trip =
  Tutil.qcheck ~count:50 "generate |> print |> parse is the identity" Tutil.seed_arb (fun seed ->
      let rng = Prng.create ~seed in
      let entries = Swf.generate rng ~m:8 ~n:10 ~max_runtime:50 ~mean_gap:2.0 in
      match Swf.parse_string (Swf.to_string entries) with
      | Ok entries' -> entries = entries'
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "parse a standard line" `Quick test_parse_line;
    Alcotest.test_case "comments and blanks skipped" `Quick test_parse_comments_and_blanks;
    Alcotest.test_case "short lines rejected" `Quick test_parse_rejects_short_lines;
    Alcotest.test_case "non-numeric fields rejected" `Quick test_parse_rejects_garbage;
    Alcotest.test_case "float fields tolerated" `Quick test_parse_accepts_float_fields;
    Alcotest.test_case "CRLF line endings tolerated" `Quick test_parse_crlf_line;
    Alcotest.test_case "CRLF files parse whole" `Quick test_parse_string_crlf;
    Alcotest.test_case "float durations round up" `Quick test_parse_ceils_float_durations;
    Alcotest.test_case "job_numbers aligns with renumbered ids" `Quick test_job_numbers_map;
    Alcotest.test_case "errors cite line numbers" `Quick test_parse_string_line_numbers;
    Alcotest.test_case "writer/parser round trip" `Quick test_round_trip;
    Alcotest.test_case "to_workload clamps and falls back" `Quick test_to_workload_clamps;
    Alcotest.test_case "to_workload skips phantom entries" `Quick test_to_workload_skips_phantoms;
    Alcotest.test_case "keep_failed filters status 0" `Quick test_to_workload_keep_failed;
    Alcotest.test_case "of_workload computes waits" `Quick test_of_workload_waits;
    Alcotest.test_case "generated trace drives the simulator" `Quick test_generated_trace_drives_simulator;
    prop_round_trip;
  ]
