open Resa_stats

let feq = Alcotest.(check (float 1e-9))

let test_mean_variance () =
  feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  feq "mean empty" 0.0 (Stats.mean []);
  feq "variance" (2.0 /. 3.0) (Stats.variance [ 1.0; 2.0; 3.0 ]);
  feq "variance singleton" 0.0 (Stats.variance [ 5.0 ]);
  feq "stddev" (sqrt (2.0 /. 3.0)) (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_min_max () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 7.0 ] in
  feq "min" (-1.0) lo;
  feq "max" 7.0 hi;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.min_max: empty list") (fun () ->
      ignore (Stats.min_max []))

let test_percentiles () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  feq "median" 50.0 (Stats.median xs);
  feq "p90" 90.0 (Stats.percentile xs ~p:90.0);
  feq "p100" 100.0 (Stats.percentile xs ~p:100.0);
  feq "p0 clamps to first" 1.0 (Stats.percentile xs ~p:0.0)

let test_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.0; 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "two bins" 2 (List.length h);
  let counts = List.map (fun (_, _, c) -> c) h in
  Alcotest.(check (list int)) "counts" [ 2; 2 ] counts;
  Alcotest.(check int) "total preserved" 4 (List.fold_left ( + ) 0 counts)

let test_histogram_constant_data () =
  (* Degenerate range: no fabricated empty bins beyond the data — the
     result collapses to the single zero-width bin holding everything. *)
  let h = Stats.histogram ~bins:3 [ 5.0; 5.0; 5.0 ] in
  Alcotest.(check int) "collapses to a single bin" 1 (List.length h);
  (match h with
  | [ (lo, hi, c) ] ->
    feq "bin lo" 5.0 lo;
    feq "bin hi" 5.0 hi;
    Alcotest.(check int) "bin holds all samples" 3 c
  | _ -> Alcotest.fail "expected exactly one bin");
  Alcotest.(check int) "singleton sample too" 1
    (List.length (Stats.histogram ~bins:10 [ -2.5 ]))

let test_describe () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  match Stats.describe xs with
  | None -> Alcotest.fail "describe of non-empty list"
  | Some d ->
    Alcotest.(check int) "count" 100 d.Stats.count;
    feq "mean" 50.5 d.Stats.mean;
    feq "min" 1.0 d.Stats.min;
    feq "max" 100.0 d.Stats.max;
    feq "p50" 50.0 d.Stats.p50;
    feq "p95" 95.0 d.Stats.p95;
    Alcotest.(check (float 1e-9)) "std (Welford = two-pass)" (Stats.stddev xs) d.Stats.std

let test_describe_empty () =
  Alcotest.(check bool) "None on empty" true (Stats.describe [] = None)

let prop_describe_agrees_with_wrappers =
  Tutil.qcheck "describe agrees with the legacy functions"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (float_range (-50.) 50.))
    (fun xs ->
      match Stats.describe xs with
      | None -> false
      | Some d ->
        let lo, hi = Stats.min_max xs in
        let close a b = Float.abs (a -. b) <= 1e-9 in
        d.Stats.count = List.length xs
        && close d.Stats.mean (Stats.mean xs)
        && close d.Stats.std (Stats.stddev xs)
        && d.Stats.min = lo && d.Stats.max = hi
        && d.Stats.p50 = Stats.median xs
        && d.Stats.p95 = Stats.percentile xs ~p:95.0)

let test_summary_line () =
  let s = Stats.summary_line [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check bool) "mentions n" true (String.length s > 0 && String.sub s 0 3 = "n=3")

let test_table_render () =
  let t = Table.create ~headers:[ "alpha"; "ratio" ] in
  Table.add_row t [ "0.5"; "3.25" ];
  Table.add_float_row t ~decimals:2 [ 1.0; 2.0 ];
  let out = Table.render t in
  Alcotest.(check int) "rows recorded" 2 (Table.n_rows t);
  Alcotest.(check bool) "header present" true (String.length out > 0);
  (* Four lines: header, separator, two rows. *)
  Alcotest.(check int) "line count" 4 (List.length (String.split_on_char '\n' (String.trim out)))

let test_table_rejects_ragged () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "wrong width" (Invalid_argument "Table.add_row: expected 2 cells, got 3")
    (fun () -> Table.add_row t [ "1"; "2"; "3" ])

let test_table_csv () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "with,comma"; "2" ];
  let csv = Table.to_csv t in
  Alcotest.(check bool) "escaped" true
    (String.length csv > 0 && String.contains csv '"')

let prop_mean_bounded =
  Tutil.qcheck "mean lies between min and max" QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range (-100.) 100.))
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      let mu = Stats.mean xs in
      lo -. 1e-9 <= mu && mu <= hi +. 1e-9)

let prop_histogram_conserves_count =
  Tutil.qcheck "histogram conserves the sample count"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range 0. 10.))
    (fun xs ->
      let h = Stats.histogram ~bins:5 xs in
      List.fold_left (fun acc (_, _, c) -> acc + c) 0 h = List.length xs)

(* --- streaming accumulators --------------------------------------------- *)

let fsum xs =
  let f = Stats.Fsum.create () in
  List.iter (Stats.Fsum.add f) xs;
  Stats.Fsum.total f

let test_fsum_exact () =
  (* Naive left-to-right summation loses the 1.0 entirely. *)
  feq "cancellation" 1.0 (fsum [ 1e16; 1.0; -1e16 ]);
  feq "empty" 0.0 (fsum []);
  feq "singleton" 3.5 (fsum [ 3.5 ]);
  (* Ten times the double nearest 0.1 sums to exactly 1 + 2^-54, which
     rounds to 1.0 — naive left-to-right addition lands one ulp short. *)
  Alcotest.(check bool) "naive drifts" true
    (List.fold_left ( +. ) 0.0 (List.init 10 (fun _ -> 0.1)) <> 1.0);
  Alcotest.(check bool) "tenth times ten" true (fsum (List.init 10 (fun _ -> 0.1)) = 1.0)

let test_fsum_rejects_non_finite () =
  let f = Stats.Fsum.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Stats.Fsum.add: non-finite term") (fun () ->
      Stats.Fsum.add f Float.nan);
  Alcotest.check_raises "inf" (Invalid_argument "Stats.Fsum.add: non-finite term") (fun () ->
      Stats.Fsum.add f Float.infinity)

let prop_fsum_order_independent =
  Tutil.qcheck ~count:500 "Fsum total is insertion-order independent" Tutil.seed_arb
    (fun seed ->
      let rng = Resa_core.Prng.create ~seed in
      let n = Resa_core.Prng.int_incl rng ~lo:1 ~hi:200 in
      (* Wildly mixed magnitudes to provoke rounding differences. *)
      let xs =
        Array.init n (fun _ ->
            let mag = Resa_core.Prng.int_incl rng ~lo:(-30) ~hi:30 in
            let sign = if Resa_core.Prng.bool rng then 1.0 else -1.0 in
            sign *. Resa_core.Prng.float rng ~bound:1.0 *. (2.0 ** float_of_int mag))
      in
      let a = fsum (Array.to_list xs) in
      Resa_core.Prng.shuffle rng xs;
      let b = fsum (Array.to_list xs) in
      Int64.bits_of_float a = Int64.bits_of_float b)

let test_p2_exact_small () =
  let p2 = Stats.P2.create ~q:0.5 in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.P2.value p2));
  List.iter (Stats.P2.add p2) [ 9.0; 1.0; 5.0 ];
  feq "exact median of 3" 5.0 (Stats.P2.value p2);
  Alcotest.(check int) "count" 3 (Stats.P2.count p2)

let test_p2_rejects_bad_quantile () =
  Alcotest.check_raises "q = 0" (Invalid_argument "Stats.P2.create: q must be in (0, 1)") (fun () ->
      ignore (Stats.P2.create ~q:0.0));
  Alcotest.check_raises "q = 1" (Invalid_argument "Stats.P2.create: q must be in (0, 1)") (fun () ->
      ignore (Stats.P2.create ~q:1.0))

let prop_p2_tracks_uniform =
  Tutil.qcheck ~count:50 "P2 median of U[0,1) lands near 0.5" Tutil.seed_arb (fun seed ->
      let rng = Resa_core.Prng.create ~seed in
      let p2 = Stats.P2.create ~q:0.5 in
      for _ = 1 to 5_000 do
        Stats.P2.add p2 (Resa_core.Prng.float rng ~bound:1.0)
      done;
      Float.abs (Stats.P2.value p2 -. 0.5) < 0.05)

let prop_p2_within_range =
  Tutil.qcheck ~count:200 "P2 estimate stays inside the observed range" Tutil.seed_arb
    (fun seed ->
      let rng = Resa_core.Prng.create ~seed in
      let qs = [| 0.1; 0.5; 0.95 |] in
      let q = qs.(Resa_core.Prng.int rng ~bound:3) in
      let p2 = Stats.P2.create ~q in
      let lo = ref Float.infinity and hi = ref Float.neg_infinity in
      let n = Resa_core.Prng.int_incl rng ~lo:1 ~hi:300 in
      for _ = 1 to n do
        let x = Resa_core.Prng.float rng ~bound:100.0 in
        lo := Float.min !lo x;
        hi := Float.max !hi x;
        Stats.P2.add p2 x
      done;
      let v = Stats.P2.value p2 in
      !lo <= v && v <= !hi)

let suite =
  [
    Alcotest.test_case "mean and variance" `Quick test_mean_variance;
    Alcotest.test_case "min and max" `Quick test_min_max;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram of constant data" `Quick test_histogram_constant_data;
    Alcotest.test_case "describe summary" `Quick test_describe;
    Alcotest.test_case "describe of empty list" `Quick test_describe_empty;
    prop_describe_agrees_with_wrappers;
    Alcotest.test_case "summary line" `Quick test_summary_line;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "table rejects ragged rows" `Quick test_table_rejects_ragged;
    Alcotest.test_case "CSV escaping" `Quick test_table_csv;
    prop_mean_bounded;
    prop_histogram_conserves_count;
    Alcotest.test_case "Fsum exact summation" `Quick test_fsum_exact;
    Alcotest.test_case "Fsum rejects non-finite terms" `Quick test_fsum_rejects_non_finite;
    prop_fsum_order_independent;
    Alcotest.test_case "P2 exact below 5 samples" `Quick test_p2_exact_small;
    Alcotest.test_case "P2 rejects degenerate quantiles" `Quick test_p2_rejects_bad_quantile;
    prop_p2_tracks_uniform;
    prop_p2_within_range;
  ]
