open Resa_core

let steps = Alcotest.(list (pair int int))

let test_constant () =
  let p = Profile.constant 5 in
  Alcotest.(check int) "value at 0" 5 (Profile.value_at p 0);
  Alcotest.(check int) "value far out" 5 (Profile.value_at p 1_000_000);
  Alcotest.check steps "single step" [ (0, 5) ] (Profile.to_steps p)

let test_of_steps_normalizes () =
  let p = Profile.of_steps [ (0, 2); (3, 2); (5, 7) ] in
  Alcotest.check steps "merged equal segments" [ (0, 2); (5, 7) ] (Profile.to_steps p)

let test_of_steps_sorts () =
  let p = Profile.of_steps [ (5, 1); (0, 3); (2, 4) ] in
  Alcotest.check steps "sorted" [ (0, 3); (2, 4); (5, 1) ] (Profile.to_steps p)

let test_of_steps_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Profile.of_steps: empty list") (fun () ->
      ignore (Profile.of_steps []));
  Alcotest.check_raises "no zero start"
    (Invalid_argument "Profile.of_steps: first step must start at time 0") (fun () ->
      ignore (Profile.of_steps [ (1, 2) ]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Profile.of_steps: duplicate times")
    (fun () -> ignore (Profile.of_steps [ (0, 1); (3, 2); (3, 4) ]))

let test_of_events () =
  let p = Profile.of_events ~base:10 [ (2, -3); (5, 3); (2, -1) ] in
  Alcotest.check steps "staircase" [ (0, 10); (2, 6); (5, 9) ] (Profile.to_steps p)

let test_of_events_empty () =
  Alcotest.check steps "constant base" [ (0, 4) ] (Profile.to_steps (Profile.of_events ~base:4 []))

let test_of_events_at_zero () =
  let p = Profile.of_events ~base:3 [ (0, 2) ] in
  Alcotest.check steps "event at origin" [ (0, 5) ] (Profile.to_steps p)

let test_value_at () =
  let p = Profile.of_steps [ (0, 1); (4, 9); (10, 2) ] in
  Alcotest.(check int) "first" 1 (Profile.value_at p 3);
  Alcotest.(check int) "at breakpoint" 9 (Profile.value_at p 4);
  Alcotest.(check int) "last" 2 (Profile.value_at p 99)

let test_min_max_on () =
  let p = Profile.of_steps [ (0, 5); (3, 1); (6, 8) ] in
  Alcotest.(check int) "min across" 1 (Profile.min_on p ~lo:0 ~hi:7);
  Alcotest.(check int) "min inside" 5 (Profile.min_on p ~lo:0 ~hi:3);
  Alcotest.(check int) "min touching" 1 (Profile.min_on p ~lo:2 ~hi:4);
  Alcotest.(check int) "max across" 8 (Profile.max_on p ~lo:0 ~hi:7);
  Alcotest.(check int) "max tail" 8 (Profile.max_on p ~lo:100 ~hi:101)

let test_empty_and_bad_windows () =
  (* All window queries agree on [lo = hi]: the identity of their monoid.
     min_on used to disagree with integral_on here. *)
  let p = Profile.of_steps [ (0, 5); (3, 1); (6, 8) ] in
  Alcotest.(check int) "empty min is max_int" max_int (Profile.min_on p ~lo:4 ~hi:4);
  Alcotest.(check int) "empty max is min_int" min_int (Profile.max_on p ~lo:4 ~hi:4);
  Alcotest.(check int) "empty integral is 0" 0 (Profile.integral_on p ~lo:4 ~hi:4);
  let bad = Invalid_argument "Profile: bad window" in
  Alcotest.check_raises "lo > hi" bad (fun () -> ignore (Profile.min_on p ~lo:5 ~hi:4));
  Alcotest.check_raises "negative lo" bad (fun () ->
      ignore (Profile.integral_on p ~lo:(-1) ~hi:3))

let test_integral () =
  let p = Profile.of_steps [ (0, 5); (3, 1); (6, 8) ] in
  Alcotest.(check int) "full window" ((5 * 3) + (1 * 3) + (8 * 2)) (Profile.integral_on p ~lo:0 ~hi:8);
  Alcotest.(check int) "partial" ((5 * 1) + (1 * 2)) (Profile.integral_on p ~lo:2 ~hi:5);
  Alcotest.(check int) "empty" 0 (Profile.integral_on p ~lo:4 ~hi:4)

let test_add_sub () =
  let a = Profile.of_steps [ (0, 1); (5, 3) ] in
  let b = Profile.of_steps [ (0, 2); (3, 0); (7, 1) ] in
  Alcotest.check steps "sum" [ (0, 3); (3, 1); (5, 3); (7, 4) ] (Profile.to_steps (Profile.add a b));
  Alcotest.(check bool) "a + b - b = a" true
    (Profile.equal a (Profile.sub (Profile.add a b) b))

let test_change () =
  let p = Profile.constant 4 in
  let p = Profile.change p ~lo:2 ~hi:6 ~delta:(-3) in
  Alcotest.check steps "carved" [ (0, 4); (2, 1); (6, 4) ] (Profile.to_steps p);
  Alcotest.(check bool) "empty window is identity" true
    (Profile.equal p (Profile.change p ~lo:5 ~hi:5 ~delta:7))

let test_reserve_ok () =
  let p = Profile.constant 4 in
  let p = Profile.reserve p ~start:1 ~dur:3 ~need:4 in
  Alcotest.(check int) "fully used" 0 (Profile.min_on p ~lo:1 ~hi:4)

let test_reserve_insufficient () =
  let p = Profile.of_steps [ (0, 4); (2, 1) ] in
  Alcotest.check_raises "overbooked"
    (Invalid_argument "Profile.reserve: insufficient capacity in window") (fun () ->
      ignore (Profile.reserve p ~start:0 ~dur:3 ~need:2))

let test_earliest_fit_basic () =
  let p = Profile.of_steps [ (0, 2); (4, 6); (9, 3) ] in
  Alcotest.(check (option int)) "fits now" (Some 0)
    (Profile.earliest_fit p ~from:0 ~dur:3 ~need:2);
  Alcotest.(check (option int)) "waits for capacity" (Some 4)
    (Profile.earliest_fit p ~from:0 ~dur:3 ~need:5);
  Alcotest.(check (option int)) "window must fit wholly" (Some 4)
    (Profile.earliest_fit p ~from:0 ~dur:5 ~need:4)

let test_earliest_fit_window_slides_past_block () =
  (* Capacity dip in the middle: a long job must wait for the dip to end. *)
  let p = Profile.of_steps [ (0, 10); (5, 2); (8, 10) ] in
  Alcotest.(check (option int)) "slides past dip" (Some 8)
    (Profile.earliest_fit p ~from:0 ~dur:6 ~need:5);
  Alcotest.(check (option int)) "short job fits before dip" (Some 0)
    (Profile.earliest_fit p ~from:0 ~dur:5 ~need:5);
  Alcotest.(check (option int)) "narrow job unaffected" (Some 3)
    (Profile.earliest_fit p ~from:3 ~dur:10 ~need:2)

let test_earliest_fit_none () =
  let p = Profile.of_steps [ (0, 5); (10, 1) ] in
  Alcotest.(check (option int)) "tail too small" None
    (Profile.earliest_fit p ~from:11 ~dur:2 ~need:3);
  Alcotest.(check (option int)) "finite window before tail still found" (Some 0)
    (Profile.earliest_fit p ~from:0 ~dur:10 ~need:3)

let test_earliest_fit_respects_from () =
  let p = Profile.constant 5 in
  Alcotest.(check (option int)) "never before from" (Some 7)
    (Profile.earliest_fit p ~from:7 ~dur:2 ~need:1)

let test_next_breakpoint () =
  let p = Profile.of_steps [ (0, 1); (4, 2); (9, 3) ] in
  Alcotest.(check (option int)) "middle" (Some 4) (Profile.next_breakpoint_after p 0);
  Alcotest.(check (option int)) "skip equal" (Some 9) (Profile.next_breakpoint_after p 4);
  Alcotest.(check (option int)) "past end" None (Profile.next_breakpoint_after p 9)

let test_final_and_last () =
  let p = Profile.of_steps [ (0, 1); (4, 2) ] in
  Alcotest.(check int) "final value" 2 (Profile.final_value p);
  Alcotest.(check int) "last breakpoint" 4 (Profile.last_breakpoint p);
  Alcotest.(check int) "min value" 1 (Profile.min_value p);
  Alcotest.(check int) "max value" 2 (Profile.max_value p)

(* --- properties --- *)

let prop_add_commutes =
  Tutil.qcheck "add commutes" QCheck.(pair Tutil.seed_arb Tutil.seed_arb) (fun (s1, s2) ->
      let a = Tutil.profile_of_seed s1 and b = Tutil.profile_of_seed s2 in
      Profile.equal (Profile.add a b) (Profile.add b a))

let prop_sub_self_zero =
  Tutil.qcheck "p - p = 0" Tutil.seed_arb (fun s ->
      let p = Tutil.profile_of_seed s in
      Profile.equal (Profile.sub p p) (Profile.constant 0))

let prop_value_matches_steps =
  Tutil.qcheck "value_at agrees with to_steps" Tutil.seed_arb (fun s ->
      let p = Tutil.profile_of_seed s in
      List.for_all (fun (t, v) -> Profile.value_at p t = v) (Profile.to_steps p))

let prop_integral_additive =
  Tutil.qcheck "integral splits at midpoints"
    QCheck.(pair Tutil.seed_arb (pair small_nat small_nat))
    (fun (s, (a, b)) ->
      let p = Tutil.profile_of_seed s in
      let lo = min a b and mid = max a b in
      let hi = mid + 5 in
      Profile.integral_on p ~lo ~hi
      = Profile.integral_on p ~lo ~hi:mid + Profile.integral_on p ~lo:mid ~hi)

let prop_earliest_fit_is_sound_and_minimal =
  Tutil.qcheck "earliest_fit is sound and minimal"
    QCheck.(pair Tutil.seed_arb (pair small_nat (pair small_nat small_nat)))
    (fun (s, (from, (dur0, need))) ->
      let p = Tutil.profile_of_seed s in
      let dur = dur0 + 1 in
      match Profile.earliest_fit p ~from ~dur ~need with
      | None ->
        (* Then in particular nothing fits in a long explicit scan. *)
        let rec none_until t = t > from + 200 || (Profile.min_on p ~lo:t ~hi:(t + dur) < need && none_until (t + 1)) in
        none_until from
      | Some s0 ->
        s0 >= from
        && Profile.min_on p ~lo:s0 ~hi:(s0 + dur) >= need
        &&
        (* Minimality: brute-force all earlier starts. *)
        let rec check t = t >= s0 || (Profile.min_on p ~lo:t ~hi:(t + dur) < need && check (t + 1)) in
        check from)

let prop_reserve_integral =
  Tutil.qcheck "reserve removes exactly need*dur area" Tutil.seed_arb (fun s ->
      let p = Profile.add_const (Tutil.profile_of_seed s) 5 in
      let hi = Profile.last_breakpoint p + 20 in
      match Profile.earliest_fit p ~from:0 ~dur:4 ~need:2 with
      | None -> true
      | Some t when t + 4 > hi -> true
      | Some t ->
        let p' = Profile.reserve p ~start:t ~dur:4 ~need:2 in
        Profile.integral_on p ~lo:0 ~hi - Profile.integral_on p' ~lo:0 ~hi = 8)

let suite =
  [
    Alcotest.test_case "constant profile" `Quick test_constant;
    Alcotest.test_case "of_steps normalizes" `Quick test_of_steps_normalizes;
    Alcotest.test_case "of_steps sorts input" `Quick test_of_steps_sorts;
    Alcotest.test_case "of_steps rejects bad input" `Quick test_of_steps_rejects;
    Alcotest.test_case "of_events sweeps deltas" `Quick test_of_events;
    Alcotest.test_case "of_events with no events" `Quick test_of_events_empty;
    Alcotest.test_case "of_events at time zero" `Quick test_of_events_at_zero;
    Alcotest.test_case "value_at across segments" `Quick test_value_at;
    Alcotest.test_case "min_on and max_on" `Quick test_min_max_on;
    Alcotest.test_case "empty and bad windows" `Quick test_empty_and_bad_windows;
    Alcotest.test_case "integral_on" `Quick test_integral;
    Alcotest.test_case "pointwise add and sub" `Quick test_add_sub;
    Alcotest.test_case "change over a window" `Quick test_change;
    Alcotest.test_case "reserve consumes capacity" `Quick test_reserve_ok;
    Alcotest.test_case "reserve rejects overbooking" `Quick test_reserve_insufficient;
    Alcotest.test_case "earliest_fit basics" `Quick test_earliest_fit_basic;
    Alcotest.test_case "earliest_fit slides past dips" `Quick test_earliest_fit_window_slides_past_block;
    Alcotest.test_case "earliest_fit can be impossible" `Quick test_earliest_fit_none;
    Alcotest.test_case "earliest_fit respects from" `Quick test_earliest_fit_respects_from;
    Alcotest.test_case "next_breakpoint_after" `Quick test_next_breakpoint;
    Alcotest.test_case "final value and extremes" `Quick test_final_and_last;
    prop_add_commutes;
    prop_sub_self_zero;
    prop_value_matches_steps;
    prop_integral_additive;
    prop_earliest_fit_is_sound_and_minimal;
    prop_reserve_integral;
  ]
