open Resa_core
open Resa_algos
open Resa_flow

(* --- max-flow substrate --- *)

let test_maxflow_basic () =
  let g = Maxflow.create ~n_nodes:4 in
  let _ = Maxflow.add_edge g ~src:0 ~dst:1 ~cap:3 in
  let _ = Maxflow.add_edge g ~src:0 ~dst:2 ~cap:2 in
  let e13 = Maxflow.add_edge g ~src:1 ~dst:3 ~cap:2 in
  let _ = Maxflow.add_edge g ~src:2 ~dst:3 ~cap:3 in
  let _ = Maxflow.add_edge g ~src:1 ~dst:2 ~cap:5 in
  Alcotest.(check int) "max flow" 5 (Maxflow.max_flow g ~source:0 ~sink:3);
  Alcotest.(check int) "edge 1->3 saturated" 2 (Maxflow.flow_on g e13)

let test_maxflow_disconnected () =
  let g = Maxflow.create ~n_nodes:3 in
  let _ = Maxflow.add_edge g ~src:0 ~dst:1 ~cap:7 in
  Alcotest.(check int) "no path" 0 (Maxflow.max_flow g ~source:0 ~sink:2)

let test_maxflow_bottleneck () =
  let g = Maxflow.create ~n_nodes:4 in
  let _ = Maxflow.add_edge g ~src:0 ~dst:1 ~cap:100 in
  let _ = Maxflow.add_edge g ~src:1 ~dst:2 ~cap:1 in
  let _ = Maxflow.add_edge g ~src:2 ~dst:3 ~cap:100 in
  Alcotest.(check int) "bottleneck" 1 (Maxflow.max_flow g ~source:0 ~sink:3)

let prop_maxflow_bipartite_matching =
  (* On a k×k bipartite graph with all edges, max flow = k. *)
  Tutil.qcheck ~count:30 "complete bipartite matching" QCheck.(int_range 1 8) (fun k ->
      let g = Maxflow.create ~n_nodes:(2 + (2 * k)) in
      for i = 0 to k - 1 do
        ignore (Maxflow.add_edge g ~src:0 ~dst:(2 + i) ~cap:1);
        ignore (Maxflow.add_edge g ~src:(2 + k + i) ~dst:1 ~cap:1);
        for j = 0 to k - 1 do
          ignore (Maxflow.add_edge g ~src:(2 + i) ~dst:(2 + k + j) ~cap:1)
        done
      done;
      Maxflow.max_flow g ~source:0 ~sink:1 = k)

(* --- preemptive scheduling --- *)

let test_mcnaughton_classic () =
  (* m=2, jobs 1,1,1: continuous optimum is 1.5; integer-preemptive is 2. *)
  let inst = Instance.of_sizes ~m:2 [ (1, 1); (1, 1); (1, 1) ] in
  let r = Preemptive.optimal inst in
  Alcotest.(check int) "integer preemptive optimum" 2 r.makespan;
  Alcotest.(check bool) "valid" true (Preemptive.validate inst r)

let test_wraparound_splits () =
  (* m=2, jobs 3,3,2: W=8, optimum ceil(8/2)=4 needs a split job. *)
  let inst = Instance.of_sizes ~m:2 [ (3, 1); (3, 1); (2, 1) ] in
  let r = Preemptive.optimal inst in
  Alcotest.(check int) "perfect packing" 4 r.makespan;
  Alcotest.(check bool) "valid" true (Preemptive.validate inst r)

let test_preemption_beats_nonpreemption () =
  (* A reservation splits time so a long job MUST preempt to use the gap. *)
  let inst = Instance.of_sizes ~m:1 ~reservations:[ (2, 3, 1) ] [ (4, 1) ] in
  let r = Preemptive.optimal inst in
  Alcotest.(check int) "preemptive threads the gap" 7 r.makespan;
  Alcotest.(check bool) "valid" true (Preemptive.validate inst r);
  (* Non-preemptive must take the window after the reservation. *)
  let lsrc = Schedule.makespan inst (Lsrc.run inst) in
  Alcotest.(check int) "non-preemptive waits" 9 lsrc

let test_schmidt_condition_hand () =
  let inst = Instance.of_sizes ~m:2 [ (1, 1); (1, 1); (1, 1) ] in
  Alcotest.(check bool) "infeasible at 1" false (Preemptive.schmidt_feasible inst ~deadline:1);
  Alcotest.(check bool) "feasible at 2" true (Preemptive.schmidt_feasible inst ~deadline:2)

let test_rejects_parallel_jobs () =
  let inst = Instance.of_sizes ~m:4 [ (1, 2) ] in
  Alcotest.check_raises "q=1 only" (Invalid_argument "Preemptive: jobs must have q = 1")
    (fun () -> ignore (Preemptive.optimal inst))

let test_empty () =
  let inst = Instance.of_sizes ~m:3 [] in
  Alcotest.(check int) "empty" 0 (Preemptive.optimal inst).makespan

let seq_instance_of_seed seed =
  let rng = Prng.create ~seed in
  let m = Prng.int_incl rng ~lo:1 ~hi:6 in
  let n = Prng.int_incl rng ~lo:1 ~hi:8 in
  let jobs = List.init n (fun i -> Job.make ~id:i ~p:(Prng.int_incl rng ~lo:1 ~hi:8) ~q:1) in
  let reservations = ref [] and u = ref (Profile.constant 0) in
  for i = 0 to Prng.int_incl rng ~lo:0 ~hi:2 - 1 do
    let start = Prng.int rng ~bound:12 and p = Prng.int_incl rng ~lo:1 ~hi:6 in
    let q = Prng.int_incl rng ~lo:1 ~hi:m in
    let u' = Profile.change !u ~lo:start ~hi:(start + p) ~delta:q in
    if Profile.max_value u' <= m then begin
      u := u';
      reservations := Reservation.make ~id:i ~start ~p ~q :: !reservations
    end
  done;
  Instance.create_exn ~m ~jobs ~reservations:!reservations

let prop_schmidt_equals_flow =
  Tutil.qcheck ~count:150 "Schmidt condition = flow feasibility" QCheck.(pair Tutil.seed_arb (int_range 0 30))
    (fun (seed, deadline) ->
      let inst = seq_instance_of_seed seed in
      Preemptive.schmidt_feasible inst ~deadline = Preemptive.feasible_by inst ~deadline)

let prop_optimal_schedules_validate =
  Tutil.qcheck ~count:100 "optimal preemptive schedules validate" Tutil.seed_arb (fun seed ->
      let inst = seq_instance_of_seed seed in
      let r = Preemptive.optimal inst in
      Preemptive.validate inst r)

let prop_preemptive_below_nonpreemptive =
  Tutil.qcheck ~count:100 "preemptive opt <= non-preemptive opt" Tutil.seed_arb (fun seed ->
      let inst = seq_instance_of_seed seed in
      let pre = (Preemptive.optimal inst).makespan in
      match Resa_exact.Bnb.optimal_makespan ~node_limit:300_000 inst with
      | None -> QCheck.assume_fail ()
      | Some np -> pre <= np)

let prop_preemptive_minimal =
  Tutil.qcheck ~count:80 "one less unit is infeasible" Tutil.seed_arb (fun seed ->
      let inst = seq_instance_of_seed seed in
      let r = Preemptive.optimal inst in
      r.makespan = 0 || not (Preemptive.feasible_by inst ~deadline:(r.makespan - 1)))

let suite =
  [
    Alcotest.test_case "max flow basics" `Quick test_maxflow_basic;
    Alcotest.test_case "max flow disconnected" `Quick test_maxflow_disconnected;
    Alcotest.test_case "max flow bottleneck" `Quick test_maxflow_bottleneck;
    prop_maxflow_bipartite_matching;
    Alcotest.test_case "McNaughton classic" `Quick test_mcnaughton_classic;
    Alcotest.test_case "wrap-around splits a job" `Quick test_wraparound_splits;
    Alcotest.test_case "preemption threads reservation gaps" `Quick test_preemption_beats_nonpreemption;
    Alcotest.test_case "Schmidt condition by hand" `Quick test_schmidt_condition_hand;
    Alcotest.test_case "parallel jobs rejected" `Quick test_rejects_parallel_jobs;
    Alcotest.test_case "empty instance" `Quick test_empty;
    prop_schmidt_equals_flow;
    prop_optimal_schedules_validate;
    prop_preemptive_below_nonpreemptive;
    prop_preemptive_minimal;
  ]
