open Resa_core
open Resa_exact

let test_simple_sequence () =
  let inst = Instance.of_sizes ~m:1 [ (3, 1); (2, 1); (4, 1) ] in
  let sched, opt = Single_machine.solve inst in
  Alcotest.(check int) "sum of durations" 9 opt;
  Tutil.check_feasible "dp schedule" inst sched;
  Alcotest.(check int) "schedule achieves it" 9 (Schedule.makespan inst sched)

let test_threads_around_reservations () =
  (* Windows of length 3 and 4 separated by blocks; jobs 3,4 fit exactly in
     one order but not the other. *)
  let inst =
    Instance.of_sizes ~m:1 ~reservations:[ (3, 2, 1); (9, 2, 1) ] [ (4, 1); (3, 1) ]
  in
  let sched, opt = Single_machine.solve inst in
  Tutil.check_feasible "dp around reservations" inst sched;
  Alcotest.(check int) "3 before the gap, 4 after" 9 opt;
  Alcotest.(check int) "job 1 first" 0 (Schedule.start sched 1);
  Alcotest.(check int) "job 0 second" 5 (Schedule.start sched 0)

let test_matches_bnb () =
  let rng = Prng.create ~seed:61 in
  for _ = 1 to 25 do
    let n = Prng.int_incl rng ~lo:1 ~hi:6 in
    let jobs = List.init n (fun i -> Job.make ~id:i ~p:(Prng.int_incl rng ~lo:1 ~hi:6) ~q:1) in
    let reservations =
      if Prng.bool rng then
        [ Reservation.make ~id:0 ~start:(Prng.int_incl rng ~lo:1 ~hi:8) ~p:(Prng.int_incl rng ~lo:1 ~hi:4) ~q:1 ]
      else []
    in
    let inst = Instance.create_exn ~m:1 ~jobs ~reservations in
    let dp = Single_machine.optimal_makespan inst in
    match Bnb.optimal_makespan inst with
    | Some bb -> Alcotest.(check int) "dp = b&b" bb dp
    | None -> Alcotest.fail "b&b inconclusive on a tiny instance"
  done

let test_fig1_reduction_optimum () =
  (* The DP certifies C* = k(B+1)-1 on a YES reduction instance (k = 5,
     n = 15 jobs — beyond the B&B's comfort zone). *)
  let rng = Prng.create ~seed:62 in
  let tp = Resa_gen.Threepartition.random_yes rng ~k:5 ~b:12 in
  let inst =
    Resa_analysis.Transform.of_three_partition ~xs:tp.Resa_gen.Threepartition.xs ~b:12 ~rho:2
  in
  Alcotest.(check int) "certified target"
    (Resa_analysis.Transform.three_partition_target ~k:5 ~b:12)
    (Single_machine.optimal_makespan inst)

let test_rejects_bad_inputs () =
  let wide = Instance.of_sizes ~m:2 [ (1, 2) ] in
  Alcotest.check_raises "m must be 1" (Invalid_argument "Single_machine.solve: requires m = 1")
    (fun () -> ignore (Single_machine.solve wide));
  let many =
    Instance.of_sizes ~m:1 (List.init (Single_machine.max_jobs + 1) (fun _ -> (1, 1)))
  in
  Alcotest.check_raises "size limit" (Invalid_argument "Single_machine.solve: too many jobs")
    (fun () -> ignore (Single_machine.solve many))

let test_empty () =
  let inst = Instance.of_sizes ~m:1 [] in
  Alcotest.(check int) "empty" 0 (Single_machine.optimal_makespan inst)

let prop_dp_bounded_by_heuristics =
  Tutil.qcheck ~count:100 "DP optimum between lower bound and LSRC" Tutil.seed_arb (fun seed ->
      let rng = Prng.create ~seed in
      let n = Prng.int_incl rng ~lo:1 ~hi:10 in
      let jobs = List.init n (fun i -> Job.make ~id:i ~p:(Prng.int_incl rng ~lo:1 ~hi:7) ~q:1) in
      let reservations =
        List.filteri (fun i _ -> i < 2)
          (List.init 2 (fun i ->
               Reservation.make ~id:i ~start:(1 + (7 * i)) ~p:(Prng.int_incl rng ~lo:1 ~hi:3) ~q:1))
      in
      let inst = Instance.create_exn ~m:1 ~jobs ~reservations in
      let opt = Single_machine.optimal_makespan inst in
      Lower_bounds.best inst <= opt
      && opt <= Schedule.makespan inst (Resa_algos.Lsrc.run inst))

let suite =
  [
    Alcotest.test_case "sequencing without reservations" `Quick test_simple_sequence;
    Alcotest.test_case "threads jobs around reservations" `Quick test_threads_around_reservations;
    Alcotest.test_case "matches branch and bound" `Quick test_matches_bnb;
    Alcotest.test_case "certifies the FIG1 optimum at k=5" `Quick test_fig1_reduction_optimum;
    Alcotest.test_case "input validation" `Quick test_rejects_bad_inputs;
    Alcotest.test_case "empty instance" `Quick test_empty;
    prop_dp_bounded_by_heuristics;
  ]
