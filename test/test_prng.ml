open Resa_core

let test_determinism () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then distinct := true
  done;
  Alcotest.(check bool) "different seeds differ" true !distinct

let test_int_range () =
  let g = Prng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Prng.int g ~bound:7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done

let test_int_incl_range () =
  let g = Prng.create ~seed:10 in
  for _ = 1 to 1000 do
    let v = Prng.int_incl g ~lo:(-3) ~hi:4 in
    if v < -3 || v > 4 then Alcotest.failf "out of range: %d" v
  done

let test_int_incl_degenerate () =
  let g = Prng.create ~seed:11 in
  Alcotest.(check int) "lo=hi" 5 (Prng.int_incl g ~lo:5 ~hi:5)

let test_int_covers_all_values () =
  let g = Prng.create ~seed:12 in
  let seen = Array.make 5 false in
  for _ = 1 to 2000 do
    seen.(Prng.int g ~bound:5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let g = Prng.create ~seed:13 in
  for _ = 1 to 1000 do
    let v = Prng.float g ~bound:2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

let test_bool_both () =
  let g = Prng.create ~seed:14 in
  let t = ref false and f = ref false in
  for _ = 1 to 200 do
    if Prng.bool g then t := true else f := true
  done;
  Alcotest.(check bool) "both outcomes" true (!t && !f)

let test_shuffle_permutation () =
  let g = Prng.create ~seed:15 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_copy_independent () =
  let g = Prng.create ~seed:16 in
  let _ = Prng.bits64 g in
  let h = Prng.copy g in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 g) (Prng.bits64 h)

let test_split_independent () =
  let g = Prng.create ~seed:17 in
  let h = Prng.split g in
  (* The split stream must not simply mirror the parent. *)
  let same = ref true in
  for _ = 1 to 5 do
    if Prng.bits64 g <> Prng.bits64 h then same := false
  done;
  Alcotest.(check bool) "split differs from parent" false !same

let test_exponential_positive () =
  let g = Prng.create ~seed:18 in
  for _ = 1 to 500 do
    if Prng.exponential g ~mean:3.0 < 0.0 then Alcotest.fail "negative sample"
  done

let test_exponential_mean () =
  let g = Prng.create ~seed:19 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential g ~mean:5.0
  done;
  let mu = !sum /. float_of_int n in
  if mu < 4.5 || mu > 5.5 then Alcotest.failf "mean %.3f too far from 5" mu

let test_log_uniform_bounds () =
  let g = Prng.create ~seed:20 in
  for _ = 1 to 1000 do
    let v = Prng.log_uniform_int g ~lo:2 ~hi:1000 in
    if v < 2 || v > 1000 then Alcotest.failf "out of range: %d" v
  done

let test_log_uniform_skew () =
  (* Log-uniform over [1, 1024] should put roughly half the mass below 32. *)
  let g = Prng.create ~seed:21 in
  let n = 10_000 in
  let below = ref 0 in
  for _ = 1 to n do
    if Prng.log_uniform_int g ~lo:1 ~hi:1024 <= 32 then incr below
  done;
  let frac = float_of_int !below /. float_of_int n in
  if frac < 0.35 || frac > 0.65 then Alcotest.failf "low-half mass %.3f not near 0.5" frac

let test_invalid_args () =
  let g = Prng.create ~seed:22 in
  Alcotest.check_raises "int bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g ~bound:0));
  Alcotest.check_raises "int_incl inverted" (Invalid_argument "Prng.int_incl: lo > hi") (fun () ->
      ignore (Prng.int_incl g ~lo:3 ~hi:2));
  Alcotest.check_raises "choose empty" (Invalid_argument "Prng.choose: empty array") (fun () ->
      ignore (Prng.choose g [||]))

let suite =
  [
    Alcotest.test_case "same seed, same stream" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_seed_sensitivity;
    Alcotest.test_case "int stays in range" `Quick test_int_range;
    Alcotest.test_case "int_incl stays in range" `Quick test_int_incl_range;
    Alcotest.test_case "int_incl degenerate range" `Quick test_int_incl_degenerate;
    Alcotest.test_case "int covers all values" `Quick test_int_covers_all_values;
    Alcotest.test_case "float stays in range" `Quick test_float_range;
    Alcotest.test_case "bool produces both values" `Quick test_bool_both;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
    Alcotest.test_case "copy is an exact clone" `Quick test_copy_independent;
    Alcotest.test_case "split decorrelates" `Quick test_split_independent;
    Alcotest.test_case "exponential is non-negative" `Quick test_exponential_positive;
    Alcotest.test_case "exponential has the right mean" `Slow test_exponential_mean;
    Alcotest.test_case "log_uniform_int stays in bounds" `Quick test_log_uniform_bounds;
    Alcotest.test_case "log_uniform_int is log-skewed" `Slow test_log_uniform_skew;
    Alcotest.test_case "invalid arguments are rejected" `Quick test_invalid_args;
  ]
