(* Shared helpers and QCheck generators for the test suites. *)

open Resa_core

let check_feasible name inst sched =
  match Schedule.validate inst sched with
  | Ok () -> ()
  | Error v -> Alcotest.failf "%s: infeasible schedule: %a" name Schedule.pp_violation v

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Instances are generated from a seed so they print and shrink as ints. *)
let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(map abs int)

let small_rigid_of_seed seed =
  (* Reservation-free, m <= 8, n <= 8: within reach of the exact solver. *)
  let rng = Prng.create ~seed in
  let m = Prng.int_incl rng ~lo:1 ~hi:8 in
  let n = Prng.int_incl rng ~lo:1 ~hi:8 in
  let jobs =
    List.init n (fun i ->
        Job.make ~id:i ~p:(Prng.int_incl rng ~lo:1 ~hi:9) ~q:(Prng.int_incl rng ~lo:1 ~hi:m))
  in
  Instance.create_exn ~m ~jobs ~reservations:[]

let small_resa_of_seed seed =
  (* With reservations, still exact-solver sized. *)
  let rng = Prng.create ~seed in
  let m = Prng.int_incl rng ~lo:2 ~hi:8 in
  let n = Prng.int_incl rng ~lo:1 ~hi:6 in
  let jobs =
    List.init n (fun i ->
        Job.make ~id:i ~p:(Prng.int_incl rng ~lo:1 ~hi:8) ~q:(Prng.int_incl rng ~lo:1 ~hi:m))
  in
  let n_res = Prng.int_incl rng ~lo:0 ~hi:3 in
  let reservations = ref [] in
  let u = ref (Profile.constant 0) in
  for i = 0 to n_res - 1 do
    let start = Prng.int rng ~bound:20 in
    let p = Prng.int_incl rng ~lo:1 ~hi:8 in
    let q = Prng.int_incl rng ~lo:1 ~hi:m in
    let u' = Profile.change !u ~lo:start ~hi:(start + p) ~delta:q in
    if Profile.max_value u' <= m - 1 then begin
      (* Keep one processor always free so every job can eventually run. *)
      u := u';
      reservations := Reservation.make ~id:i ~start ~p ~q :: !reservations
    end
  done;
  Instance.create_exn ~m ~jobs ~reservations:!reservations

let medium_alpha_of_seed ~alpha seed =
  let rng = Prng.create ~seed in
  let m = 4 * Prng.int_incl rng ~lo:2 ~hi:8 in
  let n = Prng.int_incl rng ~lo:5 ~hi:40 in
  Resa_gen.Random_inst.alpha_restricted rng ~m ~n ~alpha ~pmax:10 ()

let profile_of_seed seed =
  (* Arbitrary non-negative step function. *)
  let rng = Prng.create ~seed in
  let n_events = Prng.int_incl rng ~lo:0 ~hi:12 in
  let deltas =
    List.init n_events (fun _ ->
        (Prng.int rng ~bound:30, Prng.int_incl rng ~lo:(-3) ~hi:3))
  in
  let base = Prng.int_incl rng ~lo:0 ~hi:10 in
  let p = Profile.of_events ~base deltas in
  (* Shift up so it is capacity-like (non-negative). *)
  let lift = max 0 (-Profile.min_value p) in
  Profile.add_const p lift
