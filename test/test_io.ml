open Resa_core

let sample = "# demo instance\nm 8\njob 5 2\njob 2 5\nres 6 4 5\n"

let test_parse () =
  match Instance_io.of_string sample with
  | Error msg -> Alcotest.fail msg
  | Ok inst ->
    Alcotest.(check int) "m" 8 (Instance.m inst);
    Alcotest.(check int) "jobs" 2 (Instance.n_jobs inst);
    Alcotest.(check int) "reservations" 1 (Instance.n_reservations inst);
    Alcotest.(check int) "job 1 width" 5 (Job.q (Instance.job inst 1))

let test_round_trip () =
  let inst =
    Instance.of_sizes ~m:6 ~reservations:[ (3, 2, 4); (8, 1, 1) ] [ (4, 3); (2, 5); (7, 1) ]
  in
  match Instance_io.of_string (Instance_io.to_string inst) with
  | Error msg -> Alcotest.fail msg
  | Ok inst' ->
    Alcotest.(check int) "m" (Instance.m inst) (Instance.m inst');
    Alcotest.(check int) "jobs" (Instance.n_jobs inst) (Instance.n_jobs inst');
    Alcotest.(check bool) "same unavailability" true
      (Profile.equal (Instance.unavailability inst) (Instance.unavailability inst'))

let test_errors_cite_lines () =
  (match Instance_io.of_string "m 4\njob 0 1\n" with
  | Error msg -> Alcotest.(check string) "line cited" "line 2: invalid job" msg
  | Ok _ -> Alcotest.fail "invalid job accepted");
  (match Instance_io.of_string "m 4\nfrob 1 2\n" with
  | Error msg ->
    Alcotest.(check bool) "directive named" true (String.length msg > 10)
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Instance_io.of_string "job 1 1\n" with
  | Error msg -> Alcotest.(check string) "missing m" "missing 'm <machines>' line" msg
  | Ok _ -> Alcotest.fail "missing m accepted"

let test_semantic_errors_propagate () =
  (* Structurally fine but infeasible reservations must still be rejected. *)
  match Instance_io.of_string "m 2\nres 0 5 2\nres 1 5 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overbooked reservations accepted"

let prop_round_trip =
  Tutil.qcheck ~count:100 "instance files round trip" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      match Instance_io.of_string (Instance_io.to_string inst) with
      | Error _ -> false
      | Ok inst' ->
        Instance.m inst = Instance.m inst'
        && Instance.n_jobs inst = Instance.n_jobs inst'
        && Profile.equal (Instance.unavailability inst) (Instance.unavailability inst')
        && Array.for_all2
             (fun a b -> Job.p a = Job.p b && Job.q a = Job.q b)
             (Instance.jobs inst) (Instance.jobs inst'))

let suite =
  [
    Alcotest.test_case "parse a file" `Quick test_parse;
    Alcotest.test_case "print/parse round trip" `Quick test_round_trip;
    Alcotest.test_case "errors cite line numbers" `Quick test_errors_cite_lines;
    Alcotest.test_case "semantic validation applies" `Quick test_semantic_errors_propagate;
    prop_round_trip;
  ]
