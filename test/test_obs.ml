(* Observability layer: sinks, JSONL round-trips, Chrome export, the
   tracing-off byte-identity contract, cross-domain determinism of traced
   event streams, per-job metrics/CSV, provenance classification, enriched
   policy errors, profiling counters, and the explain renderer. *)

open Resa_core
open Resa_sim
module Trace = Resa_obs.Trace
module Prof = Resa_obs.Prof

(* --- shared workload ---------------------------------------------------- *)

let workload ?(seed = 77) ?(n = 25) ?(m = 8) () =
  let rng = Prng.create ~seed in
  let inst = Resa_gen.Random_inst.alpha_restricted rng ~m ~n ~alpha:0.5 ~pmax:9 () in
  let arr = Resa_gen.Arrivals.poisson rng ~n ~mean_gap:2.0 in
  let subs =
    List.init n (fun i -> Simulator.{ job = Instance.job inst i; submit = arr.(i) })
  in
  (subs, Array.to_list (Instance.reservations inst))

(* Serialise a traced run to its canonical JSONL text (run-tagged). The
   simulator hands its tracer to the policy's [create], so policy events
   land in the same sink without extra plumbing. *)
let event_stream ~policy ~name ~m ~reservations subs =
  let obs = Trace.buffer () in
  let trace = Simulator.run ~obs ~policy ~m ~reservations subs in
  let text =
    String.concat "\n" (List.map (Trace.to_json ~run:name) (Trace.contents obs))
  in
  (trace, text)

(* --- sinks -------------------------------------------------------------- *)

let test_ring_bounded () =
  let obs = Trace.buffer ~cap:4 () in
  for t = 0 to 9 do
    Trace.emit obs (Trace.Sim_wake { time = t; forced = false })
  done;
  let times =
    List.map
      (function Trace.Sim_wake { time; _ } -> time | _ -> -1)
      (Trace.contents obs)
  in
  Alcotest.(check (list int)) "most recent cap events, oldest first" [ 6; 7; 8; 9 ] times;
  Alcotest.(check int) "dropped count" 6 (Trace.dropped obs)

let test_null_sink_disabled () =
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  Alcotest.(check bool) "buffer enabled" true (Trace.enabled (Trace.buffer ()));
  Trace.emit Trace.null (Trace.Job_finish { time = 0; job = 0 });
  Alcotest.(check (list reject)) "null keeps nothing" [] (Trace.contents Trace.null)

let test_file_sink_jsonl () =
  let path = Filename.temp_file "resa_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          let obs = Trace.file ~run:"smoke" oc in
          Trace.emit obs (Trace.Job_submit { time = 1; job = 7; p = 3; q = 2 });
          Trace.emit obs (Trace.Job_finish { time = 4; job = 7 }));
      let lines = In_channel.with_open_text path In_channel.input_lines in
      Alcotest.(check int) "two lines" 2 (List.length lines);
      match Trace.parse_line (List.hd lines) with
      | Ok (Some "smoke", Trace.Job_submit { time = 1; job = 7; p = 3; q = 2 }) -> ()
      | Ok _ -> Alcotest.fail "wrong event parsed back"
      | Error e -> Alcotest.fail e)

(* --- JSONL round-trip --------------------------------------------------- *)

let all_constructors =
  [
    Trace.Job_submit { time = 0; job = 1; p = 5; q = 2 };
    Trace.Job_start { time = 3; job = 1; wait = 3; provenance = Trace.Started_now };
    Trace.Job_start
      { time = 3; job = 2; wait = 1; provenance = Trace.Backfilled_ahead_of_head };
    Trace.Job_finish { time = 8; job = 1 };
    Trace.Decision { time = 3; policy = "EASY"; queued = 4; started = 2; wake = Some 9 };
    Trace.Decision { time = 4; policy = "FCFS"; queued = 0; started = 0; wake = None };
    Trace.Head_blocked
      {
        time = 3;
        policy = "EASY";
        job = 5;
        reason = Trace.Blocked_by_reservation;
        lo = 3;
        hi = 12;
        need = 6;
        have = 2;
      };
    Trace.Planned { time = 3; policy = "CONS"; job = 5; at = 12 };
    Trace.Resv_accept { resv = 0; start = 10; p = 4; q = 3 };
    Trace.Resv_reject { start = 10; p = 4; q = 30; reason = "too wide \"quoted\"" };
    Trace.Sim_wake { time = 42; forced = true };
    Trace.Truncated { dropped = 6 };
  ]

let test_jsonl_roundtrip () =
  List.iter
    (fun ev ->
      let line = Trace.to_json ~run:"r1" ev in
      match Trace.parse_line line with
      | Ok (run, ev') ->
        Alcotest.(check (option string)) "run tag" (Some "r1") run;
        Alcotest.(check bool) (Printf.sprintf "round-trip %s" line) true (ev = ev')
      | Error e -> Alcotest.failf "parse %s: %s" line e)
    all_constructors;
  (* Untagged lines round-trip too. *)
  let line = Trace.to_json (List.hd all_constructors) in
  match Trace.parse_line line with
  | Ok (None, ev') ->
    Alcotest.(check bool) "untagged" true (List.hd all_constructors = ev')
  | Ok (Some _, _) -> Alcotest.fail "phantom run tag"
  | Error e -> Alcotest.fail e

let test_provenance_strings () =
  List.iter
    (fun p ->
      match Trace.provenance_of_string (Trace.provenance_to_string p) with
      | Some p' -> Alcotest.(check bool) "provenance round-trip" true (p = p')
      | None -> Alcotest.fail "unparseable provenance")
    [
      Trace.Started_now;
      Trace.Backfilled_ahead_of_head;
      Trace.Blocked_by_reservation;
      Trace.Blocked_by_capacity;
      Trace.Held_by_policy;
    ]

(* --- tracing off is byte-identical -------------------------------------- *)

let test_tracing_off_identical () =
  let subs, reservations = workload () in
  List.iter
    (fun (name, policy) ->
      let plain = Simulator.run ~policy ~m:8 ~reservations subs in
      let obs = Trace.buffer () in
      let traced = Simulator.run ~obs ~policy ~m:8 ~reservations subs in
      let starts (t : Simulator.trace) =
        List.map (fun (r : Simulator.record) -> r.start) t.records
      in
      Alcotest.(check (list int))
        (name ^ ": identical starts") (starts plain) (starts traced);
      Alcotest.(check string)
        (name ^ ": identical metrics row")
        (Metrics.row ~name (Metrics.summarize plain))
        (Metrics.row ~name (Metrics.summarize traced));
      let inst, sched = Simulator.to_offline traced in
      (match Schedule.validate inst sched with
      | Ok () -> ()
      | Error v -> Alcotest.failf "%s: infeasible: %a" name Schedule.pp_violation v);
      Alcotest.(check bool) (name ^ ": events collected") true (Trace.contents obs <> []))
    [
      ("FCFS", Policy.fcfs);
      ("CONS", Policy.conservative);
      ("EASY", Policy.easy);
      ("LSRC", Policy.aggressive);
    ]

(* --- deterministic event streams across pool sizes ----------------------- *)

let test_deterministic_across_domains () =
  let subs, reservations = workload ~n:30 () in
  let policies =
    [
      ("FCFS", Policy.fcfs);
      ("CONS", Policy.conservative);
      ("EASY", Policy.easy);
      ("LSRC", Policy.aggressive);
    ]
  in
  let streams () =
    Resa_par.parallel_map_list
      (fun (name, policy) -> snd (event_stream ~policy ~name ~m:8 ~reservations subs))
      policies
  in
  let s1 = Resa_par.with_domains 1 streams in
  let s4 = Resa_par.with_domains 4 streams in
  List.iter2
    (fun a b -> Alcotest.(check string) "identical serialized stream" a b)
    s1 s4

(* --- provenance classification ------------------------------------------ *)

let start_event_of obs id =
  List.find_map
    (function
      | Trace.Job_start { job; provenance; wait; time } when job = id ->
        Some (time, wait, provenance)
      | _ -> None)
    (Trace.contents obs)

let test_backfill_provenance () =
  (* The EASY example from test_sim: j2 backfills past the blocked head j1. *)
  let subs =
    [
      Simulator.{ job = Job.make ~id:0 ~p:4 ~q:3; submit = 0 };
      Simulator.{ job = Job.make ~id:1 ~p:4 ~q:4; submit = 0 };
      Simulator.{ job = Job.make ~id:2 ~p:4 ~q:1; submit = 0 };
    ]
  in
  let obs = Trace.buffer () in
  let _ = Simulator.run ~obs ~policy:Policy.easy ~m:4 subs in
  (match start_event_of obs 2 with
  | Some (0, 0, Trace.Backfilled_ahead_of_head) -> ()
  | Some (t, w, p) ->
    Alcotest.failf "j2: got t=%d wait=%d %s" t w (Trace.provenance_to_string p)
  | None -> Alcotest.fail "j2 start event missing");
  (match start_event_of obs 0 with
  | Some (0, 0, Trace.Started_now) -> ()
  | _ -> Alcotest.fail "j0 should be started-now");
  (* The blocked head j1 must be reported blocked by capacity (running j0
     holds 3 of 4 processors), and its wait recorded at start. *)
  let head_blocks =
    List.filter_map
      (function
        | Trace.Head_blocked { job = 1; reason; need; have; _ } -> Some (reason, need, have)
        | _ -> None)
      (Trace.contents obs)
  in
  match head_blocks with
  | (Trace.Blocked_by_capacity, 4, have) :: _ when have < 4 -> ()
  | (r, n, h) :: _ ->
    Alcotest.failf "head block: %s need=%d have=%d" (Trace.provenance_to_string r) n h
  | [] -> Alcotest.fail "no Head_blocked for j1"

let test_reservation_blocked_provenance () =
  (* One reservation holds the whole machine over [0,5): the head is blocked
     by it, not by running jobs. *)
  let resv = [ Reservation.make ~id:0 ~start:0 ~p:5 ~q:4 ] in
  let subs = [ Simulator.{ job = Job.make ~id:0 ~p:3 ~q:2; submit = 0 } ] in
  let obs = Trace.buffer () in
  let _ = Simulator.run ~obs ~policy:Policy.fcfs ~m:4 ~reservations:resv subs in
  let reasons =
    List.filter_map
      (function Trace.Head_blocked { reason; _ } -> Some reason | _ -> None)
      (Trace.contents obs)
  in
  match reasons with
  | Trace.Blocked_by_reservation :: _ -> ()
  | r :: _ -> Alcotest.failf "expected reservation block, got %s" (Trace.provenance_to_string r)
  | [] -> Alcotest.fail "no Head_blocked emitted"

(* --- reservation book events -------------------------------------------- *)

let test_book_emits_admission_events () =
  let obs = Trace.buffer () in
  let book = Reservation_book.create ~obs ~m:10 ~alpha:0.6 () in
  (match Reservation_book.request book ~start:0 ~p:5 ~q:3 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "in-cap request rejected");
  (match Reservation_book.request book ~start:2 ~p:5 ~q:3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "saturating request accepted");
  match Trace.contents obs with
  | [ Trace.Resv_accept { resv = 0; start = 0; p = 5; q = 3 }; Trace.Resv_reject { reason; _ } ]
    ->
    Alcotest.(check bool) "reject reason rendered" true (String.length reason > 0)
  | evs -> Alcotest.failf "unexpected admission events (%d)" (List.length evs)

(* --- Chrome export ------------------------------------------------------ *)

let test_chrome_export_wellformed () =
  let subs, reservations = workload ~n:12 () in
  let obs = Trace.buffer () in
  let trace = Simulator.run ~obs ~policy:Policy.easy ~m:8 ~reservations subs in
  let slices = Sim_trace.chrome_slices ~process:"EASY" trace in
  Alcotest.(check bool) "has slices" true (slices <> []);
  let doc = Resa_obs.Chrome.to_string slices in
  match Resa_obs.Jsonu.of_string doc with
  | Error e -> Alcotest.failf "chrome JSON does not parse: %s" e
  | Ok json -> (
    match Resa_obs.Jsonu.member "traceEvents" json with
    | Some (Resa_obs.Jsonu.List evs) ->
      Alcotest.(check bool) "traceEvents non-empty" true (evs <> []);
      (* Every complete event must carry pid/tid/ts/dur. *)
      List.iter
        (fun ev ->
          match Resa_obs.Jsonu.member "ph" ev with
          | Some (Resa_obs.Jsonu.Str "X") ->
            List.iter
              (fun k ->
                if Resa_obs.Jsonu.member k ev = None then
                  Alcotest.failf "slice missing %s" k)
              [ "pid"; "tid"; "ts"; "dur"; "name" ]
          | _ -> ())
        evs
    | _ -> Alcotest.fail "no traceEvents array")

let test_chrome_of_spans_tracks () =
  let slices =
    Resa_obs.Chrome.of_spans ~process:"executor"
      [
        { Prof.name = "a"; cat = "x"; domain = 0; start_ns = 5_000; dur_ns = 2_000 };
        { Prof.name = "b"; cat = "x"; domain = 1; start_ns = 6_000; dur_ns = 500 };
      ]
  in
  Alcotest.(check int) "two slices" 2 (List.length slices);
  let a = List.hd slices in
  Alcotest.(check int) "rebased to 0" 0 a.Resa_obs.Chrome.ts_us;
  Alcotest.(check string) "domain track" "domain 0" a.Resa_obs.Chrome.track

(* --- per-job metrics and CSV -------------------------------------------- *)

let test_per_job_and_csv () =
  let subs, reservations = workload ~n:15 () in
  let obs = Trace.buffer () in
  let trace = Simulator.run ~obs ~policy:Policy.easy ~m:8 ~reservations subs in
  let provs = Trace.start_provenances (Trace.contents obs) in
  let provenance id =
    match List.assoc_opt id provs with
    | Some p -> Trace.provenance_to_string p
    | None -> ""
  in
  let rows = Metrics.per_job ~provenance trace in
  Alcotest.(check int) "one row per job" 15 (List.length rows);
  let s = Metrics.summarize trace in
  let fsum = List.fold_left ( +. ) 0.0 in
  Alcotest.(check (float 1e-9))
    "mean wait consistent" s.Metrics.mean_wait
    (fsum (List.map (fun r -> float_of_int r.Metrics.wait) rows) /. 15.);
  List.iter
    (fun r ->
      Alcotest.(check int) "wait = start - submit" r.Metrics.wait
        (r.Metrics.start - r.Metrics.submit);
      Alcotest.(check bool) "provenance tagged" true (r.Metrics.provenance <> ""))
    rows;
  let csv = Metrics.per_job_csv ~run:"EASY" rows in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + rows" 16 (List.length lines);
  Alcotest.(check string) "header"
    "run,job,job_number,submit,start,wait,finish,p,q,slowdown,bounded_slowdown,provenance"
    (List.hd lines);
  List.iter
    (fun line ->
      Alcotest.(check int) "12 columns" 12
        (List.length (String.split_on_char ',' line)))
    lines

let test_empty_summary_is_explicit () =
  let trace = Simulator.run ~policy:Policy.fcfs ~m:2 [] in
  let s = Metrics.summarize trace in
  Alcotest.(check int) "n" 0 s.Metrics.n;
  Alcotest.(check bool) "utilization is nan" true (Float.is_nan s.Metrics.utilization);
  Alcotest.(check (list reject)) "no per-job rows" [] (Metrics.per_job trace)

(* --- enriched policy errors --------------------------------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_policy_error_messages () =
  let overcommit =
    Policy.
      {
        name = "ROGUE";
        create = (fun ~obs:_ ~time:_ ~queue ~free:_ -> { start_now = queue; wake = None });
      }
  in
  let subs =
    [
      Simulator.{ job = Job.make ~id:0 ~p:2 ~q:2; submit = 0 };
      Simulator.{ job = Job.make ~id:1 ~p:2 ~q:2; submit = 0 };
    ]
  in
  (match Simulator.run ~policy:overcommit ~m:2 subs with
  | exception Simulator.Policy_error msg ->
    List.iter
      (fun sub ->
        Alcotest.(check bool) (Printf.sprintf "capacity msg has %S" sub) true
          (contains ~sub msg))
      [ "ROGUE"; "at t=0"; "window [0,2)"; "needs 2" ]
  | _ -> Alcotest.fail "capacity violation not caught");
  let phantom =
    Policy.
      {
        name = "PHANTOM";
        create =
          (fun ~obs:_ ~time:_ ~queue:_ ~free:_ ->
            { start_now = [ Job.make ~id:99 ~p:1 ~q:1 ]; wake = None });
      }
  in
  match Simulator.run ~policy:phantom ~m:2 [ List.hd subs ] with
  | exception Simulator.Policy_error msg ->
    List.iter
      (fun sub ->
        Alcotest.(check bool) (Printf.sprintf "phantom msg has %S" sub) true
          (contains ~sub msg))
      [ "PHANTOM"; "at t="; "not in the queue" ]
  | _ -> Alcotest.fail "phantom start not caught"

(* --- profiling ----------------------------------------------------------- *)

let test_prof_counters () =
  Prof.enable ();
  Fun.protect ~finally:Prof.disable (fun () ->
      Prof.reset ();
      let rng = Prng.create ~seed:5 in
      let inst = Resa_gen.Random_inst.alpha_restricted rng ~m:8 ~n:20 ~alpha:0.5 ~pmax:9 () in
      ignore (Resa_algos.Lsrc.run inst);
      let find name =
        match List.assoc_opt name (Prof.counters ()) with Some v -> v | None -> 0
      in
      Alcotest.(check bool) "lsrc instants counted" true (find "lsrc.decision_instants" > 0);
      Alcotest.(check int) "all jobs placed" 20 (find "lsrc.jobs_placed");
      Alcotest.(check bool) "timeline ops counted" true (find "timeline.min_on" > 0);
      (* The simulator opens one speculation scope per decision; every
         checkpoint must be paired with a rollback. *)
      let subs, reservations = workload ~n:10 () in
      ignore (Simulator.run ~policy:Policy.easy ~m:8 ~reservations subs);
      Alcotest.(check bool) "checkpoints counted" true (find "timeline.checkpoint" > 0);
      Alcotest.(check int) "checkpoints all resolved" (find "timeline.checkpoint")
        (find "timeline.rollback" + find "timeline.commit");
      Alcotest.(check bool) "spans recorded" true
        (List.exists (fun s -> s.Prof.name = "lsrc.run_order") (Prof.spans ()));
      Prof.reset ();
      Alcotest.(check int) "reset zeroes counters" 0 (find "lsrc.jobs_placed");
      Alcotest.(check (list reject)) "reset drops spans" [] (Prof.spans ()))

let test_prof_disabled_is_noop () =
  Prof.disable ();
  Prof.reset ();
  let c = Prof.counter "test.noop" in
  Prof.incr c;
  Prof.add c 41;
  Alcotest.(check int) "disabled counter stays 0" 0 (Prof.value c)

(* --- explain ------------------------------------------------------------- *)

let test_explain_render () =
  let subs, reservations = workload ~n:10 () in
  let text =
    String.concat "\n"
      (List.map
         (fun (name, policy) -> snd (event_stream ~policy ~name ~m:8 ~reservations subs))
         [ ("FCFS", Policy.fcfs); ("EASY", Policy.easy) ])
  in
  let events =
    List.map
      (fun line ->
        match Trace.parse_line line with Ok e -> e | Error e -> Alcotest.fail e)
      (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text))
  in
  let out = Resa_obs.Explain.render events in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "explain mentions %S" sub) true
        (contains ~sub out))
    [ "== FCFS =="; "== EASY =="; "decisions:"; "job 0"; "started" ]

(* --- truncation surfacing ------------------------------------------------ *)

let test_truncation_surfaced () =
  (* An overflowed ring flushes with a trailing truncated summary line,
     and explain turns it into a visible warning. *)
  let obs = Trace.buffer ~cap:4 () in
  for t = 0 to 9 do
    Trace.emit obs (Trace.Sim_wake { time = t; forced = false })
  done;
  let path = Filename.temp_file "resa_trunc" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> Trace.flush_jsonl ~run:"r" oc obs);
      let lines = In_channel.with_open_text path In_channel.input_lines in
      Alcotest.(check int) "4 kept events + 1 summary" 5 (List.length lines);
      (match Trace.parse_line (List.nth lines 4) with
      | Ok (Some "r", Trace.Truncated { dropped = 6 }) -> ()
      | Ok _ -> Alcotest.fail "trailing line is not the truncation summary"
      | Error e -> Alcotest.fail e);
      let events =
        List.map
          (fun l -> match Trace.parse_line l with Ok e -> e | Error e -> Alcotest.fail e)
          lines
      in
      let out = Resa_obs.Explain.render events in
      Alcotest.(check bool) "explain warns about the gap" true
        (contains ~sub:"6 events dropped" out));
  (* No summary line when nothing was dropped. *)
  let obs = Trace.buffer () in
  Trace.emit obs (Trace.Sim_wake { time = 0; forced = false });
  let path = Filename.temp_file "resa_notrunc" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> Trace.flush_jsonl oc obs);
      let lines = In_channel.with_open_text path In_channel.input_lines in
      Alcotest.(check int) "just the event" 1 (List.length lines))

(* --- busy accounting beyond the initial table ---------------------------- *)

let test_busy_high_domain_ids () =
  (* Domain ids grow monotonically over the process lifetime, so spawning
     sequential domains pushes the id past the busy table's initial 256
     slots; distinct domains must never merge. *)
  let was = Prof.enabled () in
  Prof.enable ();
  Prof.reset ();
  let last_id = ref 0 in
  let spawned = ref 0 in
  while !last_id < 300 && !spawned < 512 do
    let d =
      Domain.spawn (fun () ->
          Prof.add_busy 7;
          (Domain.self () :> int))
    in
    last_id := Domain.join d;
    incr spawned
  done;
  if not was then Prof.disable ();
  Alcotest.(check bool) "reached an id past the initial table" true (!last_id >= 300);
  let busy = Prof.busy_ns () in
  (match List.assoc_opt !last_id busy with
  | Some v -> Alcotest.(check int) "highest domain credited exactly once" 7 v
  | None -> Alcotest.fail "high domain id missing from busy_ns");
  Alcotest.(check int) "one entry per spawned domain, none merged" !spawned
    (List.length (List.filter (fun (_, v) -> v = 7) busy));
  Alcotest.(check bool) "ascending ids" true
    (List.sort compare busy = busy)

let suite =
  [
    Alcotest.test_case "ring buffer bounded" `Quick test_ring_bounded;
    Alcotest.test_case "null sink disabled" `Quick test_null_sink_disabled;
    Alcotest.test_case "file sink writes JSONL" `Quick test_file_sink_jsonl;
    Alcotest.test_case "JSONL round-trip (all constructors)" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "provenance string round-trip" `Quick test_provenance_strings;
    Alcotest.test_case "tracing off is byte-identical" `Quick test_tracing_off_identical;
    Alcotest.test_case "event streams identical across pool sizes" `Quick
      test_deterministic_across_domains;
    Alcotest.test_case "backfill provenance classified" `Quick test_backfill_provenance;
    Alcotest.test_case "reservation-blocked provenance" `Quick
      test_reservation_blocked_provenance;
    Alcotest.test_case "book emits admission events" `Quick test_book_emits_admission_events;
    Alcotest.test_case "chrome export well-formed" `Quick test_chrome_export_wellformed;
    Alcotest.test_case "chrome span tracks" `Quick test_chrome_of_spans_tracks;
    Alcotest.test_case "per-job rows and CSV" `Quick test_per_job_and_csv;
    Alcotest.test_case "empty summary explicit" `Quick test_empty_summary_is_explicit;
    Alcotest.test_case "policy errors carry context" `Quick test_policy_error_messages;
    Alcotest.test_case "prof counters and spans" `Quick test_prof_counters;
    Alcotest.test_case "prof disabled is a no-op" `Quick test_prof_disabled_is_noop;
    Alcotest.test_case "busy accounting at high domain ids" `Quick test_busy_high_domain_ids;
    Alcotest.test_case "explain renders a trace" `Quick test_explain_render;
    Alcotest.test_case "truncation surfaced on flush and explain" `Quick
      test_truncation_surfaced;
  ]
