(* Timeline vs Profile: the mutable segment tree must be observationally
   identical to the persistent profile it replaces on every operation the
   schedulers perform — enforced on random op sequences and on whole
   scheduler runs against the retained Profile-backed reference
   implementations. *)

open Resa_core

let steps = Alcotest.(list (pair int int))

(* --- unit tests --------------------------------------------------------- *)

let test_constant () =
  let tl = Timeline.create 7 in
  Alcotest.(check int) "value at 0" 7 (Timeline.value_at tl 0);
  Alcotest.(check int) "value far out" 7 (Timeline.value_at tl 123_456);
  Alcotest.(check int) "last breakpoint" 0 (Timeline.last_breakpoint tl);
  Alcotest.(check (option int)) "no breakpoint" None (Timeline.next_breakpoint_after tl 3);
  Alcotest.check steps "to_profile" [ (0, 7) ] (Profile.to_steps (Timeline.to_profile tl))

let test_roundtrip () =
  let p = Profile.of_steps [ (0, 5); (3, 1); (6, 8); (11, 2) ] in
  let tl = Timeline.of_profile p in
  Alcotest.(check bool) "roundtrip" true (Profile.equal p (Timeline.to_profile tl));
  let tl = Timeline.of_profile ~horizon:1024 p in
  Alcotest.(check bool) "with horizon" true (Profile.equal p (Timeline.to_profile tl))

let test_change_reserve () =
  let tl = Timeline.create 4 in
  Timeline.change tl ~lo:2 ~hi:5 ~delta:(-3);
  Alcotest.(check int) "inside" 1 (Timeline.value_at tl 3);
  Alcotest.(check int) "outside" 4 (Timeline.value_at tl 5);
  Timeline.reserve tl ~start:0 ~dur:2 ~need:4;
  Alcotest.(check int) "reserved" 0 (Timeline.value_at tl 1);
  Alcotest.check_raises "insufficient"
    (Invalid_argument "Timeline.reserve: insufficient capacity in window") (fun () ->
      Timeline.reserve tl ~start:1 ~dur:3 ~need:2);
  (* Inverse range-add undoes a reservation exactly. *)
  Timeline.change tl ~lo:0 ~hi:2 ~delta:4;
  Timeline.change tl ~lo:2 ~hi:5 ~delta:3;
  Alcotest.(check bool) "back to constant" true
    (Profile.equal (Profile.constant 4) (Timeline.to_profile tl))

let test_empty_window () =
  let tl = Timeline.create 3 in
  Alcotest.(check int) "min identity" max_int (Timeline.min_on tl ~lo:5 ~hi:5);
  Alcotest.(check int) "max identity" min_int (Timeline.max_on tl ~lo:5 ~hi:5);
  Alcotest.check_raises "bad window" (Invalid_argument "Timeline: bad window") (fun () ->
      ignore (Timeline.min_on tl ~lo:6 ~hi:5))

let test_earliest_fit () =
  let p = Profile.of_steps [ (0, 2); (4, 0); (6, 5) ] in
  let tl = Timeline.of_profile p in
  Alcotest.(check (option int)) "fits at once" (Some 0)
    (Timeline.earliest_fit tl ~from:0 ~dur:3 ~need:2);
  Alcotest.(check (option int)) "must jump the hole" (Some 6)
    (Timeline.earliest_fit tl ~from:0 ~dur:5 ~need:2);
  Alcotest.(check (option int)) "need too high" None
    (Timeline.earliest_fit tl ~from:0 ~dur:1 ~need:6);
  Alcotest.(check (option int)) "far from" (Some 50)
    (Timeline.earliest_fit tl ~from:50 ~dur:4 ~need:5)

let test_forward_view () =
  let p = Profile.of_steps [ (0, 9); (2, 1); (5, 6) ] in
  let tl = Timeline.of_profile p in
  let fwd = Timeline.to_profile ~from:3 tl in
  Alcotest.check steps "past collapsed" [ (0, 1); (5, 6) ] (Profile.to_steps fwd)

(* --- speculation: checkpoint / rollback / commit ------------------------ *)

let test_checkpoint_rollback () =
  let tl = Timeline.of_profile (Profile.of_steps [ (0, 6); (4, 2); (9, 6) ]) in
  let before = Timeline.to_profile tl in
  let m = Timeline.checkpoint tl in
  Timeline.reserve tl ~start:0 ~dur:3 ~need:4;
  Timeline.change tl ~lo:10 ~hi:20 ~delta:(-5);
  (* Queries see the speculative state... *)
  Alcotest.(check int) "speculative value" 2 (Timeline.value_at tl 1);
  Alcotest.(check int) "speculative far value" 1 (Timeline.value_at tl 12);
  Timeline.rollback tl m;
  (* ...and rollback is exact. *)
  Alcotest.(check bool) "identity after rollback" true
    (Profile.equal before (Timeline.to_profile tl))

let test_rollback_after_growth () =
  (* Speculative writes far past the current horizon force root doubling;
     rollback must restore values even though the tree keeps its new size. *)
  let tl = Timeline.create 5 in
  Timeline.change tl ~lo:0 ~hi:4 ~delta:(-1);
  let m = Timeline.checkpoint tl in
  Timeline.change tl ~lo:100_000 ~hi:200_000 ~delta:(-3);
  Alcotest.(check int) "speculative far write" 2 (Timeline.value_at tl 150_000);
  Timeline.rollback tl m;
  Alcotest.(check int) "tail restored" 5 (Timeline.value_at tl 150_000);
  Alcotest.(check int) "near values intact" 4 (Timeline.value_at tl 2)

let test_nested_speculation () =
  let tl = Timeline.create 8 in
  let outer = Timeline.checkpoint tl in
  Timeline.change tl ~lo:0 ~hi:10 ~delta:(-1);
  let inner = Timeline.checkpoint tl in
  Timeline.change tl ~lo:0 ~hi:10 ~delta:(-2);
  Timeline.rollback tl inner;
  (* Inner rollback keeps the outer trial. *)
  Alcotest.(check int) "outer trial survives" 7 (Timeline.value_at tl 5);
  let inner2 = Timeline.checkpoint tl in
  Timeline.change tl ~lo:0 ~hi:10 ~delta:(-4);
  Timeline.commit tl inner2;
  (* Commit folds into the enclosing scope... *)
  Alcotest.(check int) "committed trial kept" 3 (Timeline.value_at tl 5);
  Timeline.rollback tl outer;
  (* ...so the outer rollback still retracts it. *)
  Alcotest.(check int) "outer rollback undoes all" 8 (Timeline.value_at tl 5)

let test_stale_marks_rejected () =
  let tl = Timeline.create 4 in
  let m = Timeline.checkpoint tl in
  Timeline.change tl ~lo:0 ~hi:5 ~delta:(-1);
  Timeline.rollback tl m;
  Alcotest.check_raises "mark reused after rollback"
    (Invalid_argument "Timeline.commit: stale or non-LIFO mark") (fun () ->
      Timeline.commit tl m);
  Alcotest.check_raises "double rollback"
    (Invalid_argument "Timeline.rollback: stale or non-LIFO mark") (fun () ->
      Timeline.rollback tl m)

(* Randomized: arbitrary mutations under arbitrarily nested speculation
   (inner scopes randomly rolled back or committed) — rolling back the
   outermost checkpoint must be a perfect identity w.r.t. the rebuilt
   profile. *)
let speculation_identity seed =
  let rng = Prng.create ~seed in
  let tl = Timeline.of_profile (Tutil.profile_of_seed seed) in
  let reference = Timeline.to_profile tl in
  let mutate () =
    if Prng.int rng ~bound:2 = 0 then begin
      let lo = Prng.int rng ~bound:60 and len = Prng.int_incl rng ~lo:1 ~hi:25 in
      Timeline.change tl ~lo ~hi:(lo + len) ~delta:(Prng.int_incl rng ~lo:(-5) ~hi:5)
    end
    else begin
      let start = Prng.int rng ~bound:50 and dur = Prng.int_incl rng ~lo:1 ~hi:12 in
      let mn = Timeline.min_on tl ~lo:start ~hi:(start + dur) in
      if mn >= 1 then Timeline.reserve tl ~start ~dur ~need:(Prng.int_incl rng ~lo:1 ~hi:mn)
    end
  in
  let rec churn depth =
    for _ = 1 to 6 do
      match Prng.int rng ~bound:3 with
      | 1 when depth < 3 ->
        let m = Timeline.checkpoint tl in
        churn (depth + 1);
        Timeline.rollback tl m
      | 2 when depth < 3 ->
        let m = Timeline.checkpoint tl in
        churn (depth + 1);
        Timeline.commit tl m
      | _ -> mutate ()
    done
  in
  let m0 = Timeline.checkpoint tl in
  churn 0;
  Timeline.rollback tl m0;
  Profile.equal reference (Timeline.to_profile tl)

(* --- randomized differential: operation sequences ----------------------- *)

let ops_agree seed =
  let rng = Prng.create ~seed in
  let p = ref (Tutil.profile_of_seed seed) in
  let tl = Timeline.of_profile !p in
  let ok = ref true in
  let check name b = if not b then (Printf.eprintf "mismatch: %s (seed %d)\n" name seed; ok := false) in
  for _ = 1 to 40 do
    match Prng.int rng ~bound:10 with
    | 0 ->
      let lo = Prng.int rng ~bound:50 and len = Prng.int_incl rng ~lo:1 ~hi:20 in
      let delta = Prng.int_incl rng ~lo:(-4) ~hi:4 in
      p := Profile.change !p ~lo ~hi:(lo + len) ~delta;
      Timeline.change tl ~lo ~hi:(lo + len) ~delta
    | 1 ->
      let start = Prng.int rng ~bound:40 and dur = Prng.int_incl rng ~lo:1 ~hi:10 in
      let mn = Profile.min_on !p ~lo:start ~hi:(start + dur) in
      check "min before reserve" (mn = Timeline.min_on tl ~lo:start ~hi:(start + dur));
      if mn >= 1 then begin
        let need = Prng.int_incl rng ~lo:1 ~hi:mn in
        p := Profile.reserve !p ~start ~dur ~need;
        Timeline.reserve tl ~start ~dur ~need
      end
    | 2 ->
      let x = Prng.int rng ~bound:100 in
      check "value_at" (Profile.value_at !p x = Timeline.value_at tl x)
    | 3 ->
      let lo = Prng.int rng ~bound:60 in
      let hi = lo + Prng.int rng ~bound:25 in
      if lo = hi then begin
        check "empty min" (Timeline.min_on tl ~lo ~hi = max_int);
        check "empty max" (Timeline.max_on tl ~lo ~hi = min_int)
      end
      else begin
        check "min_on" (Profile.min_on !p ~lo ~hi = Timeline.min_on tl ~lo ~hi);
        check "max_on" (Profile.max_on !p ~lo ~hi = Timeline.max_on tl ~lo ~hi)
      end
    | 4 ->
      let from = Prng.int rng ~bound:60 and dur = Prng.int_incl rng ~lo:1 ~hi:10 in
      let need = Prng.int_incl rng ~lo:(-1) ~hi:12 in
      check "earliest_fit"
        (Profile.earliest_fit !p ~from ~dur ~need = Timeline.earliest_fit tl ~from ~dur ~need)
    | 5 ->
      let x = Prng.int rng ~bound:80 in
      check "next_breakpoint_after"
        (Profile.next_breakpoint_after !p x = Timeline.next_breakpoint_after tl x)
    | 6 -> check "last_breakpoint" (Profile.last_breakpoint !p = Timeline.last_breakpoint tl)
    | 7 ->
      check "final_value" (Profile.final_value !p = Timeline.final_value tl);
      (* Chunks must tile [from, ∞) in order, carry the pointwise values of
         the profile, and end with the tail (hi = None). *)
      let from = Prng.int rng ~bound:60 in
      let cursor = ref from and saw_tail = ref false in
      Timeline.iter_chunks_from tl ~from ~f:(fun ~lo ~hi ~v ->
          check "chunk contiguous" (lo = !cursor);
          check "chunk value" (Profile.value_at !p lo = v);
          (match hi with
          | Some hi ->
            check "chunk non-empty" (hi > lo);
            check "chunk constant" (Profile.min_on !p ~lo ~hi = v && Profile.max_on !p ~lo ~hi = v);
            cursor := hi
          | None ->
            check "tail value" (Profile.final_value !p = v);
            saw_tail := true);
          true);
      check "tail visited" !saw_tail
    | 8 ->
      if Profile.final_value !p > 0 then begin
        let from = Prng.int rng ~bound:60 in
        let area = Prng.int_incl rng ~lo:1 ~hi:600 in
        let expect = Resa_exact.Lower_bounds.min_time_with_area !p ~from ~area in
        check "first_reaching_area (uncapped)"
          (Timeline.first_reaching_area tl ~from ~area ~cap:max_int = expect);
        let cap = Prng.int_incl rng ~lo:1 ~hi:120 in
        check "first_reaching_area (capped)"
          (Timeline.first_reaching_area tl ~from ~area ~cap = min cap expect)
      end
    | _ ->
      let from = Prng.int rng ~bound:50 in
      let fwd = Timeline.to_profile ~from tl in
      let expect x = if x < from then Profile.value_at !p from else Profile.value_at !p x in
      let agree = ref true in
      for x = 0 to 70 do
        if Profile.value_at fwd x <> expect x then agree := false
      done;
      check "forward view" !agree
  done;
  !ok && Profile.equal !p (Timeline.to_profile tl)

(* --- randomized differential: whole scheduler runs ---------------------- *)

let resa_instance_of_seed seed =
  (* Sized so the O(n·k) reference oracles stay fast; always with a shot at
     a non-trivial reservation set. *)
  let rng = Prng.create ~seed in
  let m = Prng.int_incl rng ~lo:2 ~hi:16 in
  let n = Prng.int_incl rng ~lo:1 ~hi:40 in
  let jobs =
    List.init n (fun i ->
        Job.make ~id:i ~p:(Prng.int_incl rng ~lo:1 ~hi:15) ~q:(Prng.int_incl rng ~lo:1 ~hi:m))
  in
  let n_res = Prng.int_incl rng ~lo:0 ~hi:6 in
  let reservations = ref [] in
  let u = ref (Profile.constant 0) in
  for i = 0 to n_res - 1 do
    let start = Prng.int rng ~bound:40 in
    let p = Prng.int_incl rng ~lo:1 ~hi:12 in
    let q = Prng.int_incl rng ~lo:1 ~hi:m in
    let u' = Profile.change !u ~lo:start ~hi:(start + p) ~delta:q in
    if Profile.max_value u' <= m - 1 then begin
      (* Keep one processor always free so every job can eventually run. *)
      u := u';
      reservations := Reservation.make ~id:i ~start ~p ~q :: !reservations
    end
  done;
  Instance.create_exn ~m ~jobs ~reservations:!reservations

(* --- history garbage collection ----------------------------------------- *)

let test_gc_collapses_past () =
  let tl = Timeline.of_profile (Profile.of_steps [ (0, 9); (2, 1); (5, 6); (40, 3) ]) in
  Timeline.reserve tl ~start:50 ~dur:10 ~need:2;
  let future_before = Timeline.to_profile ~from:6 tl in
  let nodes_before = Timeline.node_count tl in
  Timeline.gc tl ~upto:6;
  (* Exact on [upto, ∞): the full rebuilt profile IS the collapsed view. *)
  Alcotest.(check bool) "future preserved" true
    (Profile.equal future_before (Timeline.to_profile tl));
  Alcotest.(check int) "past is value_at upto" 6 (Timeline.value_at tl 0);
  Alcotest.(check bool) "history freed" true (Timeline.node_count tl <= nodes_before);
  (* The compacted timeline keeps working: mutations and queries as usual. *)
  Timeline.reserve tl ~start:41 ~dur:4 ~need:1;
  Alcotest.(check int) "post-gc reserve" 2 (Timeline.value_at tl 42);
  Alcotest.(check (option int)) "post-gc earliest_fit" (Some 45)
    (Timeline.earliest_fit tl ~from:41 ~dur:5 ~need:3)

let test_gc_rejects () =
  let tl = Timeline.create 4 in
  Alcotest.check_raises "negative upto" (Invalid_argument "Timeline.gc: negative upto") (fun () ->
      Timeline.gc tl ~upto:(-1));
  let m = Timeline.checkpoint tl in
  Alcotest.check_raises "outstanding checkpoint"
    (Invalid_argument "Timeline.gc: checkpoint outstanding") (fun () -> Timeline.gc tl ~upto:3);
  Timeline.rollback tl m;
  Timeline.gc tl ~upto:3

(* Randomized: after arbitrary mutations, gc at a random instant must agree
   with the Profile collapse on the whole line and be invisible to every
   future-window query. *)
let gc_is_collapse seed =
  let rng = Prng.create ~seed in
  let tl = Timeline.of_profile (Tutil.profile_of_seed seed) in
  for _ = 1 to 20 do
    let lo = Prng.int rng ~bound:60 and len = Prng.int_incl rng ~lo:1 ~hi:25 in
    Timeline.change tl ~lo ~hi:(lo + len) ~delta:(Prng.int_incl rng ~lo:(-5) ~hi:5)
  done;
  let upto = Prng.int rng ~bound:100 in
  let collapsed = Timeline.to_profile ~from:upto tl in
  Timeline.gc tl ~upto;
  let ok = ref (Profile.equal collapsed (Timeline.to_profile tl)) in
  for _ = 1 to 10 do
    let lo = upto + Prng.int rng ~bound:40 in
    let hi = lo + Prng.int_incl rng ~lo:1 ~hi:15 in
    if Profile.min_on collapsed ~lo ~hi <> Timeline.min_on tl ~lo ~hi then ok := false
  done;
  !ok

let starts inst sched = List.init (Instance.n_jobs inst) (Schedule.start sched)

let same_schedule name fast reference seed =
  let inst = resa_instance_of_seed seed in
  let order = Resa_algos.Priority.order Resa_algos.Priority.Fifo inst in
  let a = starts inst (fast inst order) in
  let b = starts inst (reference inst order) in
  if a <> b then Printf.eprintf "%s diverges on seed %d\n" name seed;
  a = b

let suite =
  [
    Alcotest.test_case "constant timeline" `Quick test_constant;
    Alcotest.test_case "profile roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "change and reserve" `Quick test_change_reserve;
    Alcotest.test_case "empty windows" `Quick test_empty_window;
    Alcotest.test_case "earliest fit" `Quick test_earliest_fit;
    Alcotest.test_case "forward view" `Quick test_forward_view;
    Alcotest.test_case "checkpoint/rollback identity" `Quick test_checkpoint_rollback;
    Alcotest.test_case "rollback across tree growth" `Quick test_rollback_after_growth;
    Alcotest.test_case "nested speculation" `Quick test_nested_speculation;
    Alcotest.test_case "stale marks rejected" `Quick test_stale_marks_rejected;
    Alcotest.test_case "gc collapses history, preserves the future" `Quick test_gc_collapses_past;
    Alcotest.test_case "gc precondition checks" `Quick test_gc_rejects;
    Tutil.qcheck ~count:500 "gc = to_profile ~from collapse" Tutil.seed_arb gc_is_collapse;
    Tutil.qcheck ~count:500 "nested speculation rolls back to identity" Tutil.seed_arb
      speculation_identity;
    Tutil.qcheck ~count:1000 "random op sequences match Profile" Tutil.seed_arb ops_agree;
    Tutil.qcheck ~count:300 "LSRC = Profile-backed LSRC" Tutil.seed_arb
      (same_schedule "lsrc" Resa_algos.Lsrc.run_order Resa_algos.Lsrc.run_order_reference);
    Tutil.qcheck ~count:300 "FCFS = Profile-backed FCFS" Tutil.seed_arb
      (same_schedule "fcfs" Resa_algos.Fcfs.run_order Resa_algos.Fcfs.run_order_reference);
    Tutil.qcheck ~count:300 "conservative = Profile-backed conservative" Tutil.seed_arb
      (same_schedule "conservative" Resa_algos.Backfill.conservative_order
         Resa_algos.Backfill.conservative_order_reference);
    Tutil.qcheck ~count:300 "EASY = Profile-backed EASY" Tutil.seed_arb
      (same_schedule "easy" Resa_algos.Backfill.easy_order
         Resa_algos.Backfill.easy_order_reference);
  ]
