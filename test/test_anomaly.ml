open Resa_core
open Resa_analysis

let test_worst_order_finds_graham_trap () =
  (* On the Graham-tight family, FIFO is already the worst order (2 − 1/m);
     the search must find a makespan at least as bad as LPT's optimum and at
     most the known worst case. *)
  let m = 4 in
  let inst, opt = Resa_gen.Adversarial.graham_tight ~m in
  let rng = Prng.create ~seed:5 in
  let order, worst = Anomaly.worst_order rng inst in
  Alcotest.(check int) "finds the 2-1/m order" ((2 * m) - 1) worst;
  Alcotest.(check int) "order achieves it" worst
    (Schedule.makespan inst (Resa_algos.Lsrc.run_order inst order));
  Alcotest.(check bool) "worse than optimum" true (worst > opt)

let test_worst_order_on_prop2 () =
  (* The search must reach the adversarial value (FIFO order) on the Prop 2
     instance. *)
  let inst, _ = Resa_gen.Adversarial.prop2 ~k:3 in
  let rng = Prng.create ~seed:6 in
  let _, worst = Anomaly.worst_order ~restarts:6 ~iterations:80 rng inst in
  Alcotest.(check int) "reaches the trap" (Resa_gen.Adversarial.prop2_expected_lsrc ~k:3) worst

let test_worst_order_empty () =
  let inst = Instance.of_sizes ~m:2 [] in
  let rng = Prng.create ~seed:7 in
  let order, worst = Anomaly.worst_order rng inst in
  Alcotest.(check int) "empty order" 0 (Array.length order);
  Alcotest.(check int) "zero makespan" 0 worst

let anomaly_instance =
  (* Found by random search (documented in the test so it stays honest):
     removing J3 makes FIFO LSRC slower (10 -> 11) even without
     reservations — a rigid-task Graham anomaly. *)
  Instance.of_sizes ~m:3 [ (4, 2); (5, 1); (1, 3); (3, 1); (2, 2); (5, 1) ]

let test_removal_anomaly_exists () =
  match Anomaly.find_removal_anomaly anomaly_instance with
  | None -> Alcotest.fail "known anomaly not found"
  | Some a ->
    Alcotest.(check int) "removing job 3" 3 a.removed;
    Alcotest.(check int) "full makespan" 10 a.with_job;
    Alcotest.(check int) "reduced makespan" 11 a.without_job;
    Alcotest.(check bool) "report verifies" true
      (Anomaly.check_removal_anomaly anomaly_instance a)

let test_removal_anomaly_none_on_chain () =
  (* A chain of full-width jobs is trivially monotone under removal. *)
  let inst = Instance.of_sizes ~m:2 [ (3, 2); (2, 2); (4, 2) ] in
  Alcotest.(check bool) "monotone" true (Anomaly.find_removal_anomaly inst = None)

let test_check_rejects_fabricated_report () =
  let fake = Anomaly.{ removed = 0; with_job = 1; without_job = 100 } in
  Alcotest.(check bool) "fabricated report rejected" false
    (Anomaly.check_removal_anomaly anomaly_instance fake)

let machine_anomaly_instance =
  (* m=3: J2 fills the third processor while J1 waits; with a fourth
     processor J0 and J1 run together and push J2 to time 2 (5 -> 7). *)
  Instance.of_sizes ~m:3 [ (2, 2); (3, 2); (5, 1) ]

let test_machine_anomaly_exists () =
  match Anomaly.find_machine_anomaly machine_anomaly_instance with
  | None -> Alcotest.fail "known machine anomaly not found"
  | Some a ->
    Alcotest.(check int) "3 machines" 5 a.cmax_small;
    Alcotest.(check int) "4 machines is worse" 7 a.cmax_large;
    Alcotest.(check bool) "report verifies" true
      (Anomaly.check_machine_anomaly machine_anomaly_instance a)

let test_machine_anomaly_rejects_reservations () =
  let inst = Instance.of_sizes ~m:2 ~reservations:[ (0, 1, 1) ] [ (1, 1) ] in
  Alcotest.check_raises "reservation-free only"
    (Invalid_argument "Anomaly.find_machine_anomaly: reservation-free instances only") (fun () ->
      ignore (Anomaly.find_machine_anomaly inst))

let prop_machine_anomalies_verify =
  Tutil.qcheck ~count:100 "every reported machine anomaly verifies" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_rigid_of_seed seed in
      match Anomaly.find_machine_anomaly inst with
      | None -> true
      | Some a -> Anomaly.check_machine_anomaly inst a)

let prop_optimum_is_machine_monotone =
  (* The anomaly is a property of greedy lists, never of the optimum. *)
  Tutil.qcheck ~count:60 "the exact optimum never increases with machines" Tutil.seed_arb
    (fun seed ->
      let inst = Tutil.small_rigid_of_seed seed in
      let larger =
        Instance.create_exn
          ~m:(Instance.m inst + 1)
          ~jobs:(Array.to_list (Instance.jobs inst))
          ~reservations:[]
      in
      match
        ( Resa_exact.Bnb.optimal_makespan ~node_limit:200_000 inst,
          Resa_exact.Bnb.optimal_makespan ~node_limit:200_000 larger )
      with
      | Some a, Some b -> b <= a
      | _ -> QCheck.assume_fail ())

let prop_worst_order_at_least_fifo =
  Tutil.qcheck ~count:60 "worst order >= every standard priority" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      let rng = Prng.create ~seed in
      let _, worst = Anomaly.worst_order ~restarts:2 ~iterations:30 rng inst in
      List.for_all
        (fun p ->
          worst >= Schedule.makespan inst (Resa_algos.Lsrc.run ~priority:p inst)
          || (* the search is heuristic: it must at least match FIFO, which
                is its starting incumbent *)
          p <> Resa_algos.Priority.Fifo)
        [ Resa_algos.Priority.Fifo; Resa_algos.Priority.Lpt ])

let prop_reported_anomalies_verify =
  Tutil.qcheck ~count:100 "every reported removal anomaly verifies" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      match Anomaly.find_removal_anomaly inst with
      | None -> true
      | Some a -> Anomaly.check_removal_anomaly inst a)

let suite =
  [
    Alcotest.test_case "worst order on the Graham family" `Quick test_worst_order_finds_graham_trap;
    Alcotest.test_case "worst order on the Prop 2 family" `Quick test_worst_order_on_prop2;
    Alcotest.test_case "worst order on empty instance" `Quick test_worst_order_empty;
    Alcotest.test_case "a removal anomaly exists (rigid tasks)" `Quick test_removal_anomaly_exists;
    Alcotest.test_case "chains are monotone under removal" `Quick test_removal_anomaly_none_on_chain;
    Alcotest.test_case "fabricated reports rejected" `Quick test_check_rejects_fabricated_report;
    Alcotest.test_case "a machine-count anomaly exists" `Quick test_machine_anomaly_exists;
    Alcotest.test_case "machine anomaly needs no reservations" `Quick test_machine_anomaly_rejects_reservations;
    prop_machine_anomalies_verify;
    prop_optimum_is_machine_monotone;
    prop_worst_order_at_least_fifo;
    prop_reported_anomalies_verify;
  ]
