open Resa_core
open Resa_algos

let test_all_released_at_zero_single_batch () =
  let inst = Instance.of_sizes ~m:4 [ (2, 2); (3, 1); (1, 4) ] in
  let r = Online.run inst ~release:[| 0; 0; 0 |] in
  Alcotest.(check int) "one batch" 1 (List.length r.batches);
  (* Equal to plain offline LSRC. *)
  let offline = Lsrc.run inst in
  Alcotest.(check int) "same makespan as offline"
    (Schedule.makespan inst offline)
    (Schedule.makespan inst r.schedule)

let test_release_dates_respected () =
  let inst = Instance.of_sizes ~m:4 [ (2, 2); (3, 1); (1, 4) ] in
  let release = [| 0; 5; 9 |] in
  let r = Online.run inst ~release in
  Array.iteri
    (fun i rel ->
      Alcotest.(check bool)
        (Printf.sprintf "job %d not before release" i)
        true
        (Schedule.start r.schedule i >= rel))
    release

let test_batches_do_not_overlap () =
  let inst = Instance.of_sizes ~m:2 [ (4, 2); (4, 2); (4, 2) ] in
  let r = Online.run inst ~release:[| 0; 1; 5 |] in
  (* Batch k+1 launches only after batch k completed. *)
  let rec check = function
    | (s1 : int) :: (s2 :: _ as rest) ->
      Alcotest.(check bool) "launch times increase" true (s1 < s2);
      check rest
    | _ -> ()
  in
  check r.batch_starts

let test_doubling_guarantee_example () =
  (* Offline optimum for all-at-zero is a lower bound for any release dates;
     the batch algorithm is 2·(2−1/m)-competitive against it plus the last
     release. Just check feasibility and a sane bound here. *)
  let inst = Instance.of_sizes ~m:3 [ (3, 2); (2, 1); (4, 3); (1, 2) ] in
  let release = [| 0; 2; 3; 7 |] in
  let r = Online.run inst ~release in
  Tutil.check_feasible "online schedule" inst r.schedule;
  let opt0 = (Resa_exact.Bnb.solve inst).makespan in
  let bound = (2.0 *. 2.0 *. float_of_int opt0) +. float_of_int (Array.fold_left max 0 release) in
  Alcotest.(check bool) "coarse competitive bound" true
    (float_of_int (Schedule.makespan inst r.schedule) <= bound)

let test_reservations_respected_across_batches () =
  let inst = Instance.of_sizes ~m:2 ~reservations:[ (3, 4, 2) ] [ (2, 1); (2, 2) ] in
  let r = Online.run inst ~release:[| 0; 4 |] in
  Tutil.check_feasible "online with reservations" inst r.schedule

let test_bad_release_rejected () =
  let inst = Instance.of_sizes ~m:2 [ (1, 1) ] in
  Alcotest.check_raises "negative release"
    (Invalid_argument "Online.run: negative release date") (fun () ->
      ignore (Online.run inst ~release:[| -1 |]));
  Alcotest.check_raises "wrong length" (Invalid_argument "Online.run: release length mismatch")
    (fun () -> ignore (Online.run inst ~release:[| 0; 0 |]))

let prop_feasible_and_released =
  Tutil.qcheck ~count:150 "online schedules feasible, releases respected"
    QCheck.(pair Tutil.seed_arb Tutil.seed_arb)
    (fun (s1, s2) ->
      let inst = Tutil.small_resa_of_seed s1 in
      let rng = Prng.create ~seed:s2 in
      let release = Array.init (Instance.n_jobs inst) (fun _ -> Prng.int rng ~bound:15) in
      let r = Online.run inst ~release in
      Schedule.is_feasible inst r.schedule
      && Array.for_all
           (fun i -> Schedule.start r.schedule i >= release.(i))
           (Array.init (Instance.n_jobs inst) Fun.id))

let prop_batches_partition_jobs =
  Tutil.qcheck "batches partition the job set" QCheck.(pair Tutil.seed_arb Tutil.seed_arb)
    (fun (s1, s2) ->
      let inst = Tutil.small_resa_of_seed s1 in
      let rng = Prng.create ~seed:s2 in
      let release = Array.init (Instance.n_jobs inst) (fun _ -> Prng.int rng ~bound:10) in
      let r = Online.run inst ~release in
      List.sort Int.compare (List.concat r.batches)
      = List.init (Instance.n_jobs inst) Fun.id)

let suite =
  [
    Alcotest.test_case "single batch when all released at 0" `Quick test_all_released_at_zero_single_batch;
    Alcotest.test_case "release dates respected" `Quick test_release_dates_respected;
    Alcotest.test_case "batches are sequential" `Quick test_batches_do_not_overlap;
    Alcotest.test_case "coarse doubling bound" `Quick test_doubling_guarantee_example;
    Alcotest.test_case "reservations respected across batches" `Quick test_reservations_respected_across_batches;
    Alcotest.test_case "bad inputs rejected" `Quick test_bad_release_rejected;
    prop_feasible_and_released;
    prop_batches_partition_jobs;
  ]
