(* Telemetry layer: the typed metrics registry (bucket goldens, snapshot
   determinism, exposition, disabled-path contracts), heartbeat snapshots
   (sampler cadence, JSONL round-trip, wall segregation) and the benchdiff
   regression gate. *)

open Resa_sim
module M = Resa_obs.Metrics
module B = Resa_obs.Benchdiff
module H = Heartbeat
module Swf_stream = Resa_swf.Swf_stream

(* Every test leaves the registry and the flag as it found them: the
   byte-identity tests elsewhere rely on collection staying off. *)
let with_metrics f =
  let was = M.enabled () in
  M.enable ();
  M.reset ();
  Fun.protect
    ~finally:(fun () ->
      M.reset ();
      if not was then M.disable ())
    f

let without_metrics f =
  let was = M.enabled () in
  M.disable ();
  Fun.protect ~finally:(fun () -> if was then M.enable ()) f

(* --- registry ------------------------------------------------------------ *)

let test_counter_gauge_basics () =
  with_metrics (fun () ->
      let c = M.counter "test.c" in
      let g = M.gauge "test.g" in
      M.incr c;
      M.add c 4;
      M.set g 7;
      M.set g 3;
      Alcotest.(check int) "counter accumulates" 5 (M.value c);
      Alcotest.(check int) "gauge last-write-wins" 3 (M.gauge_value g);
      M.reset ();
      Alcotest.(check int) "reset zeroes" 0 (M.value c))

let test_disabled_path_noop () =
  without_metrics (fun () ->
      let c = M.counter "test.off.c" in
      let h = M.histogram "test.off.h" in
      M.incr c;
      M.add c 10;
      M.observe h 42;
      Alcotest.(check int) "disabled counter untouched" 0 (M.value c);
      Alcotest.(check int) "disabled histogram untouched" 0 (M.hist_count h))

let test_kind_mismatch_raises () =
  with_metrics (fun () ->
      let _ = M.counter "test.kind" in
      Alcotest.check_raises "re-register as gauge"
        (Invalid_argument "Metrics: \"test.kind\" already registered with another kind")
        (fun () -> ignore (M.gauge "test.kind")))

let hist_buckets name =
  match List.assoc_opt name (M.snapshot ()) with
  | Some (M.Histogram_v h) -> h.M.buckets
  | _ -> Alcotest.fail (name ^ " not a histogram in snapshot")

let test_histogram_boundaries () =
  (* Golden bucket placement at the power-of-two boundaries: bucket 0 is
     v <= 0, bucket i >= 1 is [2^(i-1), 2^i - 1], upper bound le = 2^i-1. *)
  with_metrics (fun () ->
      let h = M.histogram "test.hist" in
      M.observe h 1;
      Alcotest.(check (list (pair int int))) "1 -> le 1" [ (1, 1) ] (hist_buckets "test.hist");
      M.observe h 2;
      M.observe h 3;
      Alcotest.(check (list (pair int int)))
        "2 and 3 -> le 3"
        [ (1, 1); (3, 3) ]
        (hist_buckets "test.hist");
      M.observe h 4;
      Alcotest.(check (list (pair int int)))
        "4 -> le 7"
        [ (1, 1); (3, 3); (7, 4) ]
        (hist_buckets "test.hist");
      M.observe h 0;
      M.observe h (-5);
      Alcotest.(check (list (pair int int)))
        "non-positive -> le 0"
        [ (0, 2); (1, 3); (3, 5); (7, 6) ]
        (hist_buckets "test.hist");
      Alcotest.(check int) "count" 6 (M.hist_count h);
      Alcotest.(check int) "sum" 5 (M.hist_sum h);
      let h2 = M.histogram "test.hist2" in
      M.observe h2 1024;
      Alcotest.(check (list (pair int int)))
        "2^10 opens the le 2^11-1 bucket" [ (2047, 1) ] (hist_buckets "test.hist2");
      M.observe h2 1023;
      Alcotest.(check (list (pair int int)))
        "2^10-1 closes under le 2^10-1"
        [ (1023, 1); (2047, 2) ]
        (hist_buckets "test.hist2");
      M.observe h2 max_int;
      Alcotest.(check int) "max_int lands in the last bucket" 3 (M.hist_count h2))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_expose_format () =
  with_metrics (fun () ->
      M.incr (M.counter "test.expose.jobs");
      M.observe (M.histogram "wall.expose_ns") 3;
      let text = M.expose () in
      List.iter
        (fun sub ->
          Alcotest.(check bool) (Printf.sprintf "exposition has %S" sub) true
            (contains ~sub text))
        [
          "# TYPE resa_test_expose_jobs counter";
          "resa_test_expose_jobs 1";
          "# TYPE resa_wall_expose_ns histogram";
          "resa_wall_expose_ns_bucket{le=\"3\"} 1";
          "resa_wall_expose_ns_bucket{le=\"+Inf\"} 1";
          "resa_wall_expose_ns_sum 3";
          "resa_wall_expose_ns_count 1";
        ])

let test_wall_prefix () =
  Alcotest.(check bool) "wall. is wall" true (M.is_wall "wall.decide_ns");
  Alcotest.(check bool) "sim. is not" false (M.is_wall "sim.wait");
  Alcotest.(check bool) "wallpaper is not" false (M.is_wall "wallpaper")

(* --- simulator integration ----------------------------------------------- *)

let arrivals ?(seed = 11) ?(n = 400) () =
  let rng = Resa_core.Prng.create ~seed in
  let src = Swf_stream.synthetic ~overestimate:2.0 rng ~m:16 ~n ~max_runtime:60 ~mean_gap:3.0 in
  let acc = ref [] in
  let rec go () = match src () with None -> () | Some a -> acc := a :: !acc; go () in
  go ();
  List.rev !acc

let feed xs =
  let rest = ref xs in
  fun () ->
    match !rest with
    | [] -> None
    | (a : Swf_stream.arrival) :: tl ->
      rest := tl;
      Some Simulator.{ job = a.job; submit = a.submit; estimate = a.estimate }

let run_with_heartbeats ?(n = 400) ?(heartbeat_every = 64) policy =
  let rows = ref [] in
  let ms = Metrics.Stream.create ~m:16 ~reservations:[] () in
  let stats =
    Simulator.run_stream ~gc_every:50 ~heartbeat_every
      ~on_heartbeat:(fun hb -> rows := H.make ~run:"t" ~stream:ms ~registry:true hb :: !rows)
      ~on_record:(Metrics.Stream.observe ms)
      ~policy ~m:16
      (feed (arrivals ~n ()))
  in
  (stats, List.rev !rows)

let deterministic_snapshot () =
  List.filter (fun (name, _) -> not (M.is_wall name)) (M.snapshot ())

let test_snapshot_deterministic () =
  (* Two identical replays produce identical deterministic registry
     sections — and the suite runs at RESA_DOMAINS 1 and 4 in CI, pinning
     the snapshot across pool sizes too. *)
  with_metrics (fun () ->
      let once () =
        M.reset ();
        let stats, _ = run_with_heartbeats Policy.easy in
        (stats, deterministic_snapshot ())
      in
      let stats1, snap1 = once () in
      let stats2, snap2 = once () in
      Alcotest.(check bool) "same stats" true (stats1 = stats2);
      Alcotest.(check bool) "same deterministic snapshot" true (snap1 = snap2);
      let counter name =
        match List.assoc_opt name snap1 with
        | Some (M.Counter_v v) -> v
        | _ -> Alcotest.fail (name ^ " missing")
      in
      Alcotest.(check int) "admissions counted" 400 (counter "sim.jobs_admitted");
      Alcotest.(check int) "completions counted" 400 (counter "sim.jobs_completed");
      (match List.assoc_opt "sim.wait" snap1 with
      | Some (M.Histogram_v h) -> Alcotest.(check int) "every start observed" 400 h.M.count
      | _ -> Alcotest.fail "sim.wait missing");
      Alcotest.(check bool) "decide latency is wall-prefixed" true
        (List.mem_assoc "wall.decide_ns" (M.snapshot ())
        && not (List.mem_assoc "wall.decide_ns" snap1)))

let test_traced_replay_byte_identical_off () =
  (* Collection on or off never changes the deterministic event stream. *)
  let text enabled =
    let doit () =
      let obs = Resa_obs.Trace.buffer () in
      ignore (Simulator.run_stream ~obs ~policy:Policy.easy ~m:16 (feed (arrivals ~n:200 ())));
      String.concat "\n"
        (List.map (Resa_obs.Trace.to_json ~run:"x") (Resa_obs.Trace.contents obs))
    in
    if enabled then with_metrics doit else without_metrics doit
  in
  Alcotest.(check bool) "byte-identical" true (text false = text true)

let test_heartbeat_sampler () =
  with_metrics (fun () ->
      let stats, rows = run_with_heartbeats ~heartbeat_every:64 Policy.fcfs in
      Alcotest.(check bool) "several snapshots" true (List.length rows >= 3);
      let seqs = List.map (fun (r : H.row) -> r.H.hb.Simulator.hb_seq) rows in
      Alcotest.(check (list int)) "contiguous seq" (List.init (List.length rows) (fun i -> i + 1)) seqs;
      List.iter
        (fun (r : H.row) ->
          let hb = r.H.hb in
          Alcotest.(check bool) "live = admitted - completed" true
            (hb.Simulator.hb_live = hb.Simulator.hb_admitted - hb.Simulator.hb_completed);
          Alcotest.(check bool) "registry section is deterministic only" true
            (List.for_all (fun (name, _) -> not (M.is_wall name)) r.H.metrics))
        rows;
      let last = List.nth rows (List.length rows - 1) in
      Alcotest.(check int) "closing snapshot drains" stats.Simulator.jobs
        last.H.hb.Simulator.hb_completed;
      Alcotest.(check bool) "closing snapshot not before makespan" true
        (last.H.hb.Simulator.hb_time >= stats.Simulator.makespan);
      (* Deterministic replay -> deterministic heartbeat stream (modulo the
         wall section, absent here). *)
      M.reset ();
      let _, rows2 = run_with_heartbeats ~heartbeat_every:64 Policy.fcfs in
      let jsons rs = List.map (fun r -> Resa_obs.Jsonu.to_string (H.to_json r)) rs in
      Alcotest.(check (list string)) "byte-stable rows" (jsons rows) (jsons rows2))

let test_heartbeat_roundtrip () =
  let hb =
    Simulator.
      {
        hb_seq = 3;
        hb_time = 1200;
        hb_events = 4096;
        hb_admitted = 2050;
        hb_completed = 2000;
        hb_queued = 30;
        hb_live = 50;
        hb_makespan = 1500;
        hb_nodes = 77;
      }
  in
  let row =
    {
      H.run = Some "EASY";
      hb;
      wait_p50 = 12.5;
      wait_p95 = Float.nan;
      utilization = 0.75;
      metrics = [ ("sim.wait.count", 2000.) ];
      wall =
        Some
          {
            H.elapsed_s = 1.25;
            jobs_per_s = 1600.;
            rss_mb = None;
            wall_metrics = [ ("wall.decide_ns.sum", 9.9e6) ];
          };
    }
  in
  let line = Resa_obs.Jsonu.to_string (H.to_json row) in
  (match H.parse_line line with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "hb fields" true (r.H.hb = hb);
    Alcotest.(check (option string)) "run tag" (Some "EASY") r.H.run;
    Alcotest.(check (float 0.0)) "p50" 12.5 r.H.wait_p50;
    Alcotest.(check bool) "nan through null" true (Float.is_nan r.H.wait_p95);
    Alcotest.(check bool) "metrics" true (r.H.metrics = row.H.metrics);
    (match (r.H.wall, row.H.wall) with
    | Some a, Some b ->
      Alcotest.(check bool) "wall block" true
        (a.H.elapsed_s = b.H.elapsed_s && a.H.jobs_per_s = b.H.jobs_per_s
       && a.H.rss_mb = None && a.H.wall_metrics = b.H.wall_metrics)
    | _ -> Alcotest.fail "wall lost"));
  (* The deterministic view drops exactly the wall member. *)
  let stripped = Resa_obs.Jsonu.to_string (H.strip_wall (H.to_json row)) in
  Alcotest.(check bool) "strip_wall removes wall" true (not (contains ~sub:"wall" stripped));
  match H.parse_line stripped with
  | Ok r -> Alcotest.(check bool) "stripped row parses" true (r.H.wall = None)
  | Error e -> Alcotest.fail e

(* --- benchdiff ----------------------------------------------------------- *)

let brow ?(experiment = "perf") ?(n = 1000) ?(algo = "easy") ?(domains = 4) ?(seed = 42)
    ?(git_rev = "abc") ?ts ?host wall_s =
  { B.experiment; n; algo; wall_s; domains; seed; git_rev; ts; host }

let test_benchdiff_flags_slowdown () =
  let old_rows = [ brow 1.0; brow ~algo:"fcfs" 2.0 ] in
  let new_rows = [ brow 1.2; brow ~algo:"fcfs" 2.0 ] in
  let r = B.compare_rows ~old_rows ~new_rows () in
  Alcotest.(check int) "20% slowdown flagged" 1 r.B.regressions;
  Alcotest.(check int) "no improvements" 0 r.B.improvements;
  Alcotest.(check bool) "render names the regression" true
    (contains ~sub:"REGRESSION" (B.render r));
  let same = B.compare_rows ~old_rows ~new_rows:old_rows () in
  Alcotest.(check int) "identical inputs pass" 0 same.B.regressions

let test_benchdiff_special_rows () =
  let r =
    B.compare_rows
      ~old_rows:[ brow ~algo:"rss_mb:easy" 10.0; brow ~algo:"tiny" 0.001; brow 1.0 ]
      ~new_rows:[ brow ~algo:"rss_mb:easy" 30.0; brow ~algo:"tiny" 0.004; brow 1.0 ]
      ()
  in
  Alcotest.(check int) "rss and noise rows never gate" 0 r.B.regressions;
  let verdict key =
    let c = List.find (fun c -> contains ~sub:key c.B.ckey) r.B.comparisons in
    c.B.verdict
  in
  Alcotest.(check bool) "rss is informational" true (verdict "rss_mb:easy" = B.Info);
  Alcotest.(check bool) "sub-noise-floor is noise" true (verdict "tiny" = B.Noise)

let test_benchdiff_dedup_and_missing () =
  (* Duplicate keys collapse to the best (minimum) wall; unmatched keys are
     reported, not compared. *)
  let r =
    B.compare_rows
      ~old_rows:[ brow 1.5; brow 1.0; brow ~algo:"gone" 1.0 ]
      ~new_rows:[ brow 1.05; brow ~algo:"new" 1.0 ]
      ()
  in
  Alcotest.(check int) "one matched pair" 1 (List.length r.B.comparisons);
  let c = List.hd r.B.comparisons in
  Alcotest.(check bool) "old collapsed to min" true (c.B.old_wall = 1.0);
  Alcotest.(check int) "1.05x is within threshold" 0 r.B.regressions;
  Alcotest.(check bool) "only_old reported" true
    (List.exists (contains ~sub:"gone") r.B.only_old);
  Alcotest.(check bool) "only_new reported" true
    (List.exists (contains ~sub:"new") r.B.only_new)

let test_benchdiff_parses_bench_json () =
  (* The exact shape Bench_json.write emits, stamp included. *)
  let text =
    {|[
  {"experiment": "perf", "n": 500, "algo": "easy", "wall_s": 0.123456, "speedup": null, "domains": 4, "seed": 42, "git_rev": "abc1234", "ts": "2026-08-09T12:00:00Z", "host": "ci"},
  {"experiment": "perf", "n": 500, "algo": "rss_mb:easy", "wall_s": 13.500000, "speedup": 1.500, "domains": 4, "seed": 42, "git_rev": "abc1234", "ts": "2026-08-09T12:00:00Z", "host": "ci"}
]|}
  in
  match B.rows_of_string text with
  | Error e -> Alcotest.fail e
  | Ok rows ->
    Alcotest.(check int) "two rows" 2 (List.length rows);
    let r = List.hd rows in
    Alcotest.(check (option string)) "ts parsed" (Some "2026-08-09T12:00:00Z") r.B.ts;
    Alcotest.(check (option string)) "host parsed" (Some "ci") r.B.host;
    let report = B.compare_rows ~old_rows:rows ~new_rows:rows () in
    Alcotest.(check bool) "stamp surfaces in report" true
      (contains ~sub:"2026-08-09T12:00:00Z ci abc1234" report.B.old_stamp)

let suite =
  [
    Alcotest.test_case "counter and gauge basics" `Quick test_counter_gauge_basics;
    Alcotest.test_case "disabled path is a no-op" `Quick test_disabled_path_noop;
    Alcotest.test_case "kind mismatch raises" `Quick test_kind_mismatch_raises;
    Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_boundaries;
    Alcotest.test_case "prometheus exposition" `Quick test_expose_format;
    Alcotest.test_case "wall prefix convention" `Quick test_wall_prefix;
    Alcotest.test_case "snapshot deterministic across runs" `Quick test_snapshot_deterministic;
    Alcotest.test_case "traced replay byte-identical off" `Quick
      test_traced_replay_byte_identical_off;
    Alcotest.test_case "heartbeat sampler cadence and closing" `Quick test_heartbeat_sampler;
    Alcotest.test_case "heartbeat JSONL round-trip" `Quick test_heartbeat_roundtrip;
    Alcotest.test_case "benchdiff flags 20% slowdown" `Quick test_benchdiff_flags_slowdown;
    Alcotest.test_case "benchdiff rss and noise rows" `Quick test_benchdiff_special_rows;
    Alcotest.test_case "benchdiff dedup and missing keys" `Quick
      test_benchdiff_dedup_and_missing;
    Alcotest.test_case "benchdiff reads bench json" `Quick test_benchdiff_parses_bench_json;
  ]
