open Resa_core
open Resa_algos

let test_nfdh_shelves () =
  (* LPT order: p=5(q2), p=4(q2), p=3(q3), p=2(q1). m=4.
     NFDH: shelf1 {j0,j1} (width 4), j2 opens shelf2, j3 joins shelf2. *)
  let inst = Instance.of_sizes ~m:4 [ (5, 2); (4, 2); (3, 3); (2, 1) ] in
  let shelves = Shelf.shelves Shelf.Nfdh inst in
  Alcotest.(check (list (list int))) "partition" [ [ 0; 1 ]; [ 2; 3 ] ] shelves

let test_ffdh_reuses_open_shelves () =
  (* FFDH can put a late narrow job back into an earlier shelf. m=4:
     p=5(q2), p=4(q3), p=3(q2): NFDH -> 3 shelves, FFDH -> j2 joins shelf 1. *)
  let inst = Instance.of_sizes ~m:4 [ (5, 2); (4, 3); (3, 2) ] in
  Alcotest.(check (list (list int))) "NFDH opens three" [ [ 0 ]; [ 1 ]; [ 2 ] ]
    (Shelf.shelves Shelf.Nfdh inst);
  Alcotest.(check (list (list int))) "FFDH reuses the first" [ [ 0; 2 ]; [ 1 ] ]
    (Shelf.shelves Shelf.Ffdh inst)

let test_shelf_schedule_structure () =
  let inst = Instance.of_sizes ~m:4 [ (5, 2); (4, 2); (3, 3); (2, 1) ] in
  let s = Shelf.run Shelf.Nfdh inst in
  Tutil.check_feasible "shelf schedule" inst s;
  (* Shelf members start together. *)
  Alcotest.(check int) "j1 with j0" (Schedule.start s 0) (Schedule.start s 1);
  Alcotest.(check int) "j3 with j2" (Schedule.start s 2) (Schedule.start s 3);
  (* Stacked: second shelf starts at the first shelf's height. *)
  Alcotest.(check int) "stacked" 5 (Schedule.start s 2);
  Alcotest.(check int) "makespan = sum of heights" 8 (Schedule.makespan inst s)

let test_shelf_with_reservation () =
  (* Shelves are stacked into the availability profile. *)
  let inst = Instance.of_sizes ~m:2 ~reservations:[ (1, 3, 1) ] [ (2, 2); (1, 1) ] in
  let s = Shelf.run Shelf.Nfdh inst in
  Tutil.check_feasible "reservation-aware shelves" inst s;
  Alcotest.(check bool) "first shelf waits for full width" true (Schedule.start s 0 >= 4)

let test_width_never_exceeded () =
  let inst = Instance.of_sizes ~m:3 [ (1, 2); (1, 2); (1, 2); (1, 2) ] in
  List.iter
    (fun v ->
      List.iter
        (fun shelf ->
          let w = List.fold_left (fun acc i -> acc + Job.q (Instance.job inst i)) 0 shelf in
          Alcotest.(check bool) (Shelf.variant_name v ^ " width ok") true (w <= 3))
        (Shelf.shelves v inst))
    [ Shelf.Nfdh; Shelf.Ffdh ]

let prop_feasible =
  Tutil.qcheck ~count:200 "shelf schedules feasible (both variants)" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      Schedule.is_feasible inst (Shelf.run Shelf.Nfdh inst)
      && Schedule.is_feasible inst (Shelf.run Shelf.Ffdh inst))

let prop_partition_complete =
  Tutil.qcheck "shelves partition the job set" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_rigid_of_seed seed in
      let all = List.concat (Shelf.shelves Shelf.Ffdh inst) in
      List.sort Int.compare all = List.init (Instance.n_jobs inst) Fun.id)

let prop_ffdh_no_more_shelves =
  Tutil.qcheck "FFDH never uses more shelves than NFDH" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_rigid_of_seed seed in
      List.length (Shelf.shelves Shelf.Ffdh inst) <= List.length (Shelf.shelves Shelf.Nfdh inst))

let prop_shelf_never_beats_optimum =
  Tutil.qcheck ~count:100 "shelf >= exact optimum" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_rigid_of_seed seed in
      match Resa_exact.Bnb.optimal_makespan ~node_limit:200_000 inst with
      | None -> QCheck.assume_fail ()
      | Some opt -> Schedule.makespan inst (Shelf.run Shelf.Nfdh inst) >= opt)

let suite =
  [
    Alcotest.test_case "NFDH shelf partition" `Quick test_nfdh_shelves;
    Alcotest.test_case "FFDH reuses open shelves" `Quick test_ffdh_reuses_open_shelves;
    Alcotest.test_case "shelf schedule structure" `Quick test_shelf_schedule_structure;
    Alcotest.test_case "shelves respect reservations" `Quick test_shelf_with_reservation;
    Alcotest.test_case "shelf width bounded by m" `Quick test_width_never_exceeded;
    prop_feasible;
    prop_partition_complete;
    prop_ffdh_no_more_shelves;
    prop_shelf_never_beats_optimum;
  ]
