(* Job, Reservation, Instance, Schedule, Gantt unit tests. *)

open Resa_core

let test_job_make () =
  let j = Job.make ~id:3 ~p:5 ~q:2 in
  Alcotest.(check int) "id" 3 (Job.id j);
  Alcotest.(check int) "p" 5 (Job.p j);
  Alcotest.(check int) "q" 2 (Job.q j);
  Alcotest.(check int) "area" 10 (Job.area j)

let test_job_rejects () =
  Alcotest.check_raises "p=0" (Invalid_argument "Job.make: p must be >= 1") (fun () ->
      ignore (Job.make ~id:0 ~p:0 ~q:1));
  Alcotest.check_raises "q=0" (Invalid_argument "Job.make: q must be >= 1") (fun () ->
      ignore (Job.make ~id:0 ~p:1 ~q:0))

let test_reservation_basics () =
  let r = Reservation.make ~id:1 ~start:4 ~p:3 ~q:2 in
  Alcotest.(check int) "stop" 7 (Reservation.stop r);
  Alcotest.(check bool) "active inside" true (Reservation.active_at r 5);
  Alcotest.(check bool) "active at start" true (Reservation.active_at r 4);
  Alcotest.(check bool) "inactive at stop" false (Reservation.active_at r 7);
  Alcotest.(check bool) "overlaps" true (Reservation.overlaps r ~lo:6 ~hi:10);
  Alcotest.(check bool) "touching is not overlap" false (Reservation.overlaps r ~lo:7 ~hi:10)

let test_reservation_rejects () =
  Alcotest.check_raises "negative start"
    (Invalid_argument "Reservation.make: start must be >= 0") (fun () ->
      ignore (Reservation.make ~id:0 ~start:(-1) ~p:1 ~q:1))

let test_instance_create_checks () =
  let j = Job.make ~id:0 ~p:1 ~q:5 in
  (match Instance.create ~m:3 ~jobs:[ j ] ~reservations:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "job wider than machine accepted");
  let r1 = Reservation.make ~id:0 ~start:0 ~p:5 ~q:2 in
  let r2 = Reservation.make ~id:1 ~start:2 ~p:5 ~q:2 in
  (match Instance.create ~m:3 ~jobs:[] ~reservations:[ r1; r2 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overlapping reservations exceeding m accepted");
  match
    Instance.create ~m:3
      ~jobs:[ Job.make ~id:0 ~p:1 ~q:1; Job.make ~id:0 ~p:2 ~q:1 ]
      ~reservations:[]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate job ids accepted"

let test_instance_unavailability () =
  let inst =
    Instance.of_sizes ~m:10 ~reservations:[ (2, 4, 3); (4, 4, 5) ] [ (1, 1) ]
  in
  let u = Instance.unavailability inst in
  Alcotest.(check int) "before" 0 (Profile.value_at u 0);
  Alcotest.(check int) "first only" 3 (Profile.value_at u 3);
  Alcotest.(check int) "overlap" 8 (Profile.value_at u 5);
  Alcotest.(check int) "second only" 5 (Profile.value_at u 7);
  Alcotest.(check int) "after" 0 (Profile.value_at u 9);
  Alcotest.(check int) "umax" 8 (Instance.umax inst);
  Alcotest.(check int) "horizon" 8 (Instance.horizon inst);
  let a = Instance.availability inst in
  Alcotest.(check int) "availability complement" 2 (Profile.value_at a 5);
  (* Availability sits on every scheduler hot path; it is computed once at
     construction, not rebuilt per call. *)
  Alcotest.(check bool) "availability is cached" true (a == Instance.availability inst)

let test_instance_aggregates () =
  let inst = Instance.of_sizes ~m:4 [ (3, 2); (5, 1); (2, 4) ] in
  Alcotest.(check int) "total work" ((3 * 2) + 5 + (2 * 4)) (Instance.total_work inst);
  Alcotest.(check int) "pmax" 5 (Instance.pmax inst);
  Alcotest.(check int) "qmax" 4 (Instance.qmax inst)

let test_alpha_restriction () =
  let inst = Instance.of_sizes ~m:10 ~reservations:[ (0, 5, 4) ] [ (2, 3) ] in
  Alcotest.(check bool) "alpha .5 ok" true (Instance.is_alpha_restricted inst ~alpha:0.5);
  Alcotest.(check bool) "alpha .7 fails on reservations" false
    (Instance.is_alpha_restricted inst ~alpha:0.7);
  Alcotest.(check bool) "alpha .2 fails on jobs" false
    (Instance.is_alpha_restricted inst ~alpha:0.2);
  match Instance.alpha_interval inst with
  | None -> Alcotest.fail "interval expected"
  | Some (lo, hi) ->
    Alcotest.(check (float 1e-9)) "lo" 0.3 lo;
    Alcotest.(check (float 1e-9)) "hi" 0.6 hi

let test_alpha_interval_empty () =
  (* Wide job + wide reservation: no alpha fits. *)
  let inst = Instance.of_sizes ~m:10 ~reservations:[ (0, 5, 6) ] [ (2, 6) ] in
  Alcotest.(check bool) "empty interval" true (Instance.alpha_interval inst = None)

let test_schedule_feasible () =
  let inst = Instance.of_sizes ~m:3 [ (2, 2); (2, 1); (1, 3) ] in
  let s = Schedule.make [| 0; 0; 2 |] in
  Tutil.check_feasible "valid packing" inst s;
  Alcotest.(check int) "makespan" 3 (Schedule.makespan inst s);
  Alcotest.(check int) "completion of job 2" 3 (Schedule.completion inst s 2);
  Alcotest.(check (list int)) "running at 0" [ 0; 1 ] (Schedule.running_at inst s 0);
  Alcotest.(check (list int)) "running at 2" [ 2 ] (Schedule.running_at inst s 2)

let test_schedule_overload_detected () =
  let inst = Instance.of_sizes ~m:3 [ (2, 2); (2, 2) ] in
  match Schedule.validate inst (Schedule.make [| 0; 1 |]) with
  | Error (Schedule.Overload { time = 1; used = 4; capacity = 3 }) -> ()
  | Error v -> Alcotest.failf "wrong violation: %a" Schedule.pp_violation v
  | Ok () -> Alcotest.fail "overload accepted"

let test_schedule_reservation_conflict () =
  let inst = Instance.of_sizes ~m:3 ~reservations:[ (1, 2, 2) ] [ (3, 2) ] in
  match Schedule.validate inst (Schedule.make [| 0 |]) with
  | Error (Schedule.Overload _) -> ()
  | Error v -> Alcotest.failf "wrong violation: %a" Schedule.pp_violation v
  | Ok () -> Alcotest.fail "reservation conflict accepted"

let test_schedule_negative_and_length () =
  let inst = Instance.of_sizes ~m:2 [ (1, 1) ] in
  (match Schedule.validate inst (Schedule.make [| -1 |]) with
  | Error (Schedule.Negative_start _) -> ()
  | _ -> Alcotest.fail "negative start accepted");
  match Schedule.validate inst (Schedule.make [| 0; 0 |]) with
  | Error (Schedule.Length_mismatch _) -> ()
  | _ -> Alcotest.fail "length mismatch accepted"

let test_schedule_utilization () =
  (* Perfect packing: utilization 1. *)
  let inst = Instance.of_sizes ~m:2 [ (3, 2) ] in
  let s = Schedule.make [| 0 |] in
  Alcotest.(check (float 1e-9)) "full" 1.0 (Schedule.utilization inst s);
  Alcotest.(check int) "no idle" 0 (Schedule.idle_area inst s);
  let inst2 = Instance.of_sizes ~m:2 [ (3, 1) ] in
  let s2 = Schedule.make [| 0 |] in
  Alcotest.(check (float 1e-9)) "half" 0.5 (Schedule.utilization inst2 s2);
  Alcotest.(check int) "idle half" 3 (Schedule.idle_area inst2 s2)

let test_usage_profile () =
  let inst = Instance.of_sizes ~m:5 [ (4, 2); (2, 3) ] in
  let s = Schedule.make [| 0; 1 |] in
  let r = Schedule.usage inst s in
  Alcotest.(check int) "t=0" 2 (Profile.value_at r 0);
  Alcotest.(check int) "t=1" 5 (Profile.value_at r 1);
  Alcotest.(check int) "t=3" 2 (Profile.value_at r 3);
  Alcotest.(check int) "t=4" 0 (Profile.value_at r 4)

let test_gantt_renders () =
  let inst = Instance.of_sizes ~m:3 ~reservations:[ (1, 2, 1) ] [ (2, 2); (3, 1) ] in
  let s = Resa_algos.Lsrc.run inst in
  let out = Gantt.render inst s in
  Alcotest.(check bool) "mentions reservations" true (String.contains out '#');
  Alcotest.(check bool) "mentions job a" true (String.contains out 'a');
  Alcotest.(check bool) "mentions job b" true (String.contains out 'b');
  (* One line per processor plus header. *)
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "3 rows + header" 4 (List.length lines)

let test_gantt_assign_processors () =
  let inst = Instance.of_sizes ~m:4 [ (2, 2); (2, 2); (1, 4) ] in
  let s = Schedule.make [| 0; 0; 2 |] in
  let assignment = Gantt.assign_processors inst s in
  (* Jobs 0 and 1 run together: disjoint processors covering 0..3. *)
  let all = Array.concat [ assignment.(0); assignment.(1) ] in
  Array.sort Int.compare all;
  Alcotest.(check (array int)) "disjoint cover" [| 0; 1; 2; 3 |] all;
  Alcotest.(check int) "wide job gets all" 4 (Array.length assignment.(2))

let test_gantt_profile_render () =
  let p = Profile.of_steps [ (0, 3); (4, 1) ] in
  let out = Gantt.render_profile p ~hi:8 in
  Alcotest.(check bool) "non-empty" true (String.length out > 0);
  Alcotest.(check bool) "has bars" true (String.contains out '*')

(* --- properties --- *)

let prop_usage_integral_is_work =
  Tutil.qcheck "usage integral equals total work" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_rigid_of_seed seed in
      let s = Resa_algos.Lsrc.run inst in
      let cmax = Schedule.makespan inst s in
      cmax = 0
      || Profile.integral_on (Schedule.usage inst s) ~lo:0 ~hi:cmax = Instance.total_work inst)

let prop_validate_accepts_lsrc =
  Tutil.qcheck "validate accepts LSRC output on reserved instances" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      Schedule.is_feasible inst (Resa_algos.Lsrc.run inst))

let prop_gantt_total_cells =
  Tutil.qcheck ~count:50 "gantt assignment sizes match q" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      let s = Resa_algos.Lsrc.run inst in
      let assignment = Gantt.assign_processors inst s in
      Array.for_all
        (fun i -> Array.length assignment.(i) = Job.q (Instance.job inst i))
        (Array.init (Instance.n_jobs inst) (fun i -> i)))

let suite =
  [
    Alcotest.test_case "job constructor and area" `Quick test_job_make;
    Alcotest.test_case "job rejects bad data" `Quick test_job_rejects;
    Alcotest.test_case "reservation intervals" `Quick test_reservation_basics;
    Alcotest.test_case "reservation rejects bad data" `Quick test_reservation_rejects;
    Alcotest.test_case "instance validation" `Quick test_instance_create_checks;
    Alcotest.test_case "unavailability profile" `Quick test_instance_unavailability;
    Alcotest.test_case "work/pmax/qmax" `Quick test_instance_aggregates;
    Alcotest.test_case "alpha restriction checks" `Quick test_alpha_restriction;
    Alcotest.test_case "alpha interval can be empty" `Quick test_alpha_interval_empty;
    Alcotest.test_case "feasible schedule accepted" `Quick test_schedule_feasible;
    Alcotest.test_case "overload detected with time" `Quick test_schedule_overload_detected;
    Alcotest.test_case "reservation conflicts detected" `Quick test_schedule_reservation_conflict;
    Alcotest.test_case "negative start / length mismatch" `Quick test_schedule_negative_and_length;
    Alcotest.test_case "utilization and idle area" `Quick test_schedule_utilization;
    Alcotest.test_case "usage profile r(t)" `Quick test_usage_profile;
    Alcotest.test_case "gantt renders jobs and reservations" `Quick test_gantt_renders;
    Alcotest.test_case "gantt processor assignment" `Quick test_gantt_assign_processors;
    Alcotest.test_case "profile bar rendering" `Quick test_gantt_profile_render;
    prop_usage_integral_is_work;
    prop_validate_accepts_lsrc;
    prop_gantt_total_cells;
  ]
