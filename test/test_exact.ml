(* Lower bounds and the branch-and-bound exact solver. *)

open Resa_core
open Resa_exact

let test_min_time_with_area () =
  let p = Profile.of_steps [ (0, 2); (3, 0); (5, 4) ] in
  Alcotest.(check int) "zero area" 0 (Lower_bounds.min_time_with_area p ~from:0 ~area:0);
  Alcotest.(check int) "inside first segment" 2 (Lower_bounds.min_time_with_area p ~from:0 ~area:4);
  Alcotest.(check int) "stalls through the hole" 6 (Lower_bounds.min_time_with_area p ~from:0 ~area:10);
  Alcotest.(check int) "rounds up" 6 (Lower_bounds.min_time_with_area p ~from:0 ~area:7);
  Alcotest.(check int) "from offset" 7 (Lower_bounds.min_time_with_area p ~from:5 ~area:8)

let test_min_time_with_area_rejects_dead_tail () =
  (* A non-positive tail can never accumulate more area; the guard must fire
     even when [from] is already past the last breakpoint — that case used
     to fall through to a fabricated rate of 1. *)
  let dead = Profile.of_steps [ (0, 3); (5, 0) ] in
  let expect = Invalid_argument "Lower_bounds.min_time_with_area: non-positive tail" in
  Alcotest.check_raises "from before tail" expect (fun () ->
      ignore (Lower_bounds.min_time_with_area dead ~from:0 ~area:100));
  Alcotest.check_raises "from past last breakpoint" expect (fun () ->
      ignore (Lower_bounds.min_time_with_area dead ~from:9 ~area:3));
  (* area = 0 needs nothing, so even a dead tail answers immediately. *)
  Alcotest.(check int) "zero area unaffected" 9
    (Lower_bounds.min_time_with_area dead ~from:9 ~area:0)

let test_work_bound_no_reservations () =
  let inst = Instance.of_sizes ~m:4 [ (3, 2); (2, 4) ] in
  (* W = 14, m = 4 -> ceil(14/4) = 4. *)
  Alcotest.(check int) "ceil(W/m)" 4 (Lower_bounds.work_bound inst)

let test_work_bound_with_reservations () =
  let inst = Instance.of_sizes ~m:2 ~reservations:[ (0, 3, 2) ] [ (2, 2) ] in
  (* Machine fully blocked during [0,3): area accumulates only after. *)
  Alcotest.(check int) "waits out the blackout" 5 (Lower_bounds.work_bound inst)

let test_fit_bound () =
  let inst = Instance.of_sizes ~m:3 ~reservations:[ (1, 4, 2) ] [ (2, 2) ] in
  (* q=2 does not fit alongside the reservation: starts at 5, ends at 7. *)
  Alcotest.(check int) "earliest window end" 7 (Lower_bounds.fit_bound inst);
  let free = Instance.of_sizes ~m:3 [ (2, 2) ] in
  Alcotest.(check int) "pmax without reservations" 2 (Lower_bounds.fit_bound free)

let test_serial_bound () =
  (* Three jobs wider than m/2 must be sequential. *)
  let inst = Instance.of_sizes ~m:4 [ (2, 3); (3, 3); (1, 3); (1, 1) ] in
  Alcotest.(check int) "sum of wide durations" 6 (Lower_bounds.serial_bound inst);
  (* Work bound alone would be weaker: W = 22, ceil(22/4) = 6 — equal here,
     so tighten with a narrower machine. *)
  let inst2 = Instance.of_sizes ~m:10 [ (4, 6); (4, 6) ] in
  Alcotest.(check int) "serial beats area" 8 (Lower_bounds.serial_bound inst2);
  Alcotest.(check int) "area weaker" 5 (Lower_bounds.work_bound inst2)

let test_bnb_simple_exact () =
  (* PARTITION-style: optimum needs a clever split. m=2, sequential jobs. *)
  let inst = Instance.of_sizes ~m:2 [ (3, 1); (3, 1); (2, 1); (2, 1); (2, 1) ] in
  let r = Bnb.solve inst in
  Alcotest.(check bool) "optimal" true r.optimal;
  Alcotest.(check int) "balanced split" 6 r.makespan;
  Tutil.check_feasible "bnb schedule" inst r.schedule;
  Alcotest.(check int) "schedule achieves it" 6 (Schedule.makespan inst r.schedule)

let test_bnb_beats_greedy () =
  (* LSRC FIFO is suboptimal on the Graham-tight family; B&B must find m. *)
  let inst, opt = Resa_gen.Adversarial.graham_tight ~m:3 in
  let r = Bnb.solve inst in
  Alcotest.(check bool) "optimal" true r.optimal;
  Alcotest.(check int) "true optimum" opt r.makespan

let test_bnb_with_reservations () =
  let inst = Instance.of_sizes ~m:2 ~reservations:[ (2, 3, 2) ] [ (2, 2); (2, 1); (3, 1) ] in
  let r = Bnb.solve inst in
  Alcotest.(check bool) "optimal" true r.optimal;
  Tutil.check_feasible "bnb with reservations" inst r.schedule;
  (* Hand check: j0 (2,2) at 0; j1+j2 can share after the reservation, or j2
     before it... optimal is 8: verify against brute expectations. *)
  Alcotest.(check int) "value" 8 r.makespan

let test_bnb_empty () =
  let inst = Instance.of_sizes ~m:3 [] in
  let r = Bnb.solve inst in
  Alcotest.(check int) "empty" 0 r.makespan;
  Alcotest.(check bool) "optimal" true r.optimal

let test_bnb_node_limit () =
  (* A tiny node budget must still return a feasible (heuristic) result. *)
  let rng = Prng.create ~seed:99 in
  let inst =
    Resa_gen.Random_inst.alpha_restricted rng ~m:8 ~n:12 ~alpha:0.5 ~pmax:9 ()
  in
  let r = Bnb.solve ~node_limit:10 inst in
  Tutil.check_feasible "budgeted result feasible" inst r.schedule;
  Alcotest.(check bool) "upper bound only" true (r.makespan >= Lower_bounds.best inst)

let prop_bnb_at_most_heuristics =
  Tutil.qcheck ~count:120 "optimum <= every heuristic" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      let r = Bnb.solve ~node_limit:400_000 inst in
      (not r.optimal)
      || List.for_all
           (fun s -> r.makespan <= Schedule.makespan inst s)
           [
             Resa_algos.Lsrc.run inst;
             Resa_algos.Fcfs.run inst;
             Resa_algos.Backfill.conservative inst;
             Resa_algos.Backfill.easy inst;
             Resa_algos.Shelf.run Resa_algos.Shelf.Nfdh inst;
           ])

let prop_bnb_at_least_lower_bounds =
  Tutil.qcheck ~count:120 "optimum >= every lower bound" Tutil.seed_arb (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      let r = Bnb.solve ~node_limit:400_000 inst in
      (not r.optimal) || r.makespan >= Lower_bounds.best inst)

let prop_bnb_schedule_achieves_value =
  Tutil.qcheck ~count:120 "returned schedule achieves the reported makespan" Tutil.seed_arb
    (fun seed ->
      let inst = Tutil.small_resa_of_seed seed in
      let r = Bnb.solve ~node_limit:400_000 inst in
      Schedule.is_feasible inst r.schedule
      && Schedule.makespan inst r.schedule = r.makespan)

let prop_bnb_matches_brute_force =
  (* Exhaustive enumeration of every start vector on tiny instances: the
     strongest possible check of the left-shift dominance rule. *)
  Tutil.qcheck ~count:60 "B&B equals brute force on tiny instances" Tutil.seed_arb (fun seed ->
      let rng = Prng.create ~seed in
      let m = Prng.int_incl rng ~lo:1 ~hi:3 in
      let n = Prng.int_incl rng ~lo:1 ~hi:3 in
      let jobs =
        List.init n (fun i ->
            Job.make ~id:i ~p:(Prng.int_incl rng ~lo:1 ~hi:4) ~q:(Prng.int_incl rng ~lo:1 ~hi:m))
      in
      let reservations =
        if Prng.bool rng then
          [
            Reservation.make ~id:0 ~start:(Prng.int_incl rng ~lo:0 ~hi:4)
              ~p:(Prng.int_incl rng ~lo:1 ~hi:3) ~q:(Prng.int_incl rng ~lo:1 ~hi:m);
          ]
        else []
      in
      let inst = Instance.create_exn ~m ~jobs ~reservations in
      let h = Instance.horizon inst + List.fold_left (fun a j -> a + Job.p j) 0 jobs + 1 in
      let best = ref max_int in
      let starts = Array.make n 0 in
      let rec enum i =
        if i = n then begin
          let s = Schedule.make starts in
          if Schedule.is_feasible inst s then best := min !best (Schedule.makespan inst s)
        end
        else
          for t = 0 to h do
            starts.(i) <- t;
            enum (i + 1)
          done
      in
      enum 0;
      (Bnb.solve inst).makespan = !best)

let prop_packed_instances_confirmed =
  (* On known-optimum packed instances small enough for B&B, the solver
     must reproduce the constructed optimum. *)
  Tutil.qcheck ~count:40 "B&B confirms packed optima" Tutil.seed_arb (fun seed ->
      let rng = Prng.create ~seed in
      let packed = Resa_gen.Packed.generate rng ~m:3 ~c:6 ~target_jobs:6 () in
      match Bnb.optimal_makespan ~node_limit:400_000 packed.instance with
      | None -> QCheck.assume_fail ()
      | Some opt -> opt = packed.optimal)

let suite =
  [
    Alcotest.test_case "min_time_with_area" `Quick test_min_time_with_area;
    Alcotest.test_case "min_time_with_area rejects dead tail" `Quick
      test_min_time_with_area_rejects_dead_tail;
    Alcotest.test_case "work bound = ceil(W/m)" `Quick test_work_bound_no_reservations;
    Alcotest.test_case "work bound skips blackout" `Quick test_work_bound_with_reservations;
    Alcotest.test_case "fit bound (pmax generalised)" `Quick test_fit_bound;
    Alcotest.test_case "serial bound for wide jobs" `Quick test_serial_bound;
    Alcotest.test_case "B&B solves a partition" `Quick test_bnb_simple_exact;
    Alcotest.test_case "B&B beats the greedy" `Quick test_bnb_beats_greedy;
    Alcotest.test_case "B&B with reservations" `Quick test_bnb_with_reservations;
    Alcotest.test_case "B&B on empty instance" `Quick test_bnb_empty;
    Alcotest.test_case "node budget degrades gracefully" `Quick test_bnb_node_limit;
    prop_bnb_at_most_heuristics;
    prop_bnb_at_least_lower_bounds;
    prop_bnb_schedule_achieves_value;
    prop_bnb_matches_brute_force;
    prop_packed_instances_confirmed;
  ]
