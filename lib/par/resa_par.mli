(** Deterministic multicore executor for experiment campaigns.

    A persistent work-distributing pool of OCaml 5 domains. Every
    combinator is a drop-in replacement for its sequential counterpart:
    results land by input index and reductions run in a fixed (ascending)
    order, so the output is bit-identical to the sequential run regardless
    of how many domains execute it. Randomised replicates get their
    generators pre-split from the caller's generator {e before} any task
    runs ({!parallel_replicates}), which decouples each replicate's random
    stream from scheduling order.

    The pool size is resolved, in decreasing priority, from
    {!set_domains} (the [--jobs] flag of the CLI and benchmark harness),
    the [RESA_DOMAINS] environment variable, and finally
    [Domain.recommended_domain_count] (capped at 8). At size 1 every
    combinator degrades to a plain sequential loop with no domain spawns,
    no locking and no extra allocation beyond the result array.

    Parallel sections do not nest: a combinator called while another one
    is running (from a worker task, or from a second domain) executes its
    tasks inline, sequentially — same results, no deadlock. Worker
    exceptions are captured and the one raised by the {e lowest} task
    index is re-raised at the join point with its backtrace, again
    matching what the sequential loop would have raised first.

    With profiling on ([RESA_PROF=1] or {!Resa_obs.Prof.enable}), every
    task's wall time is credited to the executing domain
    ({!Resa_obs.Prof.busy_ns}) and each pooled parallel section records a
    [par.run_block] span — wall-clock data only, never part of results. *)

open Resa_core

val default_domains : unit -> int
(** Pool size from [RESA_DOMAINS] (when set to a positive integer),
    otherwise [Domain.recommended_domain_count ()] capped at 8. *)

val domain_count : unit -> int
(** The currently configured pool size: the {!set_domains} override if
    any, otherwise {!default_domains}. *)

val set_domains : int -> unit
(** Override the pool size (values [< 1] are clamped to 1). If a pool of
    a different size is already running, it is shut down and respawned
    lazily at the next parallel call. *)

val with_domains : int -> (unit -> 'a) -> 'a
(** [with_domains d f] runs [f] with the pool size forced to [d],
    restoring the previous configuration afterwards (even on exceptions).
    Used by the differential tests. *)

val parallel_map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f a] is [Array.map f a], computed by the pool.
    [?domains] overrides the configured size for this call only. *)

val parallel_map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** List counterpart of {!parallel_map} (order preserved). *)

val parallel_for_reduce :
  ?domains:int ->
  lo:int ->
  hi:int ->
  init:'acc ->
  f:(int -> 'a) ->
  combine:('acc -> 'a -> 'acc) ->
  unit ->
  'acc
(** [parallel_for_reduce ~lo ~hi ~init ~f ~combine ()] computes [f i] for
    [i] in [\[lo, hi)] in parallel, then folds the results with [combine]
    {e sequentially in ascending index order} — identical to
    [fold_left combine init (List.init (hi-lo) (fun i -> f (lo+i)))] even
    for non-commutative [combine]. *)

val parallel_replicates :
  ?domains:int -> Prng.t -> n:int -> (Prng.t -> int -> 'a) -> 'a array
(** [parallel_replicates rng ~n f] runs [n] independent replicates
    [f rng_i i]. The per-replicate generators [rng_0 .. rng_{n-1}] are
    pre-split from [rng] sequentially (by {!Prng.split}) before any task
    starts, so replicate [i] sees the same random stream whether the
    batch runs on 1 or 64 domains; [rng] itself is advanced by exactly
    [n] splits. Results land by replicate index. *)

val shutdown : unit -> unit
(** Stop and join the worker domains, if any. Idempotent; the pool
    respawns lazily on the next parallel call. Registered [at_exit]. *)
