open Resa_core

(* ------------------------------------------------------------------ *)
(* pool sizing                                                         *)
(* ------------------------------------------------------------------ *)

let env_domains () =
  match Sys.getenv_opt "RESA_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let default_domains () =
  match env_domains () with
  | Some n -> n
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

let override = ref None

let domain_count () =
  match !override with Some n -> n | None -> default_domains ()

(* ------------------------------------------------------------------ *)
(* the pool                                                            *)
(* ------------------------------------------------------------------ *)

(* One block of tasks [0, n): workers (and the submitter) claim indices
   under the mutex and run them unlocked. [run] must not raise — the
   combinators wrap user functions with their own exception capture. *)
type block = { run : int -> unit; n : int }

type pool = {
  mutex : Mutex.t;
  has_work : Condition.t;  (* new block installed, or shutdown *)
  all_done : Condition.t;  (* last task of the block completed *)
  mutable block : block option;
  mutable next : int;  (* next unclaimed index of [block] *)
  mutable unfinished : int;  (* claimed-or-unclaimed tasks not yet done *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  size : int;  (* total domains, including the submitting one *)
}

(* Busy/idle accounting (RESA_PROF): time spent inside tasks, credited to
   the executing domain. The clock reads sit outside the mutex, so they
   cost nothing to the other workers even when profiling is on. *)
let run_task run i =
  if Resa_obs.Prof.enabled () then begin
    let t0 = Resa_obs.Prof.now_ns () in
    Fun.protect ~finally:(fun () -> Resa_obs.Prof.add_busy (Resa_obs.Prof.now_ns () - t0))
      (fun () -> run i)
  end
  else run i

(* Claim and execute tasks until the block is exhausted. The mutex is
   held on entry and on exit. *)
let drain p b =
  while p.next < b.n do
    let i = p.next in
    p.next <- i + 1;
    Mutex.unlock p.mutex;
    run_task b.run i;
    Mutex.lock p.mutex;
    p.unfinished <- p.unfinished - 1;
    if p.unfinished = 0 then Condition.broadcast p.all_done
  done

let worker p () =
  Mutex.lock p.mutex;
  let rec loop () =
    if p.stop then Mutex.unlock p.mutex
    else begin
      (match p.block with
      | Some b when p.next < b.n -> drain p b
      | _ -> Condition.wait p.has_work p.mutex);
      loop ()
    end
  in
  loop ()

let make_pool size =
  let p =
    {
      mutex = Mutex.create ();
      has_work = Condition.create ();
      all_done = Condition.create ();
      block = None;
      next = 0;
      unfinished = 0;
      stop = false;
      workers = [];
      size;
    }
  in
  p.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker p));
  p

let the_pool = ref None

let shutdown_pool p =
  Mutex.lock p.mutex;
  let was_stopped = p.stop in
  p.stop <- true;
  Condition.broadcast p.has_work;
  Mutex.unlock p.mutex;
  if not was_stopped then List.iter Domain.join p.workers

let shutdown () =
  match !the_pool with
  | None -> ()
  | Some p ->
    the_pool := None;
    shutdown_pool p

let () = at_exit shutdown

let get_pool size =
  match !the_pool with
  | Some p when p.size = size -> p
  | existing ->
    Option.iter shutdown_pool existing;
    let p = make_pool size in
    the_pool := Some p;
    p

let set_domains n =
  let n = max 1 n in
  override := Some n;
  match !the_pool with
  | Some p when p.size <> n -> shutdown ()
  | _ -> ()

let with_domains d f =
  let saved = !override in
  set_domains d;
  Fun.protect
    ~finally:(fun () ->
      override := saved;
      (* Drop a pool whose size no longer matches the restored config. *)
      match !the_pool with
      | Some p when p.size <> domain_count () -> shutdown ()
      | _ -> ())
    f

(* Only one parallel section runs at a time; sections started while the
   flag is held (nested calls from worker tasks, or a second domain)
   fall back to an inline sequential loop — same results by design. *)
let busy = Atomic.make false

let run_block p ~n run =
  Mutex.lock p.mutex;
  p.block <- Some { run; n };
  p.next <- 0;
  p.unfinished <- n;
  Condition.broadcast p.has_work;
  (match p.block with Some b -> drain p b | None -> ());
  while p.unfinished > 0 do
    Condition.wait p.all_done p.mutex
  done;
  p.block <- None;
  Mutex.unlock p.mutex

(* The primitive everything else is built on: fill [results] with
   [Some (f i)] for i in [0, n), in parallel when the pool allows it,
   re-raising the lowest-index exception at the join point. *)
let run_tasks ?domains n f results =
  let seq lo =
    for i = lo to n - 1 do
      run_task (fun i -> results.(i) <- Some (f i)) i
    done
  in
  let d = match domains with Some d -> max 1 d | None -> domain_count () in
  let d = min d n in
  if d <= 1 then seq 0
  else if not (Atomic.compare_and_set busy false true) then seq 0
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set busy false)
      (fun () ->
        let failure = Atomic.make None in
        let run i =
          match f i with
          | v -> results.(i) <- Some v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            let rec record () =
              match Atomic.get failure with
              | Some (j, _, _) when j <= i -> ()
              | cur ->
                if not (Atomic.compare_and_set failure cur (Some (i, e, bt)))
                then record ()
            in
            record ()
        in
        Resa_obs.Prof.with_span ~cat:"par" "par.run_block" (fun () ->
            run_block (get_pool d) ~n run);
        match Atomic.get failure with
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())

let parallel_map ?domains f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_tasks ?domains n (fun i -> f a.(i)) results;
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map_list ?domains f l =
  Array.to_list (parallel_map ?domains f (Array.of_list l))

let parallel_for_reduce ?domains ~lo ~hi ~init ~f ~combine () =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    let results = Array.make n None in
    run_tasks ?domains n (fun i -> f (lo + i)) results;
    Array.fold_left
      (fun acc r -> match r with Some v -> combine acc v | None -> assert false)
      init results
  end

let parallel_replicates ?domains rng ~n f =
  if n <= 0 then [||]
  else begin
    (* Split in ascending replicate order, before any task runs: the
       per-replicate streams depend only on [rng]'s incoming state. *)
    let rngs = Array.make n rng in
    for i = 0 to n - 1 do
      rngs.(i) <- Prng.split rng
    done;
    let results = Array.make n None in
    run_tasks ?domains n (fun i -> f rngs.(i) i) results;
    Array.map (function Some v -> v | None -> assert false) results
  end
