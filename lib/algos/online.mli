(** Online scheduling by batches (paper §2.1).

    Jobs arrive over time; following Shmoys, Wein & Williamson (1995), any
    offline algorithm can be run online by batches: all jobs that arrived
    during the current batch are scheduled together, as a new batch, once the
    current batch completes. The makespan guarantee doubles: if the offline
    algorithm is ρ-approximate, the batch version is 2ρ-competitive.

    Reservations are honoured: each batch is scheduled by the offline
    algorithm on the availability profile restricted to times after the
    previous batch's completion. *)

open Resa_core

type report = {
  schedule : Schedule.t;
  batches : int list list;  (** Job indices per batch, in batch order. *)
  batch_starts : int list;  (** Time at which each batch was launched. *)
}

val run :
  ?offline:(Instance.t -> Schedule.t) -> Instance.t -> release:int array -> report
(** [run inst ~release] schedules every job of [inst] at or after its release
    date. [release.(i)] is job [i]'s arrival; must be non-negative, one per
    job. Default offline algorithm: [Lsrc.run] with FIFO priority. The
    offline algorithm is invoked on sub-instances whose job sets are batches
    and whose reservations include a full-machine blocker covering
    [\[0, batch start)]. The result is feasible for [inst] and no job starts
    before its release. *)
