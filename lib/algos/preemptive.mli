(** Optimal preemptive scheduling of sequential tasks under reservations.

    The related-work model of the paper (§1.3: Liu & Sanlaville [15],
    Schmidt [17]): tasks use one processor each ([q = 1]), may be preempted
    and resumed on any processor, and the number of available processors
    varies over time (here: [m − U(t)] induced by the reservations).

    Deciding whether all tasks finish by a deadline [T] is a transportation
    problem between tasks and the constant-capacity segments of the
    availability profile — an integral max-flow, so optimal *integer*
    preemptive schedules exist and are constructed here (McNaughton's
    wrap-around inside each segment). The optimum is found by binary search
    on [T].

    This gives the "price of non-preemption": the gap between the paper's
    non-preemptive model and the preemptive relaxation most earlier work
    analysed (experiment T5). *)

open Resa_core

type t = {
  makespan : int;
  intervals : (int * int) list array;
      (** Per job: disjoint half-open execution intervals, total length
          [p_j], never more than one machine at a time. *)
}

val feasible_by : Instance.t -> deadline:int -> bool
(** Max-flow feasibility: can every job complete by [deadline]? Requires all
    jobs to have [q = 1] ([Invalid_argument] otherwise). *)

val schmidt_feasible : Instance.t -> deadline:int -> bool
(** Schmidt's closed-form condition for semi-identical processors: feasible
    iff for every k, the k longest tasks fit in [∫ min(m(t), k) dt], i.e.
    [Σ_{j<=k} p_(j) <= PC_k(T)]. Equivalent to {!feasible_by} (tested). *)

val optimal : Instance.t -> t
(** Minimal-makespan preemptive schedule. *)

val validate : Instance.t -> t -> bool
(** Independent check of a claimed preemptive schedule: interval lengths sum
    to each [p_j], a job never overlaps itself, and at every instant the
    number of running jobs is within the availability. *)

val lower_bound_gap : Instance.t -> int * int
(** [(preemptive_opt, lsrc)] — the two ends of the non-preemption gap, for
    convenience in experiments. *)
