(** LSRC — list scheduling with resource constraints under reservations.

    The algorithm of Garey & Graham (1975) as analysed in the paper: keep a
    priority list of ready jobs and never leave the machine idle while the
    some listed job fits. With advance reservations, "fits at time t" means
    the job's whole execution window [\[t, t+p)] fits inside the remaining
    capacity [m − U − running]; feasible starts only open at breakpoints of
    that profile, so an event-driven sweep over breakpoints implements the
    continuous-time greedy exactly (DESIGN.md §1).

    Guarantees reproduced in this repository:
    - no reservations: makespan ≤ (2 − 1/m)·OPT (Theorem 2, appendix);
    - non-increasing reservations: ≤ (2 − 1/m(C_opt))·OPT (Proposition 1);
    - α-restricted reservations: ≤ (2/α)·OPT (Proposition 3);
      and ratios ≥ 2/α − 1 + α/2 are achievable (Proposition 2). *)

open Resa_core

val run : ?priority:Priority.t -> Instance.t -> Schedule.t
(** Schedule every job of the instance. Default priority: {!Priority.Fifo}.
    The result is always feasible ([Schedule.validate] succeeds). *)

val run_order : Instance.t -> int array -> Schedule.t
(** [run_order inst order] with an explicit index permutation. Drives its
    capacity bookkeeping through the mutable {!Timeline} (O(log U) per
    operation). *)

val run_order_reference : Instance.t -> int array -> Schedule.t
(** The original persistent-[Profile] implementation, whose [reserve]
    rebuilds the whole breakpoint array per job (O(n·k) overall). Kept as
    the oracle of the randomized differential suite and as the baseline the
    perf bench measures the timeline speedup against; always produces the
    same schedule as {!run_order}. *)

val decision_times : Instance.t -> Schedule.t -> int list
(** The event times at which the sweep made decisions when producing this
    schedule: 0, job completions and availability breakpoints up to the
    makespan. Exposed for the greediness certificate in tests. *)

val is_greedy : Instance.t -> Schedule.t -> bool
(** Certifies the list-scheduling property used by Lemma 1 of the appendix:
    at no instant could a *not-yet-started* job of the schedule have been
    started earlier than its actual start, given the jobs running and the
    availability at that instant (checked at all decision times). Any
    schedule produced by {!run} satisfies this for its own order. *)
