open Resa_core

type variant = Nfdh | Ffdh

let variant_name = function Nfdh -> "NFDH" | Ffdh -> "FFDH"

(* Shelves are built over jobs sorted by decreasing duration, so the first
   job of each shelf realises the shelf height. *)
type shelf = { mutable width_left : int; mutable members : int list; height : int }

let build variant inst =
  let m = Instance.m inst in
  let order = Priority.order Priority.Lpt inst in
  let shelves = ref [] in
  (* [shelves] kept in reverse creation order. *)
  Array.iter
    (fun i ->
      let j = Instance.job inst i in
      let place s =
        s.width_left <- s.width_left - Job.q j;
        s.members <- i :: s.members
      in
      let created () =
        shelves := { width_left = m - Job.q j; members = [ i ]; height = Job.p j } :: !shelves
      in
      match variant with
      | Nfdh -> (
        match !shelves with
        | current :: _ when current.width_left >= Job.q j -> place current
        | _ -> created ())
      | Ffdh -> (
        (* First fit scans shelves in creation order. *)
        match List.rev !shelves |> List.find_opt (fun s -> s.width_left >= Job.q j) with
        | Some s -> place s
        | None -> created ()))
    order;
  List.rev !shelves

let shelves variant inst = List.map (fun s -> List.rev s.members) (build variant inst)

let run variant inst =
  let n = Instance.n_jobs inst in
  let starts = Array.make n 0 in
  let free = ref (Instance.availability inst) in
  let from = ref 0 in
  List.iter
    (fun s ->
      if s.members <> [] then begin
        (* Stack the whole shelf as one m-wide, height-tall block. *)
        let need = Instance.m inst in
        let t = Option.get (Profile.earliest_fit !free ~from:!from ~dur:s.height ~need) in
        free := Profile.reserve !free ~start:t ~dur:s.height ~need;
        List.iter (fun i -> starts.(i) <- t) s.members;
        from := t + s.height
      end)
    (build variant inst);
  Schedule.make starts
