(** Priority rules for list scheduling.

    A priority rule turns an instance into a permutation of its job indices;
    list algorithms ({!Lsrc}, {!Fcfs}, {!Backfill}) then consider jobs in
    that order. FIFO is the submission order; LPT ("sorting the jobs by
    decreasing durations") is the variant the paper's conclusion singles out
    as a candidate for improving the 2/α upper bound. *)

open Resa_core

type t =
  | Fifo  (** Submission (index) order. *)
  | Lpt  (** Longest processing time first. *)
  | Spt  (** Shortest processing time first. *)
  | Widest_first  (** Decreasing processor requirement. *)
  | Narrowest_first  (** Increasing processor requirement. *)
  | Largest_area_first  (** Decreasing [p·q]. *)
  | Random of int  (** Uniform shuffle from the given seed. *)
  | Explicit of int array  (** A fixed permutation of [0..n-1]. *)

val name : t -> string

val order : t -> Instance.t -> int array
(** The job indices in scheduling order. Ties broken by index, so every rule
    is deterministic. Raises [Invalid_argument] if an [Explicit] array is not
    a permutation of [0..n_jobs-1]. *)

val standard : t list
(** The deterministic rules benchmarked throughout: FIFO, LPT, SPT,
    widest-first, narrowest-first, largest-area-first. *)
