open Resa_core

type t =
  | Fifo
  | Lpt
  | Spt
  | Widest_first
  | Narrowest_first
  | Largest_area_first
  | Random of int
  | Explicit of int array

let name = function
  | Fifo -> "FIFO"
  | Lpt -> "LPT"
  | Spt -> "SPT"
  | Widest_first -> "WIDEST"
  | Narrowest_first -> "NARROWEST"
  | Largest_area_first -> "AREA"
  | Random seed -> Printf.sprintf "RANDOM(%d)" seed
  | Explicit _ -> "EXPLICIT"

let identity n = Array.init n (fun i -> i)

let by_key inst key =
  let n = Instance.n_jobs inst in
  let idx = identity n in
  let cmp a b =
    let c = Int.compare (key (Instance.job inst a)) (key (Instance.job inst b)) in
    if c <> 0 then c else Int.compare a b
  in
  Array.sort cmp idx;
  idx

let is_permutation n a =
  Array.length a = n
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun i ->
      if i < 0 || i >= n || seen.(i) then false
      else begin
        seen.(i) <- true;
        true
      end)
    a

let order t inst =
  let n = Instance.n_jobs inst in
  match t with
  | Fifo -> identity n
  | Lpt -> by_key inst (fun j -> -Job.p j)
  | Spt -> by_key inst (fun j -> Job.p j)
  | Widest_first -> by_key inst (fun j -> -Job.q j)
  | Narrowest_first -> by_key inst (fun j -> Job.q j)
  | Largest_area_first -> by_key inst (fun j -> -Job.area j)
  | Random seed ->
    let idx = identity n in
    Prng.shuffle (Prng.create ~seed) idx;
    idx
  | Explicit a ->
    if not (is_permutation n a) then
      invalid_arg "Priority.order: Explicit array is not a permutation of job indices";
    Array.copy a

let standard = [ Fifo; Lpt; Spt; Widest_first; Narrowest_first; Largest_area_first ]
