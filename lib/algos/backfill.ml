open Resa_core

let conservative_order_reference inst order =
  let n = Instance.n_jobs inst in
  if Array.length order <> n then invalid_arg "Backfill.conservative_order: order length mismatch";
  let starts = Array.make n (-1) in
  let free = ref (Instance.availability inst) in
  Array.iter
    (fun i ->
      let j = Instance.job inst i in
      match Profile.earliest_fit !free ~from:0 ~dur:(Job.p j) ~need:(Job.q j) with
      | None -> assert false
      | Some s ->
        starts.(i) <- s;
        free := Profile.reserve !free ~start:s ~dur:(Job.p j) ~need:(Job.q j))
    order;
  Schedule.make starts

let conservative_order inst order =
  let n = Instance.n_jobs inst in
  if Array.length order <> n then invalid_arg "Backfill.conservative_order: order length mismatch";
  let starts = Array.make n (-1) in
  let free = Timeline.of_profile (Instance.availability inst) in
  Array.iter
    (fun i ->
      let j = Instance.job inst i in
      match Timeline.earliest_fit free ~from:0 ~dur:(Job.p j) ~need:(Job.q j) with
      | None -> assert false
      | Some s ->
        starts.(i) <- s;
        Timeline.reserve free ~start:s ~dur:(Job.p j) ~need:(Job.q j))
    order;
  Schedule.make starts

let conservative ?(priority = Priority.Fifo) inst =
  conservative_order inst (Priority.order priority inst)

let easy_order_reference inst order =
  let n = Instance.n_jobs inst in
  if Array.length order <> n then invalid_arg "Backfill.easy_order: order length mismatch";
  let starts = Array.make n (-1) in
  let free = ref (Instance.availability inst) in
  let fits t i =
    let j = Instance.job inst i in
    Profile.min_on !free ~lo:t ~hi:(t + Job.p j) >= Job.q j
  in
  let start_job t i =
    let j = Instance.job inst i in
    starts.(i) <- t;
    free := Profile.reserve !free ~start:t ~dur:(Job.p j) ~need:(Job.q j)
  in
  let earliest i ~from =
    let j = Instance.job inst i in
    Option.get (Profile.earliest_fit !free ~from ~dur:(Job.p j) ~need:(Job.q j))
  in
  (* Pop the longest startable prefix, then backfill behind the head without
     pushing the head's guaranteed start. *)
  let rec step t = function
    | [] -> ()
    | head :: rest when fits t head ->
      start_job t head;
      step t rest
    | head :: rest ->
      let guaranteed = earliest head ~from:t in
      (* Backfill candidates in queue order; keep the ones that must wait. *)
      let rec backfill = function
        | [] -> []
        | i :: tl ->
          if not (fits t i) then i :: backfill tl
          else begin
            (* Tentatively start i; undo if it pushes the head. *)
            let saved = !free in
            start_job t i;
            if earliest head ~from:t > guaranteed then begin
              free := saved;
              starts.(i) <- -1;
              i :: backfill tl
            end
            else backfill tl
          end
      in
      let rest = backfill rest in
      (match Profile.next_breakpoint_after !free t with
      | Some t' -> step t' (head :: rest)
      | None -> assert false)
  in
  step 0 (Array.to_list order);
  Schedule.make starts

let easy_order inst order =
  let n = Instance.n_jobs inst in
  if Array.length order <> n then invalid_arg "Backfill.easy_order: order length mismatch";
  let starts = Array.make n (-1) in
  let free = Timeline.of_profile (Instance.availability inst) in
  let fits t i =
    let j = Instance.job inst i in
    Job.q j <= Timeline.value_at free t
    && Timeline.min_on free ~lo:t ~hi:(t + Job.p j) >= Job.q j
  in
  let start_job t i =
    let j = Instance.job inst i in
    starts.(i) <- t;
    Timeline.reserve free ~start:t ~dur:(Job.p j) ~need:(Job.q j)
  in
  let undo_start i =
    let j = Instance.job inst i in
    (* Inverse range-add: exact undo of the tentative reservation. *)
    Timeline.change free ~lo:starts.(i) ~hi:(starts.(i) + Job.p j) ~delta:(Job.q j);
    starts.(i) <- -1
  in
  let earliest i ~from =
    let j = Instance.job inst i in
    Option.get (Timeline.earliest_fit free ~from ~dur:(Job.p j) ~need:(Job.q j))
  in
  (* Pop the longest startable prefix, then backfill behind the head without
     pushing the head's guaranteed start. *)
  let rec step t = function
    | [] -> ()
    | head :: rest when fits t head ->
      start_job t head;
      step t rest
    | head :: rest ->
      let guaranteed = earliest head ~from:t in
      (* Backfill candidates in queue order; keep the ones that must wait. *)
      let rec backfill = function
        | [] -> []
        | i :: tl ->
          if not (fits t i) then i :: backfill tl
          else begin
            (* Tentatively start i; undo if it pushes the head. *)
            start_job t i;
            if earliest head ~from:t > guaranteed then begin
              undo_start i;
              i :: backfill tl
            end
            else backfill tl
          end
      in
      let rest = backfill rest in
      (match Timeline.next_breakpoint_after free t with
      | Some t' -> step t' (head :: rest)
      | None -> assert false)
  in
  step 0 (Array.to_list order);
  Schedule.make starts

let easy ?(priority = Priority.Fifo) inst = easy_order inst (Priority.order priority inst)

let no_earlier_job_delayed inst order sched =
  (* Replan each prefix; every job must sit exactly at its earliest fit given
     only its predecessors in the queue. *)
  let free = ref (Instance.availability inst) in
  let ok = ref true in
  Array.iter
    (fun i ->
      let j = Instance.job inst i in
      let s = Schedule.start sched i in
      (match Profile.earliest_fit !free ~from:0 ~dur:(Job.p j) ~need:(Job.q j) with
      | Some e when e = s -> ()
      | _ -> ok := false);
      if !ok then free := Profile.reserve !free ~start:s ~dur:(Job.p j) ~need:(Job.q j))
    order;
  !ok
