open Resa_core

let run_order_reference inst order =
  let n = Instance.n_jobs inst in
  if Array.length order <> n then invalid_arg "Fcfs.run_order: order length mismatch";
  let starts = Array.make n (-1) in
  let free = ref (Instance.availability inst) in
  let frontier = ref 0 in
  Array.iter
    (fun i ->
      let j = Instance.job inst i in
      match Profile.earliest_fit !free ~from:!frontier ~dur:(Job.p j) ~need:(Job.q j) with
      | None -> assert false (* q <= m and the tail capacity is m *)
      | Some s ->
        starts.(i) <- s;
        free := Profile.reserve !free ~start:s ~dur:(Job.p j) ~need:(Job.q j);
        frontier := s)
    order;
  Schedule.make starts

let run_order inst order =
  let n = Instance.n_jobs inst in
  if Array.length order <> n then invalid_arg "Fcfs.run_order: order length mismatch";
  let starts = Array.make n (-1) in
  let free = Timeline.of_profile (Instance.availability inst) in
  let frontier = ref 0 in
  Array.iter
    (fun i ->
      let j = Instance.job inst i in
      match Timeline.earliest_fit free ~from:!frontier ~dur:(Job.p j) ~need:(Job.q j) with
      | None -> assert false (* q <= m and the tail capacity is m *)
      | Some s ->
        starts.(i) <- s;
        Timeline.reserve free ~start:s ~dur:(Job.p j) ~need:(Job.q j);
        frontier := s)
    order;
  Schedule.make starts

let run ?(priority = Priority.Fifo) inst = run_order inst (Priority.order priority inst)

let respects_order inst sched order =
  ignore inst;
  let ok = ref true in
  let prev = ref min_int in
  Array.iter
    (fun i ->
      let s = Schedule.start sched i in
      if s < !prev then ok := false;
      prev := s)
    order;
  !ok
