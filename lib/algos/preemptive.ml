open Resa_flow
open Resa_core

type t = {
  makespan : int;
  intervals : (int * int) list array;
}

let require_sequential inst =
  Array.iter
    (fun j -> if Job.q j <> 1 then invalid_arg "Preemptive: jobs must have q = 1")
    (Instance.jobs inst)

(* Constant-availability segments of [0, deadline). *)
let segments inst ~deadline =
  let avail = Instance.availability inst in
  Profile.fold_segments avail ~init:[] ~f:(fun acc ~lo ~hi ~v ->
      let hi = match hi with None -> deadline | Some h -> min h deadline in
      if lo < deadline && lo < hi && v > 0 then (lo, hi, v) :: acc else acc)
  |> List.rev

(* Jobs -> segments transportation network. Returns (graph, per job the list
   of (edge handle, segment)). *)
let build_network inst ~deadline =
  let n = Instance.n_jobs inst in
  let segs = Array.of_list (segments inst ~deadline) in
  let k = Array.length segs in
  let source = 0 and sink = 1 in
  let job_node i = 2 + i in
  let seg_node s = 2 + n + s in
  let g = Maxflow.create ~n_nodes:(2 + n + k) in
  let job_edges = Array.make n [] in
  for i = 0 to n - 1 do
    ignore (Maxflow.add_edge g ~src:source ~dst:(job_node i) ~cap:(Job.p (Instance.job inst i)));
    Array.iteri
      (fun s (lo, hi, _) ->
        let e = Maxflow.add_edge g ~src:(job_node i) ~dst:(seg_node s) ~cap:(hi - lo) in
        job_edges.(i) <- (e, s) :: job_edges.(i))
      segs
  done;
  Array.iteri
    (fun s (lo, hi, v) -> ignore (Maxflow.add_edge g ~src:(seg_node s) ~dst:sink ~cap:(v * (hi - lo))))
    segs;
  (g, segs, job_edges, source, sink)

let total_work inst = Instance.total_work inst

let feasible_by inst ~deadline =
  require_sequential inst;
  if deadline < 0 then invalid_arg "Preemptive.feasible_by: negative deadline";
  let w = total_work inst in
  if w = 0 then true
  else begin
    let g, _, _, source, sink = build_network inst ~deadline in
    Maxflow.max_flow g ~source ~sink = w
  end

let schmidt_feasible inst ~deadline =
  require_sequential inst;
  if deadline < 0 then invalid_arg "Preemptive.schmidt_feasible: negative deadline";
  let avail = Instance.availability inst in
  let ps =
    Array.map Job.p (Instance.jobs inst) |> fun a ->
    Array.sort (fun x y -> Int.compare y x) a;
    a
  in
  let n = Array.length ps in
  (* PC_k(T) = integral of min(m(t), k) over [0, T). *)
  let pc k =
    if deadline = 0 then 0
    else
      Profile.fold_segments avail ~init:0 ~f:(fun acc ~lo ~hi ~v ->
          let hi = match hi with None -> deadline | Some h -> min h deadline in
          if lo < deadline && lo < hi then acc + (min (max v 0) k * (hi - lo)) else acc)
  in
  let rec check k prefix =
    if k > n then true
    else begin
      let prefix = prefix + ps.(k - 1) in
      prefix <= pc k && check (k + 1) prefix
    end
  in
  check 1 0

(* McNaughton wrap-around inside one segment [lo, hi) with [cap] machines:
   job i receives units.(i) <= hi - lo; fill machine timelines in sequence,
   splitting at the segment end. *)
let wraparound ~lo ~hi units out =
  let len = hi - lo in
  let offset = ref 0 in
  List.iter
    (fun (i, u) ->
      if u > 0 then begin
        let o = !offset mod len in
        if o + u <= len then out.(i) <- (lo + o, lo + o + u) :: out.(i)
        else begin
          out.(i) <- (lo + o, hi) :: out.(i);
          out.(i) <- (lo, lo + o + u - len) :: out.(i)
        end;
        offset := !offset + u
      end)
    units

let extract_schedule inst ~deadline =
  let n = Instance.n_jobs inst in
  let g, segs, job_edges, source, sink = build_network inst ~deadline in
  let flow = Maxflow.max_flow g ~source ~sink in
  if flow <> total_work inst then None
  else begin
    let out = Array.make n [] in
    Array.iteri
      (fun s (lo, hi, _) ->
        let units = ref [] in
        for i = 0 to n - 1 do
          List.iter
            (fun (e, s') -> if s' = s then units := (i, Maxflow.flow_on g e) :: !units)
            job_edges.(i)
        done;
        wraparound ~lo ~hi (List.rev !units) out)
      segs;
    Some (Array.map List.rev out)
  end

let makespan_of intervals =
  Array.fold_left
    (fun acc l -> List.fold_left (fun acc (_, hi) -> max acc hi) acc l)
    0 intervals

let optimal inst =
  require_sequential inst;
  let n = Instance.n_jobs inst in
  if n = 0 then { makespan = 0; intervals = [||] }
  else begin
    (* Binary search the smallest feasible deadline. *)
    let lo = ref 1 in
    let hi = ref (Instance.horizon inst + total_work inst) in
    assert (feasible_by inst ~deadline:!hi);
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if feasible_by inst ~deadline:mid then hi := mid else lo := mid + 1
    done;
    match extract_schedule inst ~deadline:!lo with
    | Some intervals ->
      (* The flow may finish jobs before the deadline; report actual end. *)
      { makespan = makespan_of intervals; intervals }
    | None -> assert false
  end

let validate inst t =
  require_sequential inst;
  let n = Instance.n_jobs inst in
  Array.length t.intervals = n
  && Array.for_all
       (fun l -> List.for_all (fun (lo, hi) -> 0 <= lo && lo < hi) l)
       t.intervals
  &&
  (* Each job: total service p_j, no self-overlap. *)
  let self_ok i =
    let l = List.sort compare t.intervals.(i) in
    let rec disjoint = function
      | (_, h1) :: ((l2, _) :: _ as rest) -> h1 <= l2 && disjoint rest
      | _ -> true
    in
    disjoint l
    && List.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0 l = Job.p (Instance.job inst i)
  in
  let rec all i = i >= n || (self_ok i && all (i + 1)) in
  all 0
  &&
  (* Global capacity: number of running jobs <= availability everywhere. *)
  let deltas = ref [] in
  Array.iter
    (fun l -> List.iter (fun (lo, hi) -> deltas := (lo, 1) :: (hi, -1) :: !deltas) l)
    t.intervals;
  let usage = Profile.of_events ~base:0 !deltas in
  Profile.min_value (Profile.sub (Instance.availability inst) usage) >= 0
  && makespan_of t.intervals <= t.makespan

let lower_bound_gap inst =
  let pre = (optimal inst).makespan in
  let lsrc = Schedule.makespan inst (Lsrc.run inst) in
  (pre, lsrc)
