open Resa_core

type report = {
  schedule : Schedule.t;
  batches : int list list;
  batch_starts : int list;
}

(* Reservations clipped to [t, ∞): parts strictly before t are cut away so
   that a full-machine blocker on [0, t) keeps the instance feasible. *)
let clip_reservations inst t =
  Array.to_list (Instance.reservations inst)
  |> List.filter_map (fun r ->
         if Reservation.stop r <= t then None
         else if Reservation.start r >= t then Some r
         else
           Some
             (Reservation.make ~id:(Reservation.id r) ~start:t ~p:(Reservation.stop r - t)
                ~q:(Reservation.q r)))

let run ?(offline = fun i -> Lsrc.run i) inst ~release =
  let n = Instance.n_jobs inst in
  if Array.length release <> n then invalid_arg "Online.run: release length mismatch";
  Array.iter (fun r -> if r < 0 then invalid_arg "Online.run: negative release date") release;
  let starts = Array.make n (-1) in
  let batches = ref [] and batch_starts = ref [] in
  let scheduled = Array.make n false in
  let remaining = ref n in
  let t = ref 0 in
  while !remaining > 0 do
    let batch = ref [] in
    for i = n - 1 downto 0 do
      if (not scheduled.(i)) && release.(i) <= !t then batch := i :: !batch
    done;
    match !batch with
    | [] ->
      (* Idle until the next arrival. *)
      let next = ref max_int in
      Array.iteri (fun i r -> if not scheduled.(i) && r < !next then next := r) release;
      t := max !next (!t + 1)
    | batch ->
      let ids = batch in
      let jobs = List.map (Instance.job inst) ids in
      let blocker =
        if !t > 0 then [ Reservation.make ~id:(-1) ~start:0 ~p:!t ~q:(Instance.m inst) ] else []
      in
      let sub =
        Instance.create_exn ~m:(Instance.m inst)
          ~jobs:(List.mapi (fun k j -> Job.make ~id:k ~p:(Job.p j) ~q:(Job.q j)) jobs)
          ~reservations:(blocker @ clip_reservations inst !t)
      in
      let sched = offline sub in
      (match Schedule.validate sub sched with
      | Ok () -> ()
      | Error v ->
        invalid_arg
          (Format.asprintf "Online.run: offline algorithm produced an infeasible schedule: %a"
             Schedule.pp_violation v));
      List.iteri
        (fun k i ->
          starts.(i) <- Schedule.start sched k;
          scheduled.(i) <- true;
          decr remaining)
        ids;
      batches := ids :: !batches;
      batch_starts := !t :: !batch_starts;
      t := max (Schedule.makespan sub sched) (!t + 1)
  done;
  {
    schedule = Schedule.make starts;
    batches = List.rev !batches;
    batch_starts = List.rev !batch_starts;
  }
