(** First Come First Serve, without backfilling (paper §2.2).

    Jobs are considered strictly in queue order: each job starts at the
    earliest time that is (a) not before the start of its predecessor in the
    queue and (b) feasible for its whole window against reservations and
    previously placed jobs. A wide job at the head of the queue therefore
    blocks everything behind it — the behaviour whose worst case is ratio m
    (paper §2.2) and which backfilling mitigates. *)

open Resa_core

val run : ?priority:Priority.t -> Instance.t -> Schedule.t
(** Default priority: {!Priority.Fifo} (true submission order). The result
    is always feasible. *)

val run_order : Instance.t -> int array -> Schedule.t
(** Timeline-backed (O(log U) per capacity operation). *)

val run_order_reference : Instance.t -> int array -> Schedule.t
(** Original persistent-[Profile] implementation; differential-test oracle
    and bench baseline. Same schedules as {!run_order}. *)

val respects_order : Instance.t -> Schedule.t -> int array -> bool
(** FCFS invariant: start times are non-decreasing along the queue order. *)
