open Resa_core

let run_order_reference inst order =
  let n = Instance.n_jobs inst in
  if Array.length order <> n then invalid_arg "Lsrc.run_order: order length mismatch";
  let starts = Array.make n (-1) in
  let free = ref (Instance.availability inst) in
  (* Start, in list order, every pending job whose whole window fits at [t];
     returns the still-pending suffix-preserving list. *)
  let rec place_fitting t = function
    | [] -> []
    | i :: rest ->
      let j = Instance.job inst i in
      if Profile.min_on !free ~lo:t ~hi:(t + Job.p j) >= Job.q j then begin
        starts.(i) <- t;
        free := Profile.reserve !free ~start:t ~dur:(Job.p j) ~need:(Job.q j);
        place_fitting t rest
      end
      else i :: place_fitting t rest
  in
  let rec loop t pending =
    match place_fitting t pending with
    | [] -> ()
    | pending ->
      (match Profile.next_breakpoint_after !free t with
      | Some t' -> loop t' pending
      | None ->
        (* Unreachable: past the last breakpoint the capacity is the full
           machine, so every pending job fits (DESIGN.md §1). *)
        assert false)
  in
  loop 0 (Array.to_list order);
  Schedule.make starts

(* Observability counters (RESA_PROF): decision instants visited and jobs
   placed by the production list scheduler. *)
let c_instants = Resa_obs.Prof.counter "lsrc.decision_instants"
let c_placed = Resa_obs.Prof.counter "lsrc.jobs_placed"

let run_order inst order =
  let n = Instance.n_jobs inst in
  if Array.length order <> n then invalid_arg "Lsrc.run_order: order length mismatch";
  let starts = Array.make n (-1) in
  let free = Timeline.of_profile (Instance.availability inst) in
  let pending = Array.copy order in
  let n_pend = ref n in
  (* Start, in list order, every pending job whose whole window fits at [t],
     compacting survivors in place. [cap_now] (capacity at the instant [t])
     bounds every window minimum from above, so jobs wider than it are
     rejected with an integer compare instead of a tree query. *)
  let place_fitting t =
    let cap_now = ref (Timeline.value_at free t) in
    let w = ref 0 in
    for k = 0 to !n_pend - 1 do
      let i = pending.(k) in
      let j = Instance.job inst i in
      let q = Job.q j in
      if q <= !cap_now && Timeline.min_on free ~lo:t ~hi:(t + Job.p j) >= q then begin
        starts.(i) <- t;
        Timeline.reserve free ~start:t ~dur:(Job.p j) ~need:q;
        Resa_obs.Prof.incr c_placed;
        cap_now := !cap_now - q
      end
      else begin
        pending.(!w) <- i;
        incr w
      end
    done;
    n_pend := !w
  in
  let rec loop t =
    Resa_obs.Prof.incr c_instants;
    place_fitting t;
    if !n_pend > 0 then
      match Timeline.next_breakpoint_after free t with
      | Some t' -> loop t'
      | None ->
        (* Unreachable: past the last breakpoint the capacity is the full
           machine, so every pending job fits (DESIGN.md §1). *)
        assert false
  in
  Resa_obs.Prof.with_span ~cat:"algo" "lsrc.run_order" (fun () -> loop 0);
  Schedule.make starts

let run ?(priority = Priority.Fifo) inst = run_order inst (Priority.order priority inst)

let decision_times inst sched =
  let cmax = Schedule.makespan inst sched in
  let avail_bps = Array.to_list (Profile.breakpoints (Instance.availability inst)) in
  let completions =
    List.init (Schedule.n_jobs sched) (fun i -> Schedule.completion inst sched i)
  in
  List.sort_uniq Int.compare
    (List.filter (fun t -> t <= cmax) (0 :: (avail_bps @ completions)))

let is_greedy inst sched =
  match Schedule.validate inst sched with
  | Error _ -> false
  | Ok () ->
    let n = Schedule.n_jobs sched in
    (* Free capacity seen by the scheduler at decision time [t] is the
       availability minus the windows of jobs started at or before [t] —
       jobs started later do not count, they were pending then. Decision
       times are ascending, so one shared timeline swept forward (each
       job's window subtracted exactly once, when the sweep first reaches
       its start) replaces the per-instant profile rebuild over all [n]
       jobs that used to make this check quadratic. The subtracted jobs at
       any prefix use at most what the full (validated) schedule uses, so
       the timeline stays a correct free-capacity function throughout. *)
    let free = Timeline.of_profile (Instance.availability inst) in
    let by_start = Array.init n Fun.id in
    Array.sort (fun a b -> compare (Schedule.start sched a) (Schedule.start sched b)) by_start;
    let next = ref 0 in
    let advance_to t =
      while
        !next < n && Schedule.start sched by_start.(!next) <= t
      do
        let i = by_start.(!next) in
        let s = Schedule.start sched i in
        let j = Instance.job inst i in
        Timeline.change free ~lo:s ~hi:(s + Job.p j) ~delta:(-Job.q j);
        incr next
      done
    in
    (* Maximality: at every decision time, no job that was still pending
       could have had its whole window inserted. *)
    List.for_all
      (fun t ->
        advance_to t;
        let rec jobs_ok i =
          i >= n
          ||
          let s = Schedule.start sched i in
          let j = Instance.job inst i in
          (s <= t || Timeline.min_on free ~lo:t ~hi:(t + Job.p j) < Job.q j)
          && jobs_ok (i + 1)
        in
        jobs_ok 0)
      (decision_times inst sched)
