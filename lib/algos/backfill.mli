(** Backfilling variants (paper §2.2).

    - {e Conservative}: every job, in queue order, is planned at the earliest
      start that delays no previously planned job. Equivalent to inserting
      each job at its earliest fit in the running capacity plan.
    - {e EASY} (aggressive): only the queue head holds a guaranteed start
      ("pull reservation"); any later job may jump the queue if starting it
      now does not push the head's guaranteed start. More aggressive than
      conservative, less than LSRC (which lets anything delay anything, the
      paper's "most aggressive variant"). *)

open Resa_core

val conservative : ?priority:Priority.t -> Instance.t -> Schedule.t
(** Always feasible; satisfies {!no_earlier_job_delayed}. *)

val conservative_order : Instance.t -> int array -> Schedule.t
(** Timeline-backed (O(log U) per capacity operation). *)

val conservative_order_reference : Instance.t -> int array -> Schedule.t
(** Original persistent-[Profile] implementation; differential-test oracle
    and bench baseline. Same schedules as {!conservative_order}. *)

val easy : ?priority:Priority.t -> Instance.t -> Schedule.t
(** Offline emulation of EASY backfilling (all jobs ready at time 0):
    event-driven simulation with head-reservation protection. *)

val easy_order : Instance.t -> int array -> Schedule.t
(** Timeline-backed; the tentative backfill start is undone with an inverse
    range-add instead of restoring a persistent snapshot. *)

val easy_order_reference : Instance.t -> int array -> Schedule.t
(** Original persistent-[Profile] implementation; differential-test oracle
    and bench baseline. Same schedules as {!easy_order}. *)

val no_earlier_job_delayed : Instance.t -> int array -> Schedule.t -> bool
(** Conservative-backfilling certificate: removing any suffix of the queue
    and replanning leaves every remaining start unchanged, i.e. each job got
    the earliest fit given only its predecessors. *)
