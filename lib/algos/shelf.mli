(** Shelf (level) packing algorithms — the paper's "further direction"
    (§5: "heuristics like those based on packing (partition on shelves)").

    Jobs are grouped into shelves: all jobs of a shelf start together, and
    the shelf's height is the longest job it contains. Shelves are stacked in
    time. We implement the two classical level heuristics transposed to
    rigid jobs (height = duration, width = processors):

    - NFDH (next-fit decreasing height): a job opens a new shelf as soon as
      it does not fit in the current one;
    - FFDH (first-fit decreasing height): a job goes to the first shelf with
      enough remaining width.

    Shelf schedules are only defined without reservations; with reservations
    present, the shelves are stacked into the availability profile — each
    shelf starts at the earliest time its full [m]-wide, height-tall window
    fits (a simple reservation-aware extension used as an extra baseline). *)

open Resa_core

type variant = Nfdh | Ffdh

val variant_name : variant -> string

val run : variant -> Instance.t -> Schedule.t
(** Feasible for any instance (reservation-aware stacking as described
    above). *)

val shelves : variant -> Instance.t -> int list list
(** The shelf partition (lists of job indices), before time placement —
    exposed for tests: widths must respect [m], heights are non-increasing
    in LPT order within the construction. *)
