type t = {
  headers : string list;
  width : int;
  mutable rows : string list list; (* reverse order *)
}

let create ~headers = { headers; width = List.length headers; rows = [] }

let add_row t row =
  if List.length row <> t.width then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" t.width (List.length row));
  t.rows <- row :: t.rows

let add_float_row t ?(decimals = 3) row =
  add_row t (List.map (fun v -> Printf.sprintf "%.*f" decimals v) row)

let n_rows t = List.length t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map (fun _ -> 0) t.headers)
      all
  in
  let line row =
    String.concat "  " (List.map2 (fun w cell -> Printf.sprintf "%*s" w cell) widths row)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line t.headers :: sep :: List.map line rows) ^ "\n"

let escape_csv cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let rows = t.headers :: List.rev t.rows in
  String.concat "\n" (List.map (fun row -> String.concat "," (List.map escape_csv row)) rows)
  ^ "\n"
