let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let mu = mean xs in
    List.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 xs
    /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs -> List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

(* Nearest-rank percentile on an already sorted array: O(1). *)
let percentile_of_sorted a ~p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let n = Array.length a in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  a.(max 0 (min (n - 1) (rank - 1)))

let sorted_of_list xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a

type summary = {
  count : int;
  mean : float;
  std : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

let describe xs =
  match xs with
  | [] -> None
  | _ ->
    let a = sorted_of_list xs in
    let n = Array.length a in
    (* Welford's recurrence: mean and second moment in one fold. *)
    let _, mu, m2 =
      Array.fold_left
        (fun (k, mu, m2) x ->
          let k = k + 1 in
          let d = x -. mu in
          let mu = mu +. (d /. float_of_int k) in
          (k, mu, m2 +. (d *. (x -. mu))))
        (0, 0.0, 0.0) a
    in
    Some
      {
        count = n;
        mean = mu;
        std = sqrt (m2 /. float_of_int n);
        min = a.(0);
        p50 = percentile_of_sorted a ~p:50.0;
        p95 = percentile_of_sorted a ~p:95.0;
        max = a.(n - 1);
      }

let percentile xs ~p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ -> percentile_of_sorted (sorted_of_list xs) ~p

let median xs = percentile xs ~p:50.0

let histogram ~bins xs =
  if bins < 1 then invalid_arg "Stats.histogram: bins must be >= 1";
  match xs with
  | [] -> []
  | _ ->
    let lo, hi = min_max xs in
    if hi <= lo then
      (* Degenerate range: all samples coincide, so fabricated empty bins
         beyond the data would be a lie — collapse to one bin. *)
      [ (lo, hi, List.length xs) ]
    else begin
      let width = (hi -. lo) /. float_of_int bins in
      let counts = Array.make bins 0 in
      List.iter
        (fun x ->
          let b = int_of_float ((x -. lo) /. width) in
          let b = max 0 (min (bins - 1) b) in
          counts.(b) <- counts.(b) + 1)
        xs;
      List.init bins (fun b ->
          (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))
    end

module Fsum = struct
  (* Shewchuk's growing expansion, with CPython math.fsum's rounding
     correction: [partials] is a list of non-overlapping floats in
     increasing magnitude whose exact sum is the exact sum of everything
     added so far. Because the invariant characterises the exact value,
     [total] is independent of the order in which terms were added — the
     property the streaming metrics lean on to reproduce the batch path
     bit for bit from completion-ordered records. *)
  type t = { mutable partials : float array; mutable n : int }

  let create () = { partials = Array.make 4 0.0; n = 0 }

  let add t x =
    if not (Float.is_finite x) then invalid_arg "Stats.Fsum.add: non-finite term";
    let x = ref x in
    let i = ref 0 in
    for j = 0 to t.n - 1 do
      let y = t.partials.(j) in
      let lo, hi = if Float.abs !x < Float.abs y then (!x, y) else (y, !x) in
      let s = hi +. lo in
      let err = lo -. (s -. hi) in
      if err <> 0.0 then begin
        t.partials.(!i) <- err;
        incr i
      end;
      x := s
    done;
    if !i = Array.length t.partials then begin
      let b = Array.make (2 * !i) 0.0 in
      Array.blit t.partials 0 b 0 !i;
      t.partials <- b
    end;
    t.partials.(!i) <- !x;
    t.n <- !i + 1

  let total t =
    (* Sum from largest magnitude down, tracking one rounding error term;
       apply CPython's half-way correction against the next partial so the
       result is the exact sum correctly rounded. *)
    if t.n = 0 then 0.0
    else begin
      let i = ref (t.n - 1) in
      let hi = ref t.partials.(!i) in
      let lo = ref 0.0 in
      (try
         while !i > 0 do
           decr i;
           let x = !hi in
           let y = t.partials.(!i) in
           hi := x +. y;
           lo := y -. (!hi -. x);
           if !lo <> 0.0 then raise Exit
         done
       with Exit -> ());
      if !i > 0 && ((!lo < 0.0 && t.partials.(!i - 1) < 0.0) || (!lo > 0.0 && t.partials.(!i - 1) > 0.0))
      then begin
        let y = !lo *. 2.0 in
        let x = !hi +. y in
        if y = x -. !hi then hi := x
      end;
      !hi
    end
end

module P2 = struct
  (* Jain–Chlamtac P² estimator: five markers tracking the running
     min / q/2 / q / (1+q)/2 / max quantile curve with parabolic marker
     adjustment. Constant memory, one comparison pass per observation;
     exact for the first five samples, a heuristic (typically within a few
     relative percent of the empirical quantile on smooth distributions)
     afterwards — the differential suite in test/test_stats.ml pins the
     error against the exact nearest-rank percentile. *)
  type t = {
    q : float; (* target quantile in (0, 1) *)
    h : float array; (* marker heights *)
    pos : float array; (* marker positions (1-based ranks) *)
    np : float array; (* desired positions *)
    dn : float array; (* desired position increments *)
    mutable count : int;
  }

  let create ~q =
    if not (q > 0.0 && q < 1.0) then invalid_arg "Stats.P2.create: q must be in (0, 1)";
    {
      q;
      h = Array.make 5 0.0;
      pos = [| 1.; 2.; 3.; 4.; 5. |];
      np = [| 1.; 1. +. (2. *. q); 1. +. (4. *. q); 3. +. (2. *. q); 5. |];
      dn = [| 0.; q /. 2.; q; (1. +. q) /. 2.; 1. |];
      count = 0;
    }

  let count t = t.count

  let parabolic t i d =
    let h = t.h and pos = t.pos in
    h.(i)
    +. d
       /. (pos.(i + 1) -. pos.(i - 1))
       *. (((pos.(i) -. pos.(i - 1) +. d) *. (h.(i + 1) -. h.(i)) /. (pos.(i + 1) -. pos.(i)))
          +. ((pos.(i + 1) -. pos.(i) -. d) *. (h.(i) -. h.(i - 1)) /. (pos.(i) -. pos.(i - 1))))

  let linear t i d =
    t.h.(i) +. (d *. (t.h.(i + int_of_float d) -. t.h.(i)) /. (t.pos.(i + int_of_float d) -. t.pos.(i)))

  let add t x =
    if t.count < 5 then begin
      t.h.(t.count) <- x;
      t.count <- t.count + 1;
      if t.count = 5 then Array.sort Float.compare t.h
    end
    else begin
      t.count <- t.count + 1;
      let k =
        if x < t.h.(0) then begin
          t.h.(0) <- x;
          0
        end
        else if x >= t.h.(4) then begin
          t.h.(4) <- x;
          3
        end
        else begin
          let k = ref 0 in
          for i = 1 to 3 do
            if x >= t.h.(i) then k := i
          done;
          !k
        end
      in
      for i = k + 1 to 4 do
        t.pos.(i) <- t.pos.(i) +. 1.
      done;
      for i = 0 to 4 do
        t.np.(i) <- t.np.(i) +. t.dn.(i)
      done;
      for i = 1 to 3 do
        let d = t.np.(i) -. t.pos.(i) in
        if
          (d >= 1.0 && t.pos.(i + 1) -. t.pos.(i) > 1.0)
          || (d <= -1.0 && t.pos.(i - 1) -. t.pos.(i) < -1.0)
        then begin
          let d = if d >= 0.0 then 1.0 else -1.0 in
          let h' = parabolic t i d in
          let h' = if t.h.(i - 1) < h' && h' < t.h.(i + 1) then h' else linear t i d in
          t.h.(i) <- h';
          t.pos.(i) <- t.pos.(i) +. d
        end
      done
    end

  let value t =
    if t.count = 0 then Float.nan
    else if t.count <= 5 then begin
      (* Exact nearest-rank on the buffered prefix. *)
      let a = Array.sub t.h 0 t.count in
      Array.sort Float.compare a;
      percentile_of_sorted a ~p:(t.q *. 100.0)
    end
    else t.h.(2)
end

let summary_line xs =
  match describe xs with
  | None -> "n=0"
  | Some d ->
    Printf.sprintf "n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f max=%.3f" d.count d.mean d.std
      d.min d.p50 d.max

(* --- terminal sparklines -------------------------------------------------- *)

let spark_levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                      "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?(width = 0) xs =
  let xs = List.filter Float.is_finite xs in
  let xs =
    let n = List.length xs in
    if width > 0 && n > width then
      (* Keep the most recent [width] samples: a live dashboard scrolls. *)
      List.filteri (fun i _ -> i >= n - width) xs
    else xs
  in
  match xs with
  | [] -> ""
  | xs ->
    let lo = List.fold_left Float.min Float.infinity xs in
    let hi = List.fold_left Float.max Float.neg_infinity xs in
    let span = hi -. lo in
    let b = Buffer.create (3 * List.length xs) in
    List.iter
      (fun v ->
        let i =
          if span <= 0.0 then 0
          else
            let i = int_of_float ((v -. lo) /. span *. 7.0 +. 0.5) in
            if i < 0 then 0 else if i > 7 then 7 else i
        in
        Buffer.add_string b spark_levels.(i))
      xs;
    Buffer.contents b
