let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let mu = mean xs in
    List.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 xs
    /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs -> List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

let percentile xs ~p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ ->
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
    let sorted = List.sort Float.compare xs in
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let median xs = percentile xs ~p:50.0

let histogram ~bins xs =
  if bins < 1 then invalid_arg "Stats.histogram: bins must be >= 1";
  match xs with
  | [] -> []
  | _ ->
    let lo, hi = min_max xs in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    List.iter
      (fun x ->
        let b = int_of_float ((x -. lo) /. width) in
        let b = max 0 (min (bins - 1) b) in
        counts.(b) <- counts.(b) + 1)
      xs;
    List.init bins (fun b ->
        (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))

let summary_line xs =
  match xs with
  | [] -> "n=0"
  | _ ->
    let lo, hi = min_max xs in
    Printf.sprintf "n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f max=%.3f" (List.length xs)
      (mean xs) (stddev xs) lo (median xs) hi
