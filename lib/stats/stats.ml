let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let mu = mean xs in
    List.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 xs
    /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs -> List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

(* Nearest-rank percentile on an already sorted array: O(1). *)
let percentile_of_sorted a ~p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let n = Array.length a in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  a.(max 0 (min (n - 1) (rank - 1)))

let sorted_of_list xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a

type summary = {
  count : int;
  mean : float;
  std : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

let describe xs =
  match xs with
  | [] -> None
  | _ ->
    let a = sorted_of_list xs in
    let n = Array.length a in
    (* Welford's recurrence: mean and second moment in one fold. *)
    let _, mu, m2 =
      Array.fold_left
        (fun (k, mu, m2) x ->
          let k = k + 1 in
          let d = x -. mu in
          let mu = mu +. (d /. float_of_int k) in
          (k, mu, m2 +. (d *. (x -. mu))))
        (0, 0.0, 0.0) a
    in
    Some
      {
        count = n;
        mean = mu;
        std = sqrt (m2 /. float_of_int n);
        min = a.(0);
        p50 = percentile_of_sorted a ~p:50.0;
        p95 = percentile_of_sorted a ~p:95.0;
        max = a.(n - 1);
      }

let percentile xs ~p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ -> percentile_of_sorted (sorted_of_list xs) ~p

let median xs = percentile xs ~p:50.0

let histogram ~bins xs =
  if bins < 1 then invalid_arg "Stats.histogram: bins must be >= 1";
  match xs with
  | [] -> []
  | _ ->
    let lo, hi = min_max xs in
    if hi <= lo then
      (* Degenerate range: all samples coincide, so fabricated empty bins
         beyond the data would be a lie — collapse to one bin. *)
      [ (lo, hi, List.length xs) ]
    else begin
      let width = (hi -. lo) /. float_of_int bins in
      let counts = Array.make bins 0 in
      List.iter
        (fun x ->
          let b = int_of_float ((x -. lo) /. width) in
          let b = max 0 (min (bins - 1) b) in
          counts.(b) <- counts.(b) + 1)
        xs;
      List.init bins (fun b ->
          (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))
    end

let summary_line xs =
  match describe xs with
  | None -> "n=0"
  | Some d ->
    Printf.sprintf "n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f max=%.3f" d.count d.mean d.std
      d.min d.p50 d.max
