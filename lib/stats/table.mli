(** Aligned ASCII tables and CSV output for the experiment harness. *)

type t

val create : headers:string list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] on a row of the wrong width. *)

val add_float_row : t -> ?decimals:int -> float list -> unit

val render : t -> string
(** Column-aligned text, header underlined. *)

val to_csv : t -> string

val n_rows : t -> int
