(** Small statistics toolkit used by the benchmark harness. *)

val mean : float list -> float
(** 0 on the empty list. *)

val variance : float list -> float
(** Population variance; 0 on lists shorter than 2. *)

val stddev : float list -> float

val min_max : float list -> float * float
(** Raises [Invalid_argument] on the empty list. *)

type summary = {
  count : int;
  mean : float;
  std : float;  (** Population standard deviation (Welford). *)
  min : float;
  p50 : float;  (** Nearest-rank median. *)
  p95 : float;  (** Nearest-rank 95th percentile. *)
  max : float;
}

val describe : float list -> summary option
(** Full summary in a single pass: one sort plus one fold. [None] on the
    empty list. {!summary_line}, {!median} and {!percentile} are thin
    wrappers over the same sorted-array machinery. *)

val percentile : float list -> p:float -> float
(** Nearest-rank percentile, [p ∈ [0, 100]]. Raises on the empty list.
    Sorts into an array once; the rank lookup itself is O(1). *)

val median : float list -> float

val histogram : bins:int -> float list -> (float * float * int) list
(** Equal-width bins [(lo, hi, count)] spanning the data range. When the
    range is degenerate (all samples equal) the result collapses to the
    single bin [(lo, lo, n)] instead of reporting [bins - 1] fabricated
    empty ranges beyond the data. *)

val summary_line : float list -> string
(** "n=… mean=… std=… min=… p50=… max=…" *)
