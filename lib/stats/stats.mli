(** Small statistics toolkit used by the benchmark harness. *)

val mean : float list -> float
(** 0 on the empty list. *)

val variance : float list -> float
(** Population variance; 0 on lists shorter than 2. *)

val stddev : float list -> float

val min_max : float list -> float * float
(** Raises [Invalid_argument] on the empty list. *)

type summary = {
  count : int;
  mean : float;
  std : float;  (** Population standard deviation (Welford). *)
  min : float;
  p50 : float;  (** Nearest-rank median. *)
  p95 : float;  (** Nearest-rank 95th percentile. *)
  max : float;
}

val describe : float list -> summary option
(** Full summary in a single pass: one sort plus one fold. [None] on the
    empty list. {!summary_line}, {!median} and {!percentile} are thin
    wrappers over the same sorted-array machinery. *)

val percentile : float list -> p:float -> float
(** Nearest-rank percentile, [p ∈ [0, 100]]. Raises on the empty list.
    Sorts into an array once; the rank lookup itself is O(1). *)

val median : float list -> float

val histogram : bins:int -> float list -> (float * float * int) list
(** Equal-width bins [(lo, hi, count)] spanning the data range. When the
    range is degenerate (all samples equal) the result collapses to the
    single bin [(lo, lo, n)] instead of reporting [bins - 1] fabricated
    empty ranges beyond the data. *)

val summary_line : float list -> string
(** "n=… mean=… std=… min=… p50=… max=…" *)

(** {2 Streaming accumulators}

    Constant-memory accumulators for the trace-replay path, where the
    sample list never materialises. *)

(** Exactly-rounded float summation (Shewchuk expansions, the algorithm
    behind CPython's [math.fsum]). The returned total is the true real sum
    of the terms rounded once to the nearest double — in particular it is
    {e independent of insertion order}, which is what lets the streaming
    metrics (fed in completion order) reproduce the batch metrics (fed in
    submission order) bit for bit. O(1) amortised per term on well-scaled
    data; worst case O(partials). *)
module Fsum : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  (** Raises [Invalid_argument] on nan/infinite terms. *)

  val total : t -> float
  (** The exact sum, correctly rounded. 0 when no terms were added. *)
end

(** P² (Jain–Chlamtac 1985) streaming quantile estimator: five markers,
    O(1) memory and per-observation time. Exact while [count <= 5] (the
    observations are buffered); afterwards a heuristic whose error on
    smooth distributions is typically well under a percent of the value —
    the differential tests pin it against {!percentile}. Not mergeable. *)
module P2 : sig
  type t

  val create : q:float -> t
  (** Track the [q]-quantile, [q ∈ (0, 1)] exclusive; raises otherwise. *)

  val add : t -> float -> unit
  val count : t -> int

  val value : t -> float
  (** Current estimate; nan before any observation. *)
end

val sparkline : ?width:int -> float list -> string
(** Unicode block-character sparkline (▁ to █), scaled to the samples'
    own min/max; non-finite samples are skipped. [width] (default 0 =
    all) keeps the trailing samples only — what a scrolling dashboard
    wants. "" on the empty list; a flat series renders at the lowest
    level. *)
