(** Small statistics toolkit used by the benchmark harness. *)

val mean : float list -> float
(** 0 on the empty list. *)

val variance : float list -> float
(** Population variance; 0 on lists shorter than 2. *)

val stddev : float list -> float

val min_max : float list -> float * float
(** Raises [Invalid_argument] on the empty list. *)

val percentile : float list -> p:float -> float
(** Nearest-rank percentile, [p ∈ [0, 100]]. Raises on the empty list. *)

val median : float list -> float

val histogram : bins:int -> float list -> (float * float * int) list
(** Equal-width bins [(lo, hi, count)] spanning the data range. *)

val summary_line : float list -> string
(** "n=… mean=… std=… min=… p50=… max=…" *)
