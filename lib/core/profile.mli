(** Piecewise-constant integer step functions over discrete time [\[0, ∞)].

    Profiles represent machine capacities and usages: the availability
    function [m(t) = m − U(t)] of an instance with reservations (paper §3.1),
    the usage [r(t)] of a schedule (appendix), or planning profiles inside
    backfilling algorithms. A profile holds a finite number of breakpoints;
    its last value extends to infinity.

    Values are plain [int]s and may be negative (differences of profiles are
    profiles); operations that interpret the profile as a capacity state
    their requirements explicitly. All functions are persistent. *)

type t

val constant : int -> t
(** The everywhere-[c] profile. *)

val of_steps : (int * int) list -> t
(** [of_steps [(t0,v0); (t1,v1); ...]] is the profile with value [vi] on
    [\[ti, t{i+1})]. Times must be distinct and >= 0; the list is sorted
    internally; the value before the smallest time defaults to the value at
    the smallest time, which must be 0. Raises [Invalid_argument] on an empty
    list, duplicate times, or if no step starts at time 0. *)

val of_events : base:int -> (int * int) list -> t
(** [of_events ~base deltas] builds the sweep profile
    [t ↦ base + Σ {d | (τ,d) ∈ deltas, τ <= t}]. Event times must be >= 0;
    multiple events at one time accumulate. *)

val value_at : t -> int -> int
(** Value at time [x >= 0]. *)

val min_on : t -> lo:int -> hi:int -> int
(** Minimum value over the window [\[lo, hi)], [0 <= lo <= hi]. The empty
    window [lo = hi] yields [max_int], the identity of [min] — the same
    convention {!integral_on} (0) and {!max_on} ([min_int]) follow, so all
    window aggregates treat [lo = hi] uniformly. *)

val max_on : t -> lo:int -> hi:int -> int
(** Maximum over the window; [min_int] on the empty window. *)

val integral_on : t -> lo:int -> hi:int -> int
(** [∫_lo^hi profile], i.e. processor·time area over [\[lo, hi)]. Requires
    [0 <= lo <= hi]; 0 when [lo = hi]. *)

val min_value : t -> int
(** Global minimum (the tail segment counts). *)

val max_value : t -> int

val final_value : t -> int
(** Value of the segment extending to infinity. *)

val last_breakpoint : t -> int
(** Largest breakpoint (0 for a constant profile). *)

val add : t -> t -> t
(** Pointwise sum. *)

val sub : t -> t -> t
(** Pointwise difference. *)

val neg : t -> t

val add_const : t -> int -> t

val change : t -> lo:int -> hi:int -> delta:int -> t
(** Add [delta] on the window [\[lo, hi)]; identity when [lo >= hi]. *)

val reserve : t -> start:int -> dur:int -> need:int -> t
(** [reserve p ~start ~dur ~need] subtracts [need] on [\[start, start+dur)].
    Raises [Invalid_argument] if the resulting profile would be negative
    anywhere in the window (i.e. the window did not have capacity [need]) —
    this is the checked capacity-allocation operation used by schedulers. *)

val earliest_fit : t -> from:int -> dur:int -> need:int -> int option
(** [earliest_fit p ~from ~dur ~need] is the smallest [s >= from] with
    [min_on p ~lo:s ~hi:(s+dur) >= need], if any. [None] only when the tail
    capacity is below [need] and no finite window fits. Feasible starts open
    only at breakpoints, so the result is [from] or a breakpoint.
    Requires [dur >= 1]. *)

val breakpoints : t -> int array
(** The profile's breakpoints, in increasing order, starting with 0. *)

val next_breakpoint_after : t -> int -> int option
(** Smallest breakpoint strictly greater than the given time, if any — the
    next decision instant of event-driven schedulers. *)

val to_steps : t -> (int * int) list
(** Inverse of {!of_steps}: normalized [(time, value)] segments. *)

val fold_segments : t -> init:'a -> f:('a -> lo:int -> hi:int option -> v:int -> 'a) -> 'a
(** Fold over maximal constant segments; [hi = None] for the tail segment. *)

val equal : t -> t -> bool
(** Extensional equality (normalized representations compared). *)

val pp : Format.formatter -> t -> unit
