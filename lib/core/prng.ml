type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let s = bits64 g in
  { state = mix (Int64.logxor s 0xA5A5A5A5A5A5A5A5L) }

let int g ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
    let v = r mod bound in
    if r - v > (max_int lsr 1) - bound + 1 then draw () else v
  in
  draw ()

let int_incl g ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_incl: lo > hi";
  lo + int g ~bound:(hi - lo + 1)

let float g ~bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (bits64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g ~bound:(Array.length a))

let exponential g ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = 1.0 -. float g ~bound:1.0 in
  -.mean *. log u

let log_uniform_int g ~lo ~hi =
  if lo < 1 || lo > hi then invalid_arg "Prng.log_uniform_int: need 1 <= lo <= hi";
  if lo = hi then lo
  else begin
    let llo = log (Stdlib.float_of_int lo) and lhi = log (Stdlib.float_of_int (hi + 1)) in
    let x = exp (llo +. float g ~bound:(lhi -. llo)) in
    let v = int_of_float x in
    max lo (min hi v)
  end
