(** Plain-text instance files.

    A tiny line-oriented format used by the CLI and the examples:

    {v
    # comment
    m 8
    job 5 2        # duration processors
    res 4 3 6      # start duration processors
    v}

    Jobs and reservations are numbered in order of appearance. *)

val to_string : Instance.t -> string

val of_string : string -> (Instance.t, string) result
(** Errors carry 1-based line numbers. *)

val read_file : string -> (Instance.t, string) result

val write_file : string -> Instance.t -> unit
