(** ASCII Gantt charts.

    The scheduling model does not assign jobs to specific processors
    (allocation is non-contiguous, paper §2.1); for display we compute a
    concrete processor assignment greedily — always possible for a feasible
    schedule — and draw one row per processor, one column per time unit
    (sampled when the makespan exceeds [width]).

    Legend: ['#'] reservation, ['.'] idle, letters/digits cycle over jobs. *)

val job_char : int -> char
(** Deterministic display character for job index [i]. *)

val assign_processors : Instance.t -> Schedule.t -> int array array
(** [assign_processors inst s] returns, for each job index, the sorted list
    of processors (in [0..m-1]) it occupies. Raises [Invalid_argument] if the
    schedule is infeasible. Reservations are packed from the highest
    processor numbers down, mirroring the paper's figures. *)

val render : ?width:int -> Instance.t -> Schedule.t -> string
(** Multi-line chart, newline-terminated. [width] (default 72) bounds the
    number of time columns. *)

val render_profile : ?width:int -> ?height:int -> Profile.t -> hi:int -> string
(** Bar rendering of a profile over [\[0, hi)] — used to display availability
    functions. *)
