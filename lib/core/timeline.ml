(* Sparse lazy segment tree over [0, size), size a power of two.

   Nodes live in growable parallel arrays; id 0 is the nil sentinel. A node
   is either a uniform region (no children, mn = mx = its value) or an
   internal node with both children. [ad] is the pending range-add already
   reflected in the node's own mn/mx but not yet pushed to its children;
   for uniform nodes it is always folded into mn/mx immediately. Everything
   at or beyond [last_hi] — in particular the whole region the tree has
   never materialised — carries the constant [tail] value, and the universe
   is kept strictly larger than [last_hi] so the tree always contains at
   least one tail-valued position (several descents rely on that to decide
   "no such instant exists" vs "it exists past the horizon"). *)

type t = {
  mutable size : int; (* power of two; root covers [0, size); size > last_hi *)
  mutable root : int;
  mutable tail : int; (* value on [last_hi, ∞) *)
  mutable last_hi : int; (* all changes so far confined to [0, last_hi) *)
  mutable lc : int array;
  mutable rc : int array;
  mutable mn : int array;
  mutable mx : int array;
  mutable ad : int array;
  mutable sm : int array; (* sum of values over the node's whole range *)
  mutable n_nodes : int;
  (* Undo log: packed (lo, hi, delta) triples of every [change] applied while
     at least one checkpoint is outstanding. Rollback replays inverses from
     the top; with no checkpoint outstanding nothing is recorded, so the
     steady-state cost of the log is one branch per mutation. *)
  mutable ulog : int array;
  mutable ulog_len : int; (* in triples *)
  mutable specs : int; (* outstanding checkpoints *)
}

type mark = int

(* [w] is the width of the range the node covers: uniform nodes carry
   sum = value · width so the sum aggregate stays exact without storing
   widths (a node's width is implied by its depth). *)
let new_node t v w =
  let id = t.n_nodes in
  if id = Array.length t.mn then begin
    let cap = 2 * Array.length t.mn in
    let grow a =
      let b = Array.make cap 0 in
      Array.blit a 0 b 0 id;
      b
    in
    t.lc <- grow t.lc;
    t.rc <- grow t.rc;
    t.mn <- grow t.mn;
    t.mx <- grow t.mx;
    t.ad <- grow t.ad;
    t.sm <- grow t.sm
  end;
  t.n_nodes <- id + 1;
  t.lc.(id) <- 0;
  t.rc.(id) <- 0;
  t.mn.(id) <- v;
  t.mx.(id) <- v;
  t.ad.(id) <- 0;
  t.sm.(id) <- v * w;
  id

let create c =
  let t =
    {
      size = 1;
      root = 0;
      tail = c;
      last_hi = 0;
      lc = Array.make 64 0;
      rc = Array.make 64 0;
      mn = Array.make 64 0;
      mx = Array.make 64 0;
      ad = Array.make 64 0;
      sm = Array.make 64 0;
      n_nodes = 1;
      ulog = [||];
      ulog_len = 0;
      specs = 0;
    }
  in
  t.root <- new_node t c 1;
  t

(* [w] is the width of node [v]'s range. *)
let apply_add t v d w =
  t.mn.(v) <- t.mn.(v) + d;
  t.mx.(v) <- t.mx.(v) + d;
  t.ad.(v) <- t.ad.(v) + d;
  t.sm.(v) <- t.sm.(v) + (d * w)

(* [w] is the width of node [v]'s range (children cover w/2 each). *)
let push t v w =
  if t.lc.(v) = 0 then begin
    (* Uniform region: materialise children at its value; the pending add is
       already folded into mn. *)
    let u = t.mn.(v) in
    t.lc.(v) <- new_node t u (w / 2);
    t.rc.(v) <- new_node t u (w / 2);
    t.ad.(v) <- 0
  end
  else if t.ad.(v) <> 0 then begin
    apply_add t t.lc.(v) t.ad.(v) (w / 2);
    apply_add t t.rc.(v) t.ad.(v) (w / 2);
    t.ad.(v) <- 0
  end

let pull t v =
  (* Only called right after [push], so ad.(v) = 0. *)
  t.mn.(v) <- min t.mn.(t.lc.(v)) t.mn.(t.rc.(v));
  t.mx.(v) <- max t.mx.(t.lc.(v)) t.mx.(t.rc.(v));
  t.sm.(v) <- t.sm.(t.lc.(v)) + t.sm.(t.rc.(v))

let ensure t hi =
  while hi > t.size do
    let r = new_node t 0 1 in
    let u = new_node t t.tail t.size in
    t.lc.(r) <- t.root;
    t.rc.(r) <- u;
    t.mn.(r) <- min t.mn.(t.root) t.tail;
    t.mx.(r) <- max t.mx.(t.root) t.tail;
    t.sm.(r) <- t.sm.(t.root) + t.sm.(u);
    t.root <- r;
    t.size <- 2 * t.size
  done

let rec upd t v lo hi qlo qhi d =
  if qlo <= lo && hi <= qhi then apply_add t v d (hi - lo)
  else begin
    push t v (hi - lo);
    let mid = (lo + hi) / 2 in
    if qlo < mid then upd t t.lc.(v) lo mid qlo qhi d;
    if qhi > mid then upd t t.rc.(v) mid hi qlo qhi d;
    pull t v
  end

let rec query t v lo hi qlo qhi ~want_min =
  if qlo <= lo && hi <= qhi then if want_min then t.mn.(v) else t.mx.(v)
  else if t.lc.(v) = 0 then t.mn.(v) (* uniform: mn = mx *)
  else begin
    push t v (hi - lo);
    let mid = (lo + hi) / 2 in
    if qhi <= mid then query t t.lc.(v) lo mid qlo qhi ~want_min
    else if qlo >= mid then query t t.rc.(v) mid hi qlo qhi ~want_min
    else begin
      let a = query t t.lc.(v) lo mid qlo qhi ~want_min in
      let b = query t t.rc.(v) mid hi qlo qhi ~want_min in
      if want_min then min a b else max a b
    end
  end

(* Leftmost position in [qlo, qhi) whose value satisfies the descent's
   predicate; -1 when none. [keep] prunes whole subtrees from (mn, mx). *)
let rec first t v lo hi qlo qhi ~keep =
  if qhi <= lo || hi <= qlo || not (keep t.mn.(v) t.mx.(v)) then -1
  else if t.lc.(v) = 0 then max lo qlo
  else begin
    push t v (hi - lo);
    let mid = (lo + hi) / 2 in
    let p = first t t.lc.(v) lo mid qlo qhi ~keep in
    if p >= 0 then p else first t t.rc.(v) mid hi qlo qhi ~keep
  end

let rec last t v lo hi qlo qhi ~keep =
  if qhi <= lo || hi <= qlo || not (keep t.mn.(v) t.mx.(v)) then -1
  else if t.lc.(v) = 0 then min (hi - 1) (qhi - 1)
  else begin
    push t v (hi - lo);
    let mid = (lo + hi) / 2 in
    let p = last t t.rc.(v) mid hi qlo qhi ~keep in
    if p >= 0 then p else last t t.lc.(v) lo mid qlo qhi ~keep
  end

(* Operation counters for the observability layer (RESA_PROF): a disabled
   counter costs one flag load per call, cheap enough for these hot ops. *)
let c_min_on = Resa_obs.Prof.counter "timeline.min_on"
let c_change = Resa_obs.Prof.counter "timeline.change"
let c_reserve = Resa_obs.Prof.counter "timeline.reserve"
let c_earliest_fit = Resa_obs.Prof.counter "timeline.earliest_fit"
let c_checkpoint = Resa_obs.Prof.counter "timeline.checkpoint"
let c_rollback = Resa_obs.Prof.counter "timeline.rollback"
let c_commit = Resa_obs.Prof.counter "timeline.commit"
let c_undone = Resa_obs.Prof.counter "timeline.changes_undone"

let value_at t x =
  if x < 0 then invalid_arg "Timeline: negative time";
  if x >= t.size then t.tail
  else begin
    let rec go v lo hi =
      if t.lc.(v) = 0 then t.mn.(v)
      else begin
        push t v (hi - lo);
        let mid = (lo + hi) / 2 in
        if x < mid then go t.lc.(v) lo mid else go t.rc.(v) mid hi
      end
    in
    go t.root 0 t.size
  end

let min_on t ~lo ~hi =
  Resa_obs.Prof.incr c_min_on;
  if lo < 0 || lo > hi then invalid_arg "Timeline: bad window";
  if lo = hi then max_int
  else begin
    ensure t hi;
    query t t.root 0 t.size lo hi ~want_min:true
  end

let max_on t ~lo ~hi =
  if lo < 0 || lo > hi then invalid_arg "Timeline: bad window";
  if lo = hi then min_int
  else begin
    ensure t hi;
    query t t.root 0 t.size lo hi ~want_min:false
  end

let log_change t lo hi delta =
  let i = 3 * t.ulog_len in
  if i + 3 > Array.length t.ulog then begin
    let cap = max 24 (2 * Array.length t.ulog) in
    let b = Array.make cap 0 in
    Array.blit t.ulog 0 b 0 i;
    t.ulog <- b
  end;
  t.ulog.(i) <- lo;
  t.ulog.(i + 1) <- hi;
  t.ulog.(i + 2) <- delta;
  t.ulog_len <- t.ulog_len + 1

let change t ~lo ~hi ~delta =
  Resa_obs.Prof.incr c_change;
  if lo < hi && delta <> 0 then begin
    if lo < 0 then invalid_arg "Timeline.change: negative lo";
    (* Strictly past [hi] so at least one tail-valued position stays in
       range (the size > last_hi invariant). *)
    ensure t (hi + 1);
    upd t t.root 0 t.size lo hi delta;
    if hi > t.last_hi then t.last_hi <- hi;
    if t.specs > 0 then log_change t lo hi delta
  end

let checkpoint t =
  Resa_obs.Prof.incr c_checkpoint;
  t.specs <- t.specs + 1;
  t.ulog_len

let check_mark t m name =
  if t.specs = 0 || m < 0 || m > t.ulog_len then
    invalid_arg (name ^ ": stale or non-LIFO mark")

let rollback t m =
  Resa_obs.Prof.incr c_rollback;
  check_mark t m "Timeline.rollback";
  Resa_obs.Prof.add c_undone (t.ulog_len - m);
  for i = t.ulog_len - 1 downto m do
    let j = 3 * i in
    (* The window was [ensure]d when the change was recorded and the universe
       never shrinks, so the inverse add can hit the tree directly. *)
    upd t t.root 0 t.size t.ulog.(j) t.ulog.(j + 1) (-t.ulog.(j + 2))
  done;
  t.ulog_len <- m;
  t.specs <- t.specs - 1;
  if t.specs = 0 then t.ulog_len <- 0

let commit t m =
  Resa_obs.Prof.incr c_commit;
  check_mark t m "Timeline.commit";
  t.specs <- t.specs - 1;
  if t.specs = 0 then t.ulog_len <- 0

let reserve t ~start ~dur ~need =
  Resa_obs.Prof.incr c_reserve;
  if dur < 1 then invalid_arg "Timeline.reserve: dur must be >= 1";
  if need < 0 then invalid_arg "Timeline.reserve: negative need";
  if min_on t ~lo:start ~hi:(start + dur) < need then
    invalid_arg "Timeline.reserve: insufficient capacity in window";
  change t ~lo:start ~hi:(start + dur) ~delta:(-need)

let earliest_fit t ~from ~dur ~need =
  Resa_obs.Prof.incr c_earliest_fit;
  if dur < 1 then invalid_arg "Timeline.earliest_fit: dur must be >= 1";
  if from < 0 then invalid_arg "Timeline.earliest_fit: negative from";
  let rec attempt s =
    ensure t (s + dur);
    match first t t.root 0 t.size s (s + dur) ~keep:(fun mn _ -> mn < need) with
    | -1 -> Some s
    | p -> (
      (* The window is blocked at [p]; the next viable candidate is the first
         later instant with capacity again >= need. Position size-1 carries
         the tail value (size > last_hi), so finding nothing here proves the
         tail is below [need] and no window ever fits. *)
      match first t t.root 0 t.size (p + 1) t.size ~keep:(fun _ mx -> mx >= need) with
      | -1 -> None
      | s' -> attempt s')
  in
  attempt from

let next_breakpoint_after t x =
  if x < 0 then invalid_arg "Timeline: negative time";
  let c = value_at t x in
  if x + 1 >= t.size then None
  else
    match
      first t t.root 0 t.size (x + 1) t.size ~keep:(fun mn mx -> mn <> c || mx <> c)
    with
    | -1 -> None (* constant from x on: [x+1, size) = c and size-1 is tail-valued *)
    | p -> Some p

let last_breakpoint t =
  let c = t.tail in
  match last t t.root 0 t.size 0 t.size ~keep:(fun mn mx -> mn <> c || mx <> c) with
  | -1 -> 0
  | p -> p + 1

let final_value t = t.tail

let iter_chunks_from t ~from ~f =
  if from < 0 then invalid_arg "Timeline.iter_chunks_from: negative from";
  let exception Stop in
  let visit lo hi v = if not (f ~lo ~hi ~v) then raise Stop in
  try
    if from < t.size then begin
      let rec go v lo hi =
        if hi > from then
          if t.lc.(v) = 0 then visit (max lo from) (Some hi) t.mn.(v)
          else begin
            push t v (hi - lo);
            let mid = (lo + hi) / 2 in
            go t.lc.(v) lo mid;
            go t.rc.(v) mid hi
          end
      in
      go t.root 0 t.size
    end;
    visit (max from t.size) None t.tail
  with Stop -> ()

let first_reaching_area t ~from ~area ~cap =
  if from < 0 then invalid_arg "Timeline.first_reaching_area: negative from";
  if area <= 0 then min from cap
  else begin
    (* One root-to-answer descent on the sum aggregate: a subtree of
       non-negative values whose whole sum cannot complete the missing area
       is consumed in O(1) (prefix sums within it stay below the target, so
       the answer cannot sit inside); only subtrees on the accumulation
       frontier are opened. Mixed-sign subtrees are walked to their leaves —
       their prefix sums can overshoot the total — which keeps the result
       exact for arbitrary timelines; capacity timelines are non-negative,
       so the search stays O(log U) there. *)
    let acc = ref 0 and found = ref (-1) in
    let rec go v lo hi =
      if !found < 0 && hi > from && lo < cap then begin
        if t.lc.(v) = 0 then begin
          let value = t.mn.(v) in
          let lo' = if lo > from then lo else from in
          let gained = value * (hi - lo') in
          if value > 0 && !acc + gained >= area then
            found := lo' + ((area - !acc + value - 1) / value)
          else acc := !acc + gained
        end
        else if lo >= from && t.mn.(v) >= 0 && !acc + t.sm.(v) < area then
          acc := !acc + t.sm.(v)
        else begin
          push t v (hi - lo);
          let mid = (lo + hi) / 2 in
          go t.lc.(v) lo mid;
          go t.rc.(v) mid hi
        end
      end
    in
    if from < t.size then go t.root 0 t.size;
    if !found >= 0 then min !found cap
    else begin
      let start = max from t.size in
      if start >= cap || t.tail <= 0 then cap
      else min cap (start + ((area - !acc + t.tail - 1) / t.tail))
    end
  end

let to_profile ?(from = 0) t =
  if from < 0 then invalid_arg "Timeline.to_profile: negative from";
  let acc = ref [] in
  let emit pos v =
    match !acc with
    | (_, v') :: _ when v' = v -> ()
    | _ -> acc := (pos, v) :: !acc
  in
  if from >= t.size then emit 0 t.tail
  else begin
    let rec go v lo hi =
      if hi > from then
        if t.lc.(v) = 0 then emit (max lo from) t.mn.(v)
        else begin
          push t v (hi - lo);
          let mid = (lo + hi) / 2 in
          go t.lc.(v) lo mid;
          go t.rc.(v) mid hi
        end
    in
    go t.root 0 t.size
  end;
  let steps =
    match List.rev !acc with
    | (_, v) :: rest -> (0, v) :: rest (* the first run reaches back to 0 *)
    | [] -> assert false
  in
  Profile.of_steps steps

let node_count t = t.n_nodes

let c_gc = Resa_obs.Prof.counter "timeline.gc"

(* History garbage collection. The committed past of a capacity timeline
   never changes (simulators only mutate and query windows at or after the
   current instant), yet the tree keeps one materialised node chain per
   historic segment forever — a 10M-job replay would grow the node arrays
   without bound. [gc ~upto] rebuilds the tree from the live suffix: the
   result is exact on [upto, ∞) and constant [value_at upto] on [0, upto)
   (the same collapse {!to_profile}'s [~from] performs), and the node
   arrays are reallocated at the live size, returning the dead history to
   the OCaml heap. Cost: O(live segments · log U). *)
let gc t ~upto =
  Resa_obs.Prof.incr c_gc;
  if upto < 0 then invalid_arg "Timeline.gc: negative upto";
  if t.specs > 0 then invalid_arg "Timeline.gc: checkpoint outstanding";
  (* Collect the live suffix before touching the tree. Chunks are tree
     leaves in increasing order; the first one is clamped to [upto] and its
     value — [value_at upto] — becomes the collapsed past. *)
  let segs = ref [] in
  iter_chunks_from t ~from:upto ~f:(fun ~lo ~hi ~v ->
      (match hi with Some hi -> segs := (lo, hi, v) :: !segs | None -> ());
      true);
  let segs = List.rev !segs in
  let tail = t.tail in
  (* Reset to a fresh one-node tree over [0, 1); fresh arrays actually
     release the dead nodes (growing back is amortised doubling). *)
  t.size <- 1;
  t.last_hi <- 0;
  t.n_nodes <- 1;
  t.lc <- Array.make 64 0;
  t.rc <- Array.make 64 0;
  t.mn <- Array.make 64 0;
  t.mx <- Array.make 64 0;
  t.ad <- Array.make 64 0;
  t.sm <- Array.make 64 0;
  t.root <- new_node t tail 1;
  match segs with
  | [] -> () (* constant at or after [upto]: the whole timeline is the tail *)
  | (_, hi0, v0) :: rest ->
    (* The first live chunk's value reaches back to 0. *)
    change t ~lo:0 ~hi:hi0 ~delta:(v0 - tail);
    List.iter (fun (lo, hi, v) -> change t ~lo ~hi ~delta:(v - tail)) rest

let of_profile ?horizon p =
  let tail = Profile.final_value p in
  let t = create tail in
  (match horizon with Some h when h > 0 -> ensure t h | _ -> ());
  Profile.fold_segments p ~init:() ~f:(fun () ~lo ~hi ~v ->
      match hi with
      | Some hi -> change t ~lo ~hi ~delta:(v - tail)
      | None -> () (* final segment: already [tail] everywhere *));
  t

let pp ppf t = Profile.pp ppf (to_profile t)
