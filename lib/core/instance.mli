(** Problem instances of RESASCHEDULING (paper §3.1).

    An instance is a machine count [m], an array of rigid jobs and an array
    of advance reservations. Feasibility of the reservation set
    ([∀t, U(t) <= m]) is checked at construction. RIGIDSCHEDULING (paper §2)
    is the special case with no reservations.

    Jobs are indexed by their position in {!jobs}; schedules are arrays of
    start times parallel to that array. *)

type t

val create :
  m:int -> jobs:Job.t list -> reservations:Reservation.t list -> (t, string) result
(** Checks: [m >= 1]; every job fits the machine ([q <= m]); job ids are
    distinct; reservation ids are distinct; the reservations alone never
    exceed [m] processors. *)

val create_exn : m:int -> jobs:Job.t list -> reservations:Reservation.t list -> t
(** Like {!create}; raises [Invalid_argument] with the error message. *)

val of_sizes : m:int -> ?reservations:(int * int * int) list -> (int * int) list -> t
(** [of_sizes ~m ~reservations:[(start,p,q);...] [(p,q);...]] numbers jobs
    and reservations consecutively from 0 — the convenient literal syntax
    used by tests and examples. Raises on invalid data. *)

val m : t -> int
val n_jobs : t -> int
val n_reservations : t -> int

val job : t -> int -> Job.t
(** [job t i] for [0 <= i < n_jobs t]. *)

val jobs : t -> Job.t array
(** Fresh copy of the job array. *)

val reservations : t -> Reservation.t array
(** Fresh copy, sorted chronologically. *)

val unavailability : t -> Profile.t
(** [U(t)]: processors blocked by reservations at time [t]. *)

val availability : t -> Profile.t
(** [m(t) = m − U(t)], the capacity the scheduler may use. Cached in the
    instance (profiles are persistent), so repeated calls return the same
    value without reallocating. *)

val availability_of : m:int -> reservations:Reservation.t list -> Profile.t
(** [m − U(t)] computed directly from a reservation list, without
    constructing an instance — what streaming consumers (the replay engine,
    incremental metrics) use when no job array ever exists. Agrees with
    {!availability} on [create_exn ~m ~jobs:_ ~reservations]. Performs no
    capacity validation. *)

val total_work : t -> int
(** [W(I) = Σ p_i·q_i] over jobs (reservations excluded). *)

val pmax : t -> int
(** Longest job duration; 0 when there are no jobs. *)

val qmax : t -> int
(** Widest job; 0 when there are no jobs. *)

val umax : t -> int
(** Peak unavailability [max_t U(t)]. *)

val horizon : t -> int
(** End of the last reservation (0 if none) — after this instant the full
    machine is available forever. *)

val alpha_interval : t -> (float * float) option
(** The set of [α] for which the instance belongs to α-RESASCHEDULING is the
    interval [\[qmax/m, 1 − umax/m\]] (∩ (0,1]); [None] when empty. *)

val is_alpha_restricted : t -> alpha:float -> bool
(** [∀t, U(t) <= (1−α)m] and [∀i, q_i <= αm] (paper §4.2). *)

val without_reservations : t -> t
(** Same jobs, empty reservation set. *)

val with_jobs : t -> Job.t list -> t
(** Same machine and reservations, replaced job set (ids renumbered). *)

val pp : Format.formatter -> t -> unit
