type t = { id : int; start : int; p : int; q : int }

let make ~id ~start ~p ~q =
  if start < 0 then invalid_arg "Reservation.make: start must be >= 0";
  if p < 1 then invalid_arg "Reservation.make: p must be >= 1";
  if q < 1 then invalid_arg "Reservation.make: q must be >= 1";
  { id; start; p; q }

let id r = r.id
let start r = r.start
let p r = r.p
let q r = r.q
let stop r = r.start + r.p

let active_at r t = r.start <= t && t < stop r
let overlaps r ~lo ~hi = r.start < hi && lo < stop r

let equal a b = a.id = b.id && a.start = b.start && a.p = b.p && a.q = b.q

let compare a b =
  let c = Int.compare a.start b.start in
  if c <> 0 then c
  else
    let c = Int.compare (stop a) (stop b) in
    if c <> 0 then c
    else
      let c = Int.compare a.q b.q in
      if c <> 0 then c else Int.compare a.id b.id

let pp ppf r = Format.fprintf ppf "R%d[%d,%d)(q=%d)" r.id r.start (stop r) r.q
let to_string r = Format.asprintf "%a" pp r
