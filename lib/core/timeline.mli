(** Mutable capacity timeline: the imperative fast path behind every
    scheduler's free-capacity bookkeeping.

    A timeline represents the same mathematical object as {!Profile.t} — an
    integer-valued step function over discrete time [\[0, ∞)] whose last
    value extends to infinity — but stores it in a sparse lazy segment tree
    over a fixed power-of-two breakpoint universe [\[0, size)] (grown by
    root-doubling when an operation touches later instants). Every mutation
    and query is a single O(log U) tree walk with no allocation beyond node
    materialisation, versus the O(k) whole-array rebuild that
    [Profile.change]/[Profile.reserve] pay per job; [U] is the universe
    size, so [log U <= 63] always and ≈ 20 for realistic horizons.

    Semantics are kept exactly aligned with [Profile] — [min_on], [reserve],
    [change], [earliest_fit], [next_breakpoint_after] and [last_breakpoint]
    return bit-identical results to the persistent versions applied to the
    same operation history (enforced by the randomized differential suite in
    [test/test_timeline.ml]) — so schedulers can switch their hot loops to a
    timeline while validation code keeps consuming [Profile.t] through
    {!to_profile}.

    Timelines are single-owner mutable state: queries may propagate lazy
    range-adds internally, so sharing one value across concurrent consumers
    is not supported. *)

type t

val create : int -> t
(** [create c] is the everywhere-[c] timeline. *)

val of_profile : ?horizon:int -> Profile.t -> t
(** Import a profile. [horizon] pre-sizes the breakpoint universe (it still
    grows on demand); useful when the caller knows the schedule's end. *)

val to_profile : ?from:int -> t -> Profile.t
(** Export the current state as a normalized persistent profile. With
    [~from:t], the past is collapsed: the result is constant at
    [value_at t] on [\[0, t\]] and exact afterwards — the cheap "forward
    view" handed to simulator policies, whose decisions never look back. *)

val value_at : t -> int -> int
(** Value at time [x >= 0]. *)

val min_on : t -> lo:int -> hi:int -> int
(** Minimum over [\[lo, hi)], [0 <= lo <= hi]; [max_int] (the identity of
    [min]) on the empty window — same convention as [Profile.min_on]. *)

val max_on : t -> lo:int -> hi:int -> int
(** Maximum over the window; [min_int] on the empty window. *)

val change : t -> lo:int -> hi:int -> delta:int -> unit
(** Add [delta] on [\[lo, hi)]; no-op when [lo >= hi] or [delta = 0].
    Raises [Invalid_argument] on negative [lo]. *)

val reserve : t -> start:int -> dur:int -> need:int -> unit
(** Subtract [need] on [\[start, start+dur)] after checking the window has
    capacity [need] everywhere; raises [Invalid_argument] otherwise, leaving
    the timeline unchanged. The checked allocation used by schedulers; undo
    a reservation with [change ~delta:need] (exact inverse). *)

val earliest_fit : t -> from:int -> dur:int -> need:int -> int option
(** Smallest [s >= from] with [min_on ~lo:s ~hi:(s+dur) >= need], found by
    alternating two tree descents (leftmost value [< need] in the candidate
    window / leftmost value [>= need] after the blocker). [None] exactly
    when the tail value is below [need]. Requires [dur >= 1]. *)

(** {2 Speculation}

    A checkpoint opens an undo scope: every {!change} (and hence every
    {!reserve}) applied while at least one checkpoint is outstanding is
    recorded in an internal log, and {!rollback} replays exact inverses —
    O(ops · log U) to speculate and retract, independent of the timeline's
    size. This is the primitive behind trial backfills (EASY) and replans
    (conservative): reserve tentatively, inspect the consequences, keep or
    retract.

    Checkpoints nest and must be resolved strictly LIFO: the innermost
    outstanding mark must be rolled back or committed first ([rollback] and
    [commit] raise [Invalid_argument] on a stale or out-of-order mark where
    detectable). [commit] keeps the speculated changes but merely closes the
    scope — an enclosing checkpoint still undoes them on its own rollback.
    With no checkpoint outstanding the log is empty and mutations pay a
    single extra branch. *)

type mark
(** An open undo scope, as returned by {!checkpoint}. *)

val checkpoint : t -> mark
(** Open an undo scope at the current state. *)

val rollback : t -> mark -> unit
(** Undo every change recorded since the mark (inverse range-adds, newest
    first) and close the scope. *)

val commit : t -> mark -> unit
(** Close the scope keeping all changes since the mark. *)

val final_value : t -> int
(** Value of the tail segment extending to infinity — O(1), same as
    [Profile.final_value] on the normalized profile. Range changes are
    confined to finite windows, so the tail never moves. *)

val iter_chunks_from : t -> from:int -> f:(lo:int -> hi:int option -> v:int -> bool) -> unit
(** Visit constant-value chunks covering [\[from, ∞)] in increasing order,
    in one in-order tree traversal (amortized O(chunks + log U), versus one
    O(log U) descent per segment when walking {!next_breakpoint_after}).
    Chunks are tree leaves, not maximal runs: adjacent chunks may carry the
    same value. The last callback gets [hi = None] (the tail). Return
    [false] from [f] to stop early. The accumulating scans of the exact
    solver's lower bounds are the intended consumer. *)

val first_reaching_area : t -> from:int -> area:int -> cap:int -> int
(** Smallest [C >= from] with [Σ_{x ∈ [from, C)} value(x) >= area], computed
    in one descent on an internal sum aggregate (O(log U) on non-negative
    timelines: a subtree whose total cannot complete the missing area is
    consumed in O(1)). Interpolates inside positive-valued runs, exactly
    like [Lower_bounds.min_time_with_area] on the matching profile. Returns
    [min cap C]; [cap] both truncates the result and bounds the walk, and is
    returned whenever the target is never reached (non-positive tail).
    [area <= 0] yields [min from cap]. *)

val gc : t -> upto:int -> unit
(** History garbage collection. The committed past of a capacity timeline
    never changes — schedulers only mutate and query windows at or after
    the current instant — so [gc t ~upto] rebuilds the tree from the live
    suffix alone: the result is exact on [\[upto, ∞)], constant
    [value_at t upto] on [\[0, upto)] (the same collapse {!to_profile}
    performs with [~from]), and the node arrays are reallocated at the live
    size, returning the accumulated history to the OCaml heap. Every query
    or mutation whose window lies at or after [upto] behaves exactly as
    before the call. Cost: O(live segments · log U). Raises
    [Invalid_argument] when a checkpoint is outstanding (the undo log
    records absolute windows) or [upto < 0]. *)

val node_count : t -> int
(** Materialised tree nodes (monotone between {!gc} calls) — the memory
    footprint driver a long replay watches. *)

val next_breakpoint_after : t -> int -> int option
(** Smallest instant [> t] where the value changes, if any — agrees with
    [Profile.next_breakpoint_after] on the normalized profile. *)

val last_breakpoint : t -> int
(** Start of the final constant segment (0 for a constant timeline). *)

val pp : Format.formatter -> t -> unit
