type t = {
  m : int;
  jobs : Job.t array;
  reservations : Reservation.t array; (* sorted by Reservation.compare *)
  unavail : Profile.t; (* cached U(t) *)
  avail : Profile.t; (* cached m − U(t): availability is on every hot path *)
}

let build_unavail reservations =
  let deltas =
    Array.fold_left
      (fun acc r -> (Reservation.start r, Reservation.q r) :: (Reservation.stop r, -Reservation.q r) :: acc)
      [] reservations
  in
  Profile.of_events ~base:0 deltas

let distinct_ids ids =
  let sorted = List.sort Int.compare ids in
  let rec ok = function
    | a :: (b :: _ as rest) -> a <> b && ok rest
    | _ -> true
  in
  ok sorted

let availability_of ~m ~reservations =
  let unavail = build_unavail (Array.of_list reservations) in
  Profile.add_const (Profile.neg unavail) m

let create ~m ~jobs ~reservations =
  if m < 1 then Error "Instance.create: m must be >= 1"
  else if not (distinct_ids (List.map Job.id jobs)) then Error "Instance.create: duplicate job ids"
  else if not (distinct_ids (List.map Reservation.id reservations)) then
    Error "Instance.create: duplicate reservation ids"
  else
    match List.find_opt (fun j -> Job.q j > m) jobs with
    | Some j -> Error (Format.asprintf "Instance.create: %a requires more than m=%d processors" Job.pp j m)
    | None ->
      let reservations = Array.of_list reservations in
      Array.sort Reservation.compare reservations;
      let unavail = build_unavail reservations in
      if Profile.max_value unavail > m then
        Error "Instance.create: reservations exceed machine capacity"
      else
        let avail = Profile.add_const (Profile.neg unavail) m in
        Ok { m; jobs = Array.of_list jobs; reservations; unavail; avail }

let create_exn ~m ~jobs ~reservations =
  match create ~m ~jobs ~reservations with Ok t -> t | Error msg -> invalid_arg msg

let of_sizes ~m ?(reservations = []) sizes =
  let jobs = List.mapi (fun i (p, q) -> Job.make ~id:i ~p ~q) sizes in
  let reservations = List.mapi (fun i (start, p, q) -> Reservation.make ~id:i ~start ~p ~q) reservations in
  create_exn ~m ~jobs ~reservations

let m t = t.m
let n_jobs t = Array.length t.jobs
let n_reservations t = Array.length t.reservations
let job t i = t.jobs.(i)
let jobs t = Array.copy t.jobs
let reservations t = Array.copy t.reservations
let unavailability t = t.unavail
let availability t = t.avail
let total_work t = Array.fold_left (fun acc j -> acc + Job.area j) 0 t.jobs
let pmax t = Array.fold_left (fun acc j -> max acc (Job.p j)) 0 t.jobs
let qmax t = Array.fold_left (fun acc j -> max acc (Job.q j)) 0 t.jobs
let umax t = max 0 (Profile.max_value t.unavail)

let horizon t =
  Array.fold_left (fun acc r -> max acc (Reservation.stop r)) 0 t.reservations

let alpha_interval t =
  let fm = float_of_int t.m in
  let lo = if n_jobs t = 0 then 0. else float_of_int (qmax t) /. fm in
  let hi = 1. -. (float_of_int (umax t) /. fm) in
  if lo <= hi && hi > 0. then Some (max lo epsilon_float, hi) else None

let is_alpha_restricted t ~alpha =
  alpha > 0. && alpha <= 1.
  && float_of_int (qmax t) <= (alpha *. float_of_int t.m) +. 1e-9
  && float_of_int (umax t) <= ((1. -. alpha) *. float_of_int t.m) +. 1e-9

let without_reservations t =
  {
    m = t.m;
    jobs = Array.copy t.jobs;
    reservations = [||];
    unavail = Profile.constant 0;
    avail = Profile.constant t.m;
  }

let with_jobs t jobs =
  let jobs = List.mapi (fun i j -> Job.make ~id:i ~p:(Job.p j) ~q:(Job.q j)) jobs in
  { t with jobs = Array.of_list jobs }

let pp ppf t =
  Format.fprintf ppf "@[<v>instance: m=%d, %d jobs, %d reservations@," t.m (n_jobs t) (n_reservations t);
  Format.fprintf ppf "jobs: @[<hov>%a@]@," (Format.pp_print_seq ~pp_sep:Format.pp_print_space Job.pp)
    (Array.to_seq t.jobs);
  if Array.length t.reservations > 0 then
    Format.fprintf ppf "reservations: @[<hov>%a@]@,"
      (Format.pp_print_seq ~pp_sep:Format.pp_print_space Reservation.pp)
      (Array.to_seq t.reservations);
  Format.fprintf ppf "@]"
