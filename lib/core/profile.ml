type t = {
  times : int array; (* strictly increasing, times.(0) = 0 *)
  caps : int array;  (* caps.(i) on [times.(i), times.(i+1)), last to infinity *)
}

(* Invariant: adjacent caps differ (normal form), |times| = |caps| >= 1. *)

let normalize times caps =
  let n = Array.length times in
  let out_t = Array.make n 0 and out_c = Array.make n 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if !k = 0 || caps.(i) <> out_c.(!k - 1) then begin
      out_t.(!k) <- times.(i);
      out_c.(!k) <- caps.(i);
      incr k
    end
  done;
  { times = Array.sub out_t 0 !k; caps = Array.sub out_c 0 !k }

let constant c = { times = [| 0 |]; caps = [| c |] }

let of_steps steps =
  match steps with
  | [] -> invalid_arg "Profile.of_steps: empty list"
  | _ ->
    let a = Array.of_list steps in
    Array.sort (fun (t1, _) (t2, _) -> Int.compare t1 t2) a;
    let n = Array.length a in
    let times = Array.map fst a and caps = Array.map snd a in
    if times.(0) <> 0 then invalid_arg "Profile.of_steps: first step must start at time 0";
    for i = 1 to n - 1 do
      if times.(i) = times.(i - 1) then invalid_arg "Profile.of_steps: duplicate times"
    done;
    normalize times caps

let of_events ~base deltas =
  match deltas with
  | [] -> constant base
  | _ ->
    let a = Array.of_list deltas in
    Array.sort (fun (t1, _) (t2, _) -> Int.compare t1 t2) a;
    if fst a.(0) < 0 then invalid_arg "Profile.of_events: negative event time";
    (* Accumulate deltas, merging simultaneous events. *)
    let times = ref [] and caps = ref [] in
    let cur = ref base in
    if fst a.(0) > 0 then begin
      times := [ 0 ];
      caps := [ base ]
    end;
    let i = ref 0 in
    let n = Array.length a in
    while !i < n do
      let t = fst a.(!i) in
      while !i < n && fst a.(!i) = t do
        cur := !cur + snd a.(!i);
        incr i
      done;
      times := t :: !times;
      caps := !cur :: !caps
    done;
    let times = Array.of_list (List.rev !times) and caps = Array.of_list (List.rev !caps) in
    normalize times caps

let segment_index p x =
  (* Largest i with times.(i) <= x; requires x >= 0. *)
  if x < 0 then invalid_arg "Profile: negative time";
  let lo = ref 0 and hi = ref (Array.length p.times - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if p.times.(mid) <= x then lo := mid else hi := mid - 1
  done;
  !lo

let value_at p x = p.caps.(segment_index p x)

let seg_hi p i = if i + 1 < Array.length p.times then Some p.times.(i + 1) else None

let fold_window p ~lo ~hi ~init ~f =
  (* Fold [f acc seg_lo seg_hi v] over segment pieces intersecting [lo, hi);
     the empty window [lo = hi] folds nothing. *)
  if lo < 0 || lo > hi then invalid_arg "Profile: bad window";
  if lo = hi then init
  else
  let i0 = segment_index p lo in
  let rec go acc i =
    if i >= Array.length p.times || p.times.(i) >= hi then acc
    else
      let slo = max lo p.times.(i) in
      let shi = match seg_hi p i with None -> hi | Some t -> min hi t in
      go (f acc slo shi p.caps.(i)) (i + 1)
  in
  go init i0

let min_on p ~lo ~hi = fold_window p ~lo ~hi ~init:max_int ~f:(fun acc _ _ v -> min acc v)
let max_on p ~lo ~hi = fold_window p ~lo ~hi ~init:min_int ~f:(fun acc _ _ v -> max acc v)

let integral_on p ~lo ~hi =
  fold_window p ~lo ~hi ~init:0 ~f:(fun acc slo shi v -> acc + (v * (shi - slo)))

let min_value p = Array.fold_left min max_int p.caps
let max_value p = Array.fold_left max min_int p.caps
let final_value p = p.caps.(Array.length p.caps - 1)
let last_breakpoint p = p.times.(Array.length p.times - 1)

let merge f a b =
  (* Pointwise combination via merged breakpoints. *)
  let na = Array.length a.times and nb = Array.length b.times in
  let times = Array.make (na + nb) 0 and caps = Array.make (na + nb) 0 in
  let k = ref 0 and i = ref 0 and j = ref 0 in
  while !i < na || !j < nb do
    let t =
      match (!i < na, !j < nb) with
      | true, true -> min a.times.(!i) b.times.(!j)
      | true, false -> a.times.(!i)
      | false, true -> b.times.(!j)
      | false, false -> assert false
    in
    if !i < na && a.times.(!i) = t then incr i;
    if !j < nb && b.times.(!j) = t then incr j;
    times.(!k) <- t;
    caps.(!k) <- f a.caps.(max 0 (!i - 1)) b.caps.(max 0 (!j - 1));
    incr k
  done;
  normalize (Array.sub times 0 !k) (Array.sub caps 0 !k)

let add a b = merge ( + ) a b
let sub a b = merge ( - ) a b
let map f p = normalize p.times (Array.map f p.caps)
let neg p = map (fun v -> -v) p
let add_const p c = map (fun v -> v + c) p

let change p ~lo ~hi ~delta =
  if lo >= hi || delta = 0 then p
  else begin
    if lo < 0 then invalid_arg "Profile.change: negative lo";
    let window = of_events ~base:0 [ (lo, delta); (hi, -delta) ] in
    add p window
  end

let reserve p ~start ~dur ~need =
  if dur < 1 then invalid_arg "Profile.reserve: dur must be >= 1";
  if need < 0 then invalid_arg "Profile.reserve: negative need";
  if min_on p ~lo:start ~hi:(start + dur) < need then
    invalid_arg "Profile.reserve: insufficient capacity in window";
  change p ~lo:start ~hi:(start + dur) ~delta:(-need)

let earliest_fit p ~from ~dur ~need =
  if dur < 1 then invalid_arg "Profile.earliest_fit: dur must be >= 1";
  if from < 0 then invalid_arg "Profile.earliest_fit: negative from";
  let n = Array.length p.times in
  (* Candidate starts are [from] and breakpoints; on failure inside the
     window, jump past the blocking segment. *)
  let rec attempt s =
    let i0 = segment_index p s in
    let rec check i =
      if i >= n || p.times.(i) >= s + dur then Some s
      else if p.caps.(i) >= need then check (i + 1)
      else if i + 1 >= n then None (* blocking tail segment: no window ever fits *)
      else attempt p.times.(i + 1)
    in
    check i0
  in
  attempt from

let breakpoints p = Array.copy p.times

let next_breakpoint_after p t =
  let n = Array.length p.times in
  let rec search lo hi =
    if lo >= hi then if lo < n then Some p.times.(lo) else None
    else
      let mid = (lo + hi) / 2 in
      if p.times.(mid) <= t then search (mid + 1) hi else search lo mid
  in
  search 0 n

let to_steps p = Array.to_list (Array.init (Array.length p.times) (fun i -> (p.times.(i), p.caps.(i))))

let fold_segments p ~init ~f =
  let acc = ref init in
  for i = 0 to Array.length p.times - 1 do
    acc := f !acc ~lo:p.times.(i) ~hi:(seg_hi p i) ~v:p.caps.(i)
  done;
  !acc

let equal a b = a.times = b.times && a.caps = b.caps

let pp ppf p =
  Format.fprintf ppf "@[<h>";
  Array.iteri
    (fun i t ->
      if i > 0 then Format.fprintf ppf " ";
      match seg_hi p i with
      | Some hi -> Format.fprintf ppf "[%d,%d)=%d" t hi p.caps.(i)
      | None -> Format.fprintf ppf "[%d,inf)=%d" t p.caps.(i))
    p.times;
  Format.fprintf ppf "@]"
