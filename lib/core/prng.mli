(** Deterministic pseudo-random number generator (SplitMix64).

    All randomised code in this repository draws from this generator so that
    every experiment, test and benchmark is reproducible from a single seed,
    independently of the OCaml standard library's [Random] state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    independent of the subsequent outputs of [g]; used to hand disjoint
    randomness to sub-components. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int g ~bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_incl : t -> lo:int -> hi:int -> int
(** [int_incl g ~lo ~hi] is uniform in [\[lo, hi\]]. Requires [lo <= hi]. *)

val float : t -> bound:float -> float
(** [float g ~bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean (> 0). *)

val log_uniform_int : t -> lo:int -> hi:int -> int
(** Integer whose logarithm is uniform over [\[log lo, log hi\]]; the classic
    heavy-tailed runtime model of workload archives. Requires
    [1 <= lo <= hi]. *)
