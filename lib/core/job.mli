(** Rigid parallel jobs.

    A job requires a fixed number [q] of processors for a fixed duration [p]
    (the paper's "parallel tasks model": rigid, non-preemptive,
    non-contiguous). Time is discrete; see DESIGN.md §1. *)

type t = private { id : int; p : int; q : int }
(** [p] is the processing time (>= 1), [q] the number of required
    processors (>= 1). [id] identifies the job inside its instance. *)

val make : id:int -> p:int -> q:int -> t
(** Raises [Invalid_argument] if [p < 1] or [q < 1]. *)

val id : t -> int
val p : t -> int
val q : t -> int

val area : t -> int
(** [area j = p j * q j], the work of the job. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order by [(id, p, q)]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
