let to_string inst =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "m %d\n" (Instance.m inst));
  Array.iter
    (fun j -> Buffer.add_string buf (Printf.sprintf "job %d %d\n" (Job.p j) (Job.q j)))
    (Instance.jobs inst);
  Array.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "res %d %d %d\n" (Reservation.start r) (Reservation.p r)
           (Reservation.q r)))
    (Instance.reservations inst);
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let m = ref None and jobs = ref [] and reservations = ref [] in
  let error = ref None in
  let fail lineno msg = if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno msg) in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' && !error = None then begin
        let tokens = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
        match tokens with
        | [ "m"; v ] -> (
          match int_of_string_opt v with
          | Some v when v >= 1 -> m := Some v
          | _ -> fail lineno "invalid machine count")
        | [ "job"; p; q ] -> (
          match (int_of_string_opt p, int_of_string_opt q) with
          | Some p, Some q when p >= 1 && q >= 1 ->
            jobs := Job.make ~id:(List.length !jobs) ~p ~q :: !jobs
          | _ -> fail lineno "invalid job")
        | [ "res"; start; p; q ] -> (
          match (int_of_string_opt start, int_of_string_opt p, int_of_string_opt q) with
          | Some start, Some p, Some q when start >= 0 && p >= 1 && q >= 1 ->
            reservations :=
              Reservation.make ~id:(List.length !reservations) ~start ~p ~q :: !reservations
          | _ -> fail lineno "invalid reservation")
        | _ -> fail lineno (Printf.sprintf "unrecognised directive %S" line)
      end)
    lines;
  match !error with
  | Some msg -> Error msg
  | None -> (
    match !m with
    | None -> Error "missing 'm <machines>' line"
    | Some m -> Instance.create ~m ~jobs:(List.rev !jobs) ~reservations:(List.rev !reservations))

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let write_file path inst =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string inst))
