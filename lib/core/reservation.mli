(** Advance reservations.

    A reservation blocks [q] processors during the half-open interval
    [\[start, start + p)]. Reservations are fixed input data: the scheduler
    must work around them (paper §3.1). *)

type t = private { id : int; start : int; p : int; q : int }

val make : id:int -> start:int -> p:int -> q:int -> t
(** Raises [Invalid_argument] if [start < 0], [p < 1] or [q < 1]. *)

val id : t -> int
val start : t -> int
val p : t -> int
val q : t -> int

val stop : t -> int
(** [stop r = start r + p r], the first instant after the reservation. *)

val active_at : t -> int -> bool
(** [active_at r t] iff [start r <= t < stop r]. *)

val overlaps : t -> lo:int -> hi:int -> bool
(** Whether the reservation intersects the half-open window [\[lo, hi)]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Order by [(start, stop, q, id)] — chronological sweep order. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
