type t = { starts : int array }

type violation =
  | Length_mismatch of { expected : int; got : int }
  | Negative_start of { job : int; start : int }
  | Overload of { time : int; used : int; capacity : int }

let make starts = { starts = Array.copy starts }
let starts s = Array.copy s.starts
let start s i = s.starts.(i)
let n_jobs s = Array.length s.starts

let completion inst s i = s.starts.(i) + Job.p (Instance.job inst i)

let makespan inst s =
  let n = Array.length s.starts in
  let rec go acc i = if i >= n then acc else go (max acc (completion inst s i)) (i + 1) in
  go 0 0

let usage inst s =
  let deltas = ref [] in
  Array.iteri
    (fun i start ->
      let j = Instance.job inst i in
      deltas := (start, Job.q j) :: (start + Job.p j, -Job.q j) :: !deltas)
    s.starts;
  Profile.of_events ~base:0 !deltas

let validate inst s =
  let n = Instance.n_jobs inst in
  if Array.length s.starts <> n then
    Error (Length_mismatch { expected = n; got = Array.length s.starts })
  else
    let neg = ref None in
    Array.iteri (fun i st -> if st < 0 && !neg = None then neg := Some (i, st)) s.starts;
    match !neg with
    | Some (i, st) -> Error (Negative_start { job = i; start = st })
    | None ->
      let used = usage inst s in
      let avail = Instance.availability inst in
      let slack = Profile.sub avail used in
      if Profile.min_value slack >= 0 then Ok ()
      else
        (* Locate the first overload instant for the error report. *)
        let bad =
          Profile.fold_segments slack ~init:None ~f:(fun acc ~lo ~hi:_ ~v ->
              match acc with Some _ -> acc | None -> if v < 0 then Some lo else None)
        in
        let time = Option.get bad in
        Error
          (Overload
             {
               time;
               used = Profile.value_at used time;
               capacity = Profile.value_at avail time;
             })

let is_feasible inst s = Result.is_ok (validate inst s)

let utilization inst s =
  let cmax = makespan inst s in
  if cmax = 0 then 1.0
  else
    let avail_area = Profile.integral_on (Instance.availability inst) ~lo:0 ~hi:cmax in
    if avail_area = 0 then 1.0
    else float_of_int (Instance.total_work inst) /. float_of_int avail_area

let idle_area inst s =
  let cmax = makespan inst s in
  if cmax = 0 then 0
  else Profile.integral_on (Instance.availability inst) ~lo:0 ~hi:cmax - Instance.total_work inst

let running_at inst s time =
  let acc = ref [] in
  for i = Array.length s.starts - 1 downto 0 do
    let st = s.starts.(i) in
    if st <= time && time < st + Job.p (Instance.job inst i) then acc := i :: !acc
  done;
  !acc

let pp ppf s =
  Format.fprintf ppf "@[<hov>[%a]@]"
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Format.pp_print_int)
    (Array.to_seq s.starts)

let pp_violation ppf = function
  | Length_mismatch { expected; got } ->
    Format.fprintf ppf "start array has %d entries, instance has %d jobs" got expected
  | Negative_start { job; start } -> Format.fprintf ppf "job %d starts at negative time %d" job start
  | Overload { time; used; capacity } ->
    Format.fprintf ppf "overload at t=%d: %d processors used, capacity %d" time used capacity
