(** Schedules: one start time per job of an instance.

    [starts.(i)] is the start time σ_i of [Instance.job inst i]. A schedule
    is feasible when at every instant the jobs running concurrently use at
    most [m − U(t)] processors (paper §3.1). *)

type t

type violation =
  | Length_mismatch of { expected : int; got : int }
      (** The start array does not have one entry per job. *)
  | Negative_start of { job : int; start : int }
  | Overload of { time : int; used : int; capacity : int }
      (** At [time], running jobs use [used] > [capacity] processors. *)

val make : int array -> t
(** The array is copied. *)

val starts : t -> int array
(** Fresh copy of the start times. *)

val start : t -> int -> int
val n_jobs : t -> int

val completion : Instance.t -> t -> int -> int
(** [completion inst s i = start s i + p_i]. *)

val makespan : Instance.t -> t -> int
(** [max_i (σ_i + p_i)]; 0 for an empty job set. *)

val usage : Instance.t -> t -> Profile.t
(** [r(t)]: processors used by jobs (reservations excluded) — the quantity
    analysed in the paper's appendix. *)

val validate : Instance.t -> t -> (unit, violation) result
(** Full feasibility check against the instance's availability. *)

val is_feasible : Instance.t -> t -> bool

val utilization : Instance.t -> t -> float
(** Fraction of the *available* processor·time area [∫ (m − U)] actually used
    by jobs over [\[0, makespan)]; 1.0 means no available processor was ever
    idle. Returns 1.0 for an empty schedule. *)

val idle_area : Instance.t -> t -> int
(** Available-but-idle processor·time over [\[0, makespan)]. *)

val running_at : Instance.t -> t -> int -> int list
(** Indices of jobs running at a given time (the set I_t of the paper). *)

val pp : Format.formatter -> t -> unit

val pp_violation : Format.formatter -> violation -> unit
