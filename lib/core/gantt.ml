let job_chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

let job_char i = job_chars.[i mod String.length job_chars]

(* Tasks to place, merging jobs (packed from processor 0 up) and
   reservations (packed from processor m-1 down). *)
type piece = { start : int; stop : int; need : int; from_top : bool; index : int }

let assign_processors inst sched =
  (match Schedule.validate inst sched with
  | Ok () -> ()
  | Error v -> invalid_arg (Format.asprintf "Gantt: infeasible schedule: %a" Schedule.pp_violation v));
  let m = Instance.m inst in
  let pieces = ref [] in
  Array.iteri
    (fun i r ->
      pieces :=
        { start = Reservation.start r; stop = Reservation.stop r; need = Reservation.q r;
          from_top = true; index = -i - 1 }
        :: !pieces)
    (Instance.reservations inst);
  for i = 0 to Instance.n_jobs inst - 1 do
    let j = Instance.job inst i in
    let s = Schedule.start sched i in
    pieces := { start = s; stop = s + Job.p j; need = Job.q j; from_top = false; index = i } :: !pieces
  done;
  let pieces = Array.of_list !pieces in
  (* Sweep chronologically; ties: reservations first so they grab the top. *)
  Array.sort
    (fun a b ->
      let c = Int.compare a.start b.start in
      if c <> 0 then c else Bool.compare b.from_top a.from_top)
    pieces;
  let busy_until = Array.make m 0 in
  let out = Array.make (Instance.n_jobs inst) [||] in
  Array.iter
    (fun piece ->
      let free = ref [] in
      (* Collect free processors, ordered according to packing direction. *)
      if piece.from_top then
        for proc = 0 to m - 1 do
          if busy_until.(proc) <= piece.start then free := proc :: !free
        done
      else
        for proc = m - 1 downto 0 do
          if busy_until.(proc) <= piece.start then free := proc :: !free
        done;
      let chosen = Array.make piece.need 0 in
      let rec take k = function
        | _ when k = piece.need -> ()
        | [] -> assert false (* feasibility guarantees enough free processors *)
        | proc :: rest ->
          chosen.(k) <- proc;
          busy_until.(proc) <- piece.stop;
          take (k + 1) rest
      in
      take 0 !free;
      Array.sort Int.compare chosen;
      if not piece.from_top then out.(piece.index) <- chosen)
    pieces;
  out

let render ?(width = 72) inst sched =
  let m = Instance.m inst in
  let cmax = max (Schedule.makespan inst sched) (Instance.horizon inst) in
  let buf = Buffer.create 1024 in
  if cmax = 0 then Buffer.add_string buf "(empty schedule)\n"
  else begin
    let cols = min width cmax in
    let time_of_col c = c * cmax / cols in
    let grid = Array.make_matrix m cols '.' in
    (* Reservations: recompute a top-down packing consistent with
       assign_processors by replaying the same sweep. *)
    let assignment = assign_processors inst sched in
    let paint procs lo hi ch =
      for c = 0 to cols - 1 do
        let t = time_of_col c in
        if lo <= t && t < hi then Array.iter (fun proc -> grid.(proc).(c) <- ch) procs
      done
    in
    (* Jobs. *)
    Array.iteri
      (fun i procs ->
        let j = Instance.job inst i in
        let s = Schedule.start sched i in
        paint procs s (s + Job.p j) (job_char i))
      assignment;
    (* Reservations: we do not keep their assignment; repaint via a second
       sweep using remaining cells. Simpler: recompute piece placement for
       reservations only, from the top, against job occupancy per column. *)
    Array.iter
      (fun r ->
        let lo = Reservation.start r and hi = Reservation.stop r in
        for c = 0 to cols - 1 do
          let t = time_of_col c in
          if lo <= t && t < hi then begin
            let placed = ref 0 in
            let proc = ref 0 in
            while !placed < Reservation.q r && !proc < m do
              if grid.(!proc).(c) = '.' then begin
                grid.(!proc).(c) <- '#';
                incr placed
              end;
              incr proc
            done
          end
        done)
      (Instance.reservations inst);
    (* Header ruler. *)
    Buffer.add_string buf (Printf.sprintf "t=0 .. %d (%d col%s)\n" cmax cols (if cols > 1 then "s" else ""));
    for proc = 0 to m - 1 do
      Buffer.add_string buf (Printf.sprintf "%3d|" proc);
      Buffer.add_string buf (String.init cols (fun c -> grid.(proc).(c)));
      Buffer.add_char buf '\n'
    done
  end;
  Buffer.contents buf

let render_profile ?(width = 72) ?(height = 12) profile ~hi =
  let buf = Buffer.create 256 in
  if hi <= 0 then Buffer.add_string buf "(empty window)\n"
  else begin
    let cols = min width hi in
    let vmax = max 1 (Profile.max_on profile ~lo:0 ~hi) in
    let rows = min height vmax in
    let sample c = Profile.value_at profile (c * hi / cols) in
    for row = rows - 1 downto 0 do
      let threshold = (row + 1) * vmax / rows in
      Buffer.add_string buf (Printf.sprintf "%4d|" threshold);
      for c = 0 to cols - 1 do
        Buffer.add_char buf (if sample c >= threshold then '*' else ' ')
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (Printf.sprintf "    +%s t=0..%d\n" (String.make cols '-') hi)
  end;
  Buffer.contents buf
