type t = { id : int; p : int; q : int }

let make ~id ~p ~q =
  if p < 1 then invalid_arg "Job.make: p must be >= 1";
  if q < 1 then invalid_arg "Job.make: q must be >= 1";
  { id; p; q }

let id j = j.id
let p j = j.p
let q j = j.q
let area j = j.p * j.q

let equal a b = a.id = b.id && a.p = b.p && a.q = b.q

let compare a b =
  let c = Int.compare a.id b.id in
  if c <> 0 then c
  else
    let c = Int.compare a.p b.p in
    if c <> 0 then c else Int.compare a.q b.q

let pp ppf j = Format.fprintf ppf "J%d(p=%d,q=%d)" j.id j.p j.q
let to_string j = Format.asprintf "%a" pp j
