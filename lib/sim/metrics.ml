open Resa_core
module Stats = Resa_stats.Stats

type summary = {
  n : int;
  makespan : int;
  mean_wait : float;
  max_wait : int;
  mean_slowdown : float;
  mean_bounded_slowdown : float;
  utilization : float;
}

type job_row = {
  id : int;
  job_number : int;
  submit : int;
  start : int;
  wait : int;
  finish : int;
  p : int;
  q : int;
  slowdown : float;
  bounded_slowdown : float;
  provenance : string;
}

let wait_times (trace : Simulator.trace) =
  List.map (fun (r : Simulator.record) -> r.start - r.submit) trace.records

let per_job ?(bound = 10) ?provenance ?job_numbers (trace : Simulator.trace) =
  let provenance = match provenance with Some f -> f | None -> fun _ -> "" in
  let number =
    match job_numbers with Some a -> fun id -> a.(id) | None -> fun id -> id
  in
  List.map
    (fun (r : Simulator.record) ->
      let p = Job.p r.job and q = Job.q r.job in
      let wait = r.start - r.submit in
      {
        id = Job.id r.job;
        job_number = number (Job.id r.job);
        submit = r.submit;
        start = r.start;
        wait;
        finish = r.start + p;
        p;
        q;
        slowdown = float_of_int (wait + p) /. float_of_int p;
        bounded_slowdown = Float.max 1.0 (float_of_int (wait + p) /. float_of_int (max p bound));
        provenance = provenance (Job.id r.job);
      })
    trace.records

let per_job_csv ?run rows =
  let b = Buffer.create (64 * (List.length rows + 1)) in
  let run_col = match run with Some _ -> "run," | None -> "" in
  Buffer.add_string b
    (run_col ^ "job,job_number,submit,start,wait,finish,p,q,slowdown,bounded_slowdown,provenance\n");
  List.iter
    (fun r ->
      (match run with Some name -> Buffer.add_string b (name ^ ",") | None -> ());
      Buffer.add_string b
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d,%.6g,%.6g,%s\n" r.id r.job_number r.submit
           r.start r.wait r.finish r.p r.q r.slowdown r.bounded_slowdown r.provenance))
    rows;
  Buffer.contents b

let empty_summary =
  (* Degenerate on purpose: means over zero jobs are set to their neutral
     values and utilization — work over zero elapsed time — to [nan]. *)
  {
    n = 0;
    makespan = 0;
    mean_wait = 0.;
    max_wait = 0;
    mean_slowdown = 1.;
    mean_bounded_slowdown = 1.;
    utilization = Float.nan;
  }

(* Shared accumulation kernel for the batch and streaming paths. Waits and
   work areas are summed in exact integer arithmetic; slowdown sums use the
   exactly-rounded [Stats.Fsum], whose total is independent of insertion
   order — that is what makes the streaming summary (records observed in
   start order) bit-identical to the batch one (records in submission
   order). *)
type acc = {
  bound : int;
  avail : Profile.t Lazy.t; (* m − U(t), for the utilization denominator *)
  mutable n : int;
  mutable makespan : int;
  mutable wait_sum : int;
  mutable max_wait : int;
  mutable work : int;
  slow : Stats.Fsum.t;
  bslow : Stats.Fsum.t;
}

let acc_create ~bound ~m ~reservations =
  {
    bound;
    avail = lazy (Instance.availability_of ~m ~reservations);
    n = 0;
    makespan = 0;
    wait_sum = 0;
    max_wait = 0;
    work = 0;
    slow = Stats.Fsum.create ();
    bslow = Stats.Fsum.create ();
  }

let acc_observe a (r : Simulator.record) =
  let p = Job.p r.job and q = Job.q r.job in
  let wait = r.start - r.submit in
  a.n <- a.n + 1;
  if r.start + p > a.makespan then a.makespan <- r.start + p;
  a.wait_sum <- a.wait_sum + wait;
  if wait > a.max_wait then a.max_wait <- wait;
  a.work <- a.work + (p * q);
  Stats.Fsum.add a.slow (float_of_int (wait + p) /. float_of_int p);
  Stats.Fsum.add a.bslow
    (Float.max 1.0 (float_of_int (wait + p) /. float_of_int (max p a.bound)))

let acc_summary a =
  if a.n = 0 then empty_summary
  else begin
    let fn = float_of_int a.n in
    let utilization =
      (* [Schedule.utilization] verbatim, without rebuilding the schedule:
         work over available area on [0, makespan). *)
      if a.makespan = 0 then 1.0
      else
        let avail_area = Profile.integral_on (Lazy.force a.avail) ~lo:0 ~hi:a.makespan in
        if avail_area = 0 then 1.0 else float_of_int a.work /. float_of_int avail_area
    in
    {
      n = a.n;
      makespan = a.makespan;
      mean_wait = float_of_int a.wait_sum /. fn;
      max_wait = a.max_wait;
      mean_slowdown = Stats.Fsum.total a.slow /. fn;
      mean_bounded_slowdown = Stats.Fsum.total a.bslow /. fn;
      utilization;
    }
  end

let summarize ?(bound = 10) (trace : Simulator.trace) =
  let a = acc_create ~bound ~m:trace.m ~reservations:trace.reservations in
  List.iter (acc_observe a) trace.records;
  let s = acc_summary a in
  (* The trace's makespan is definitionally max (start + p); keep using it
     so a summary never disagrees with its trace. *)
  if s.n = 0 then s else { s with makespan = trace.makespan }

module Stream = struct
  type t = { a : acc; wait_p50 : Stats.P2.t; wait_p95 : Stats.P2.t }

  let create ?(bound = 10) ~m ~reservations () =
    {
      a = acc_create ~bound ~m ~reservations;
      wait_p50 = Stats.P2.create ~q:0.5;
      wait_p95 = Stats.P2.create ~q:0.95;
    }

  let observe t r =
    acc_observe t.a r;
    let wait = float_of_int (r.Simulator.start - r.Simulator.submit) in
    Stats.P2.add t.wait_p50 wait;
    Stats.P2.add t.wait_p95 wait

  let count t = t.a.n
  let summary t = acc_summary t.a
  let wait_p50 t = Stats.P2.value t.wait_p50
  let wait_p95 t = Stats.P2.value t.wait_p95
end

let pp_summary ppf (s : summary) =
  Format.fprintf ppf
    "n=%d Cmax=%d wait(mean=%.1f,max=%d) slowdown(mean=%.2f,bounded=%.2f) util=%.3f" s.n
    s.makespan s.mean_wait s.max_wait s.mean_slowdown s.mean_bounded_slowdown s.utilization

let header =
  Printf.sprintf "%-8s %6s %10s %8s %8s %10s %6s" "policy" "Cmax" "mean_wait" "max_wait"
    "slowdn" "bnd_slowdn" "util"

let row ~name (s : summary) =
  Printf.sprintf "%-8s %6d %10.1f %8d %8.2f %10.2f %6.3f" name s.makespan s.mean_wait s.max_wait
    s.mean_slowdown s.mean_bounded_slowdown s.utilization
