open Resa_core

type summary = {
  n : int;
  makespan : int;
  mean_wait : float;
  max_wait : int;
  mean_slowdown : float;
  mean_bounded_slowdown : float;
  utilization : float;
}

let wait_times (trace : Simulator.trace) =
  List.map (fun (r : Simulator.record) -> r.start - r.submit) trace.records

let summarize ?(bound = 10) (trace : Simulator.trace) =
  let n = List.length trace.records in
  if n = 0 then
    {
      n = 0;
      makespan = 0;
      mean_wait = 0.;
      max_wait = 0;
      mean_slowdown = 1.;
      mean_bounded_slowdown = 1.;
      utilization = 1.;
    }
  else begin
    let waits = wait_times trace in
    let fsum = List.fold_left ( +. ) 0.0 in
    let mean_wait = fsum (List.map float_of_int waits) /. float_of_int n in
    let max_wait = List.fold_left max 0 waits in
    let slowdowns =
      List.map
        (fun (r : Simulator.record) ->
          float_of_int (r.start - r.submit + Job.p r.job) /. float_of_int (Job.p r.job))
        trace.records
    in
    let bounded =
      List.map
        (fun (r : Simulator.record) ->
          let denom = max (Job.p r.job) bound in
          Float.max 1.0 (float_of_int (r.start - r.submit + Job.p r.job) /. float_of_int denom))
        trace.records
    in
    let inst, sched = Simulator.to_offline trace in
    {
      n;
      makespan = trace.makespan;
      mean_wait;
      max_wait;
      mean_slowdown = fsum slowdowns /. float_of_int n;
      mean_bounded_slowdown = fsum bounded /. float_of_int n;
      utilization = Schedule.utilization inst sched;
    }
  end

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d Cmax=%d wait(mean=%.1f,max=%d) slowdown(mean=%.2f,bounded=%.2f) util=%.3f" s.n
    s.makespan s.mean_wait s.max_wait s.mean_slowdown s.mean_bounded_slowdown s.utilization

let header =
  Printf.sprintf "%-8s %6s %10s %8s %8s %10s %6s" "policy" "Cmax" "mean_wait" "max_wait"
    "slowdn" "bnd_slowdn" "util"

let row ~name s =
  Printf.sprintf "%-8s %6d %10.1f %8d %8.2f %10.2f %6.3f" name s.makespan s.mean_wait s.max_wait
    s.mean_slowdown s.mean_bounded_slowdown s.utilization
