open Resa_core

type summary = {
  n : int;
  makespan : int;
  mean_wait : float;
  max_wait : int;
  mean_slowdown : float;
  mean_bounded_slowdown : float;
  utilization : float;
}

type job_row = {
  id : int;
  submit : int;
  start : int;
  wait : int;
  finish : int;
  p : int;
  q : int;
  slowdown : float;
  bounded_slowdown : float;
  provenance : string;
}

let wait_times (trace : Simulator.trace) =
  List.map (fun (r : Simulator.record) -> r.start - r.submit) trace.records

let per_job ?(bound = 10) ?provenance (trace : Simulator.trace) =
  let provenance = match provenance with Some f -> f | None -> fun _ -> "" in
  List.map
    (fun (r : Simulator.record) ->
      let p = Job.p r.job and q = Job.q r.job in
      let wait = r.start - r.submit in
      {
        id = Job.id r.job;
        submit = r.submit;
        start = r.start;
        wait;
        finish = r.start + p;
        p;
        q;
        slowdown = float_of_int (wait + p) /. float_of_int p;
        bounded_slowdown = Float.max 1.0 (float_of_int (wait + p) /. float_of_int (max p bound));
        provenance = provenance (Job.id r.job);
      })
    trace.records

let per_job_csv ?run rows =
  let b = Buffer.create (64 * (List.length rows + 1)) in
  let run_col = match run with Some _ -> "run," | None -> "" in
  Buffer.add_string b
    (run_col ^ "job,submit,start,wait,finish,p,q,slowdown,bounded_slowdown,provenance\n");
  List.iter
    (fun r ->
      (match run with Some name -> Buffer.add_string b (name ^ ",") | None -> ());
      Buffer.add_string b
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%.6g,%.6g,%s\n" r.id r.submit r.start r.wait
           r.finish r.p r.q r.slowdown r.bounded_slowdown r.provenance))
    rows;
  Buffer.contents b

let summarize ?(bound = 10) (trace : Simulator.trace) =
  let n = List.length trace.records in
  if n = 0 then
    (* Degenerate on purpose: means over zero jobs are set to their neutral
       values and utilization — work over zero elapsed time — to [nan]. *)
    {
      n = 0;
      makespan = 0;
      mean_wait = 0.;
      max_wait = 0;
      mean_slowdown = 1.;
      mean_bounded_slowdown = 1.;
      utilization = Float.nan;
    }
  else begin
    let rows = per_job ~bound trace in
    let fsum = List.fold_left ( +. ) 0.0 in
    let mean_wait = fsum (List.map (fun r -> float_of_int r.wait) rows) /. float_of_int n in
    let max_wait = List.fold_left (fun acc r -> max acc r.wait) 0 rows in
    let inst, sched = Simulator.to_offline trace in
    {
      n;
      makespan = trace.makespan;
      mean_wait;
      max_wait;
      mean_slowdown = fsum (List.map (fun r -> r.slowdown) rows) /. float_of_int n;
      mean_bounded_slowdown = fsum (List.map (fun r -> r.bounded_slowdown) rows) /. float_of_int n;
      utilization = Schedule.utilization inst sched;
    }
  end

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d Cmax=%d wait(mean=%.1f,max=%d) slowdown(mean=%.2f,bounded=%.2f) util=%.3f" s.n
    s.makespan s.mean_wait s.max_wait s.mean_slowdown s.mean_bounded_slowdown s.utilization

let header =
  Printf.sprintf "%-8s %6s %10s %8s %8s %10s %6s" "policy" "Cmax" "mean_wait" "max_wait"
    "slowdn" "bnd_slowdn" "util"

let row ~name s =
  Printf.sprintf "%-8s %6d %10.1f %8d %8.2f %10.2f %6.3f" name s.makespan s.mean_wait s.max_wait
    s.mean_slowdown s.mean_bounded_slowdown s.utilization
