open Resa_core

type t = { tl : Timeline.t; mutable now : int }

let make tl = { tl; now = 0 }
let set_now v t = v.now <- t
let now v = v.now
let value_at v x = Timeline.value_at v.tl x
let min_on v ~lo ~hi = Timeline.min_on v.tl ~lo ~hi
let earliest_fit v ~from ~dur ~need = Timeline.earliest_fit v.tl ~from ~dur ~need
let fits v ~at ~dur ~need = Timeline.min_on v.tl ~lo:at ~hi:(at + dur) >= need
let reserve v ~start ~dur ~need = Timeline.reserve v.tl ~start ~dur ~need
let change v ~lo ~hi ~delta = Timeline.change v.tl ~lo ~hi ~delta

type mark = Timeline.mark

let checkpoint v = Timeline.checkpoint v.tl
let rollback v m = Timeline.rollback v.tl m
let commit v m = Timeline.commit v.tl m

let speculate v f =
  let m = checkpoint v in
  match f () with
  | x ->
    rollback v m;
    x
  | exception e ->
    rollback v m;
    raise e

(* Forward profile by breakpoint iteration: O(k log U) for the k breakpoints
   at or after [now], versus the full materialised-tree walk of
   [Timeline.to_profile] whose cost grows with the whole run's history.
   Collapsing the past to the value at [now] makes the result identical to
   [Timeline.to_profile ~from:(now v)]. *)
let snapshot v =
  let tl = v.tl in
  let rec go acc x =
    match Timeline.next_breakpoint_after tl x with
    | None -> List.rev acc
    | Some b -> go ((b, Timeline.value_at tl b) :: acc) b
  in
  Profile.of_steps ((0, Timeline.value_at tl v.now) :: go [] v.now)
