open Resa_core

type t = {
  mutable front : Job.t list;
  mutable back : Job.t list; (* physically the last cons cell of [front]; [] iff empty *)
  mutable len : int;
}

let create () = { front = []; back = []; len = 0 }
let length t = t.len
let view t = t.front

(* Destructive tail append on ordinary list cells — the same runtime move
   the compiler's [@tail_mod_cons] transform performs: a cons block's tail
   field is overwritten through [Obj.set_field] (which carries the GC write
   barrier). The cells are owned exclusively by this queue until handed out
   via [view], and [view]s are only consumed before the next mutation, so
   the sharing is never observable. *)
let set_tail cell tail = Obj.set_field (Obj.repr cell) 1 (Obj.repr tail)

let append t j =
  let cell = [ j ] in
  (match t.back with [] -> t.front <- cell | _ :: _ as last -> set_tail last cell);
  t.back <- cell;
  t.len <- t.len + 1

let filter t keep =
  let front = ref [] and back = ref [] and len = ref 0 in
  List.iter
    (fun j ->
      if keep j then begin
        let cell = [ j ] in
        (match !back with [] -> front := cell | _ :: _ as last -> set_tail last cell);
        back := cell;
        incr len
      end)
    t.front;
  t.front <- !front;
  t.back <- !back;
  t.len <- !len
