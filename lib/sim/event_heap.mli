(** Binary min-heap of timestamped events.

    Ties are broken by insertion order, so simultaneous events are processed
    first-in first-out — the determinism the simulator relies on. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** Raises [Invalid_argument] on negative time. *)

val peek_time : 'a t -> int option
(** Earliest timestamp without removing it. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event. *)

val clear : 'a t -> unit
(** Empty the heap and drop every reference it still holds. *)

val live_entries : 'a t -> int
(** Number of backing-array slots currently holding an entry. Always equals
    {!size}: popped slots are overwritten with a dummy so their payloads
    become collectable. Exposed so tests can assert the absence of the
    historical space leak structurally, without relying on the GC. *)
