open Resa_core
module Trace = Resa_obs.Trace

type t = {
  cap : int;
  obs : Trace.t;
  mutable blocked : Profile.t;
  mutable accepted : Reservation.t list; (* reverse grant order *)
  mutable next_id : int;
}

type rejection =
  | Too_wide of { q : int; cap : int }
  | Saturated of { time : int; blocked : int; cap : int }

let create ?(obs = Trace.null) ~m ~alpha () =
  if m < 1 then invalid_arg "Reservation_book.create: m must be >= 1";
  if not (alpha > 0.0 && alpha <= 1.0) then
    invalid_arg "Reservation_book.create: alpha must be in (0,1]";
  let cap = int_of_float ((1.0 -. alpha) *. float_of_int m +. 1e-9) in
  { cap; obs; blocked = Profile.constant 0; accepted = []; next_id = 0 }

let cap t = t.cap

let pp_rejection ppf = function
  | Too_wide { q; cap } -> Format.fprintf ppf "request of %d processors exceeds the cap %d" q cap
  | Saturated { time; blocked; cap } ->
    Format.fprintf ppf "at t=%d, %d processors already blocked (cap %d)" time blocked cap

let reject t ~start ~p ~q r =
  if Trace.enabled t.obs then
    Trace.emit t.obs
      (Trace.Resv_reject { start; p; q; reason = Format.asprintf "%a" pp_rejection r });
  Error r

let request t ~start ~p ~q =
  if q > t.cap then reject t ~start ~p ~q (Too_wide { q; cap = t.cap })
  else begin
    let blocked' = Profile.change t.blocked ~lo:start ~hi:(start + p) ~delta:q in
    if Profile.max_on blocked' ~lo:start ~hi:(start + p) > t.cap then begin
      (* Locate a saturated instant for the error report. *)
      let time = ref start in
      let found = ref false in
      Array.iter
        (fun bp ->
          if (not !found) && bp >= start && bp < start + p
             && Profile.value_at blocked' bp > t.cap
          then begin
            time := bp;
            found := true
          end)
        (Profile.breakpoints blocked');
      reject t ~start ~p ~q
        (Saturated { time = !time; blocked = Profile.value_at t.blocked !time; cap = t.cap })
    end
    else begin
      let r = Reservation.make ~id:t.next_id ~start ~p ~q in
      t.next_id <- t.next_id + 1;
      t.blocked <- blocked';
      t.accepted <- r :: t.accepted;
      if Trace.enabled t.obs then
        Trace.emit t.obs (Trace.Resv_accept { resv = Reservation.id r; start; p; q });
      Ok r
    end
  end

let accepted t = List.rev t.accepted

let blocked_profile t = t.blocked
