(** The simulator's waiting queue: a FIFO of jobs with O(1) amortised
    append and an O(1) [Job.t list] view.

    Policies consume the queue as a plain list (submission order), and the
    simulator used to maintain that list with
    [queue := !queue @ List.rev !pending] — an O(|queue|) copy per arrival
    batch, quadratic over a long run with a deep queue. This structure keeps
    the {e same physical list} and extends it in place at the tail, so the
    policy-facing API is unchanged while appends cost O(1).

    Aliasing contract: the list returned by {!view} shares cells with the
    queue and is valid only until the next {!append} or {!filter} — exactly
    the simulator's use, where a decision's queue snapshot is consumed
    before the next event is drained. Single-owner, not thread-safe (each
    simulated run owns its queue). *)

open Resa_core

type t

val create : unit -> t

val length : t -> int
(** O(1). *)

val view : t -> Job.t list
(** The queued jobs in FIFO order, O(1) — see the aliasing contract above. *)

val append : t -> Job.t -> unit
(** Enqueue at the tail, O(1) amortised. *)

val filter : t -> (Job.t -> bool) -> unit
(** Keep only jobs satisfying the predicate, preserving order — O(length),
    paid once per decision that started jobs. The previous {!view} is left
    intact (fresh cells are built), so snapshots taken before the filter
    stay usable. *)
