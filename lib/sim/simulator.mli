(** Event-driven online cluster simulator.

    The production-system substrate (DESIGN.md §5): jobs are submitted over
    time to a cluster of [m] processors with a fixed set of advance
    reservations; a pluggable {!Policy.t} decides starts. The simulation is
    deterministic: events at equal instants are processed in insertion
    order, queues are kept in submission order.

    Free capacity lives in one mutable {!Resa_core.Timeline.t} for the whole
    run; policies access it through a {!View.t}, and every [decide] call runs
    under a timeline checkpoint that is rolled back afterwards, so trial
    reservations made while deciding never leak. No persistent profile is
    rebuilt anywhere on the decision path (the one remaining
    [Timeline.to_profile] is a lazily evaluated tracing-only classification
    aid), and queue-membership checks are O(1) via id hash sets — a decision
    step costs O((starts + queries) · log U) rather than O(history).

    The policy's per-run decision function is created at the start of each
    run ([policy.create ~obs]), so planning state cannot leak across runs.

    Soundness is enforced, not assumed: every start requested by a policy is
    checked against the capacity timeline (must be queued, not already
    started this decision, and fit its whole window), and the finished trace
    converts to an [Instance.t]/[Schedule.t] pair that [Schedule.validate]
    accepts (tested).

    {2 Observability}

    Both entry points take an optional tracer [?obs] (default
    {!Resa_obs.Trace.null}). With a live sink the simulator emits, in
    deterministic order: [Job_submit] / [Job_finish] while draining events,
    one [Decision] per decision instant, one [Job_start] per started job
    carrying its wait time and provenance ([Started_now] when it started in
    queue-prefix order, [Backfilled_ahead_of_head] when it overtook an
    earlier-queued job left waiting), one [Head_blocked] for the first job
    left waiting (reason: [Held_by_policy] if its window fits the free
    capacity, [Blocked_by_reservation] if it would fit with reservation-
    blocked capacity returned, [Blocked_by_capacity] otherwise), and
    [Sim_wake] when the simulator force-wakes a stalled policy. With the
    default null sink the run is byte-identical to the untraced build: the
    only overhead is one physical-equality test per potential event. *)

open Resa_core

type submitted = { job : Job.t; submit : int }

type arrival = { job : Job.t; submit : int; estimate : int }
(** One streamed submission: the actual job, its submit time and the
    requested walltime ([estimate >= Job.p job]). *)

type record = { job : Job.t; submit : int; start : int }

type trace = {
  m : int;
  reservations : Reservation.t list;
  records : record list;  (** In submission order. *)
  makespan : int;
}

type stream_stats = {
  jobs : int;  (** Arrivals simulated. *)
  makespan : int;
  max_queued : int;  (** Peak waiting-queue length. *)
  max_live : int;  (** Peak jobs waiting or running — the memory driver. *)
}

type heartbeat = {
  hb_seq : int;  (** 1-based snapshot index within the run. *)
  hb_time : int;  (** Simulation instant of the snapshot. *)
  hb_events : int;  (** Arrivals admitted + completions drained so far. *)
  hb_admitted : int;
  hb_completed : int;
  hb_queued : int;  (** Jobs waiting right now. *)
  hb_live : int;  (** Jobs waiting or running right now. *)
  hb_makespan : int;  (** Makespan so far (max finish of started jobs). *)
  hb_nodes : int;  (** Materialised timeline nodes — the footprint driver. *)
}
(** One periodic telemetry snapshot of a streamed replay. Every field is
    {e simulation} data, hence deterministic: two runs of the same
    workload produce identical heartbeat sequences at any executor pool
    size. Wall-clock enrichment (jobs/s, RSS) is the consumer's job — see
    {!Heartbeat} — and stays segregated, as [Resa_obs.Prof] data does. *)

exception Policy_error of string
(** Raised when a policy starts a job that does not fit, starts a job not in
    the queue, or deadlocks (never starts a startable queue). The message
    names the policy, the offending job, the current time and — for capacity
    violations — the requested window with its needed vs offered width. *)

val run :
  ?obs:Resa_obs.Trace.t ->
  policy:Policy.t ->
  m:int ->
  ?reservations:Reservation.t list ->
  submitted list ->
  trace
(** Simulate to completion. Jobs must have distinct ids, [q <= m] and
    non-negative submit times; reservations must fit the machine. *)

val run_estimated :
  ?obs:Resa_obs.Trace.t ->
  policy:Policy.t ->
  m:int ->
  ?reservations:Reservation.t list ->
  estimates:int array ->
  submitted list ->
  trace
(** Like {!run}, but jobs carry a *requested* walltime [estimates.(i) >=
    actual p] (one per submission, in order): policies see and plan with the
    estimate, the job actually completes after its true runtime, and the
    capacity reserved for the unused tail is released at completion — the
    mechanism behind backfilling's well-known sensitivity to user walltime
    overestimation. [run] is the special case [estimates = actual]. The
    returned records carry the *actual* jobs. *)

val run_stream :
  ?obs:Resa_obs.Trace.t ->
  ?gc_every:int ->
  ?heartbeat_every:int ->
  ?heartbeat_dt:int ->
  ?on_heartbeat:(heartbeat -> unit) ->
  ?on_record:(record -> unit) ->
  policy:Policy.t ->
  m:int ->
  ?reservations:Reservation.t list ->
  (unit -> arrival option) ->
  stream_stats
(** Constant-memory replay: arrivals are pulled one at a time from the
    iterator (submit times must be non-decreasing; one arrival of lookahead
    is held), per-job bookkeeping is dropped when the job completes, and no
    record list is built — [on_record] (default: ignore) observes each
    [(job, submit, start)] at the instant the job starts, in start order.
    Memory is O(live jobs + timeline), independent of trace length.

    [gc_every] (default 0 = never) compacts the capacity timeline with
    [Timeline.gc ~upto:now] every that many completions, bounding the
    third memory consumer on multi-million-job runs. Compaction is
    invisible: every simulator and policy access touches windows at or
    after now.

    [on_heartbeat] (default: none) attaches a periodic telemetry sampler:
    after processing a decision instant, if at least [heartbeat_every]
    events (arrivals + completions) or [heartbeat_dt] sim-time units have
    elapsed since the previous snapshot, one {!heartbeat} is emitted; a
    closing snapshot always follows the last event. With a sampler but no
    cadence the default is one snapshot per 65536 events. Heartbeats are
    pure simulation data — deterministic, and with no sampler attached
    the run is byte-identical to one without the feature. Cadences must
    be non-negative ([Invalid_argument] otherwise).

    Semantics are those of {!run_estimated} on the drained arrival list:
    same decisions, same starts, and byte-identical [?obs] traces — at any
    instant due arrivals are admitted before heap events, exactly the order
    the array engine's FIFO-stable heap produced (enforced by the
    differential suite in [test/test_stream.ml], including under
    [gc_every:1]). Per-arrival validation (negative submit, decreasing
    submit, estimate below runtime, width over [m], duplicate live id)
    raises [Invalid_argument] at the offending pull. *)

val to_offline : trace -> Instance.t * Schedule.t
(** Forget release dates: the instance/schedule pair actually executed,
    ready for validation, Gantt rendering or ratio measurements. *)
