(** Event-driven online cluster simulator.

    The production-system substrate (DESIGN.md §5): jobs are submitted over
    time to a cluster of [m] processors with a fixed set of advance
    reservations; a pluggable {!Policy.t} decides starts. The simulation is
    deterministic: events at equal instants are processed in insertion
    order, queues are kept in submission order.

    Soundness is enforced, not assumed: every start requested by a policy is
    checked against the capacity profile, and the finished trace converts to
    an [Instance.t]/[Schedule.t] pair that [Schedule.validate] accepts
    (tested). *)

open Resa_core

type submitted = { job : Job.t; submit : int }

type record = { job : Job.t; submit : int; start : int }

type trace = {
  m : int;
  reservations : Reservation.t list;
  records : record list;  (** In submission order. *)
  makespan : int;
}

exception Policy_error of string
(** Raised when a policy starts a job that does not fit, starts a job not in
    the queue, or deadlocks (never starts a startable queue). *)

val run :
  policy:Policy.t -> m:int -> ?reservations:Reservation.t list -> submitted list -> trace
(** Simulate to completion. Jobs must have distinct ids, [q <= m] and
    non-negative submit times; reservations must fit the machine. *)

val run_estimated :
  policy:Policy.t ->
  m:int ->
  ?reservations:Reservation.t list ->
  estimates:int array ->
  submitted list ->
  trace
(** Like {!run}, but jobs carry a *requested* walltime [estimates.(i) >=
    actual p] (one per submission, in order): policies see and plan with the
    estimate, the job actually completes after its true runtime, and the
    capacity reserved for the unused tail is released at completion — the
    mechanism behind backfilling's well-known sensitivity to user walltime
    overestimation. [run] is the special case [estimates = actual]. The
    returned records carry the *actual* jobs. *)

val to_offline : trace -> Instance.t * Schedule.t
(** Forget release dates: the instance/schedule pair actually executed,
    ready for validation, Gantt rendering or ratio measurements. *)
