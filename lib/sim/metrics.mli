(** Standard batch-scheduling metrics over simulation traces. *)


type summary = {
  n : int;
  makespan : int;
  mean_wait : float;  (** Mean of [start − submit]. *)
  max_wait : int;
  mean_slowdown : float;  (** Mean of [(wait + p) / p]. *)
  mean_bounded_slowdown : float;
      (** Mean of [max 1 ((wait + p) / max p bound)] — the classic metric
          that stops very short jobs from dominating. *)
  utilization : float;
      (** Job work over available processor·time in [\[0, makespan)]. *)
}

val summarize : ?bound:int -> Simulator.trace -> summary
(** [bound] (default 10) is the bounded-slowdown runtime threshold. *)

val wait_times : Simulator.trace -> int list
(** Per-job waits, in submission order. *)

val pp_summary : Format.formatter -> summary -> unit

val header : string
(** Column header matching {!row}. *)

val row : name:string -> summary -> string
(** One fixed-width table row, for experiment output. *)
