(** Standard batch-scheduling metrics over simulation traces. *)

type summary = {
  n : int;
  makespan : int;
  mean_wait : float;  (** Mean of [start − submit]. *)
  max_wait : int;
  mean_slowdown : float;  (** Mean of [(wait + p) / p]. *)
  mean_bounded_slowdown : float;
      (** Mean of [max 1 ((wait + p) / max p bound)] — the classic metric
          that stops very short jobs from dominating. *)
  utilization : float;
      (** Job work over available processor·time in [\[0, makespan)]. *)
}

type job_row = {
  id : int;
  submit : int;
  start : int;
  wait : int;  (** [start − submit]. *)
  finish : int;  (** [start + p] (actual runtime). *)
  p : int;
  q : int;
  slowdown : float;
  bounded_slowdown : float;
  provenance : string;
      (** How the job came to start — e.g. ["started-now"] or
          ["backfilled-ahead-of-head"] from a {!Resa_obs.Trace} event
          stream; [""] when no provenance source was supplied. *)
}

val summarize : ?bound:int -> Simulator.trace -> summary
(** [bound] is the bounded-slowdown runtime threshold; it defaults to [10]
    (in the simulator's abstract time unit), the customary cutoff below
    which a job's slowdown is clamped so that very short jobs do not
    dominate the mean. On an {e empty} trace the result is explicit about
    being degenerate: [n = 0], [makespan = 0], means at their neutral
    values ([mean_wait = 0.], slowdowns [1.]) and [utilization = Float.nan]
    — there is no elapsed time to utilise, and [nan] cannot be mistaken for
    a measured ratio. *)

val per_job : ?bound:int -> ?provenance:(int -> string) -> Simulator.trace -> job_row list
(** Per-job metric rows, in submission order. [bound] as in {!summarize}.
    [provenance] maps a job id to its provenance label (see
    {!Resa_obs.Trace.start_provenances}); defaults to [fun _ -> ""]. *)

val per_job_csv : ?run:string -> job_row list -> string
(** Render rows as CSV with a header line. With [?run], a leading [run]
    column carrying that name is prepended to every row. *)

val wait_times : Simulator.trace -> int list
(** Per-job waits, in submission order. *)

val pp_summary : Format.formatter -> summary -> unit

val header : string
(** Column header matching {!row}. *)

val row : name:string -> summary -> string
(** One fixed-width table row, for experiment output. *)
