(** Standard batch-scheduling metrics over simulation traces.

    Two evaluation paths share one accumulation kernel: {!summarize} folds
    a finished trace's record list, and {!Stream} folds records one at a
    time as a streamed replay produces them — never holding the trace.
    Integer-valued sums (waits, work) are exact by construction; float sums
    (slowdowns) go through the exactly-rounded, order-independent
    [Resa_stats.Stats.Fsum], so the two paths return bit-identical
    summaries even though they observe records in different orders
    (streaming sees start order, batch sees submission order). The
    differential suite in [test/test_stream.ml] enforces this. *)

type summary = {
  n : int;
  makespan : int;
  mean_wait : float;  (** Mean of [start − submit]. *)
  max_wait : int;
  mean_slowdown : float;  (** Mean of [(wait + p) / p]. *)
  mean_bounded_slowdown : float;
      (** Mean of [max 1 ((wait + p) / max p bound)] — the classic metric
          that stops very short jobs from dominating. *)
  utilization : float;
      (** Job work over available processor·time in [\[0, makespan)]. *)
}

type job_row = {
  id : int;
  job_number : int;
      (** Archive provenance: the source trace's job number (field 1) when
          a [job_numbers] map is supplied to {!per_job}, the renumbered id
          otherwise — so rows from a real SWF file can be joined back to
          the original trace. *)
  submit : int;
  start : int;
  wait : int;  (** [start − submit]. *)
  finish : int;  (** [start + p] (actual runtime). *)
  p : int;
  q : int;
  slowdown : float;
  bounded_slowdown : float;
  provenance : string;
      (** How the job came to start — e.g. ["started-now"] or
          ["backfilled-ahead-of-head"] from a {!Resa_obs.Trace} event
          stream; [""] when no provenance source was supplied. *)
}

val summarize : ?bound:int -> Simulator.trace -> summary
(** One pass over the records — no instance or schedule is rebuilt, no
    intermediate lists are allocated. [bound] is the bounded-slowdown
    runtime threshold; it defaults to [10] (in the simulator's abstract
    time unit), the customary cutoff below which a job's slowdown is
    clamped so that very short jobs do not dominate the mean. On an
    {e empty} trace the result is explicit about being degenerate: [n = 0],
    [makespan = 0], means at their neutral values ([mean_wait = 0.],
    slowdowns [1.]) and [utilization = Float.nan] — there is no elapsed
    time to utilise, and [nan] cannot be mistaken for a measured ratio. *)

val per_job :
  ?bound:int ->
  ?provenance:(int -> string) ->
  ?job_numbers:int array ->
  Simulator.trace ->
  job_row list
(** Per-job metric rows, in submission order. [bound] as in {!summarize}.
    [provenance] maps a job id to its provenance label (see
    {!Resa_obs.Trace.start_provenances}); defaults to [fun _ -> ""].
    [job_numbers] maps the renumbered id to the source trace's job number
    (as built by [Swf.job_numbers]); defaults to the identity. *)

val per_job_csv : ?run:string -> job_row list -> string
(** Render rows as CSV with a header line. With [?run], a leading [run]
    column carrying that name is prepended to every row. *)

val wait_times : Simulator.trace -> int list
(** Per-job waits, in submission order. *)

(** Incremental metrics for streamed replays: observe each record as the
    simulator emits it ([Simulator.run_stream]'s [on_record]), in O(1)
    memory, and summarise at any point. Means, extrema and utilization are
    exact — bit-identical to {!summarize} on the same record set — and the
    wait-time median/95th percentile are P² sketches
    ([Resa_stats.Stats.P2]: exact up to 5 samples, heuristic beyond, not
    part of {!summary}). *)
module Stream : sig
  type t

  val create : ?bound:int -> m:int -> reservations:Resa_core.Reservation.t list -> unit -> t
  (** [bound] as in {!summarize}; [m] and [reservations] define the
      availability the utilization denominator integrates over. *)

  val observe : t -> Simulator.record -> unit
  val count : t -> int

  val summary : t -> summary
  (** Summary of everything observed so far; the degenerate record on zero
      observations, exactly like {!summarize}. *)

  val wait_p50 : t -> float
  (** P² estimate of the median wait; [nan] before any observation. *)

  val wait_p95 : t -> float
  (** P² estimate of the 95th-percentile wait; [nan] before any
      observation. *)
end

val pp_summary : Format.formatter -> summary -> unit

val header : string
(** Column header matching {!row}. *)

val row : name:string -> summary -> string
(** One fixed-width table row, for experiment output. *)
