(** Pluggable online scheduling policies for the simulator.

    A policy is consulted at every simulation event. It sees the current
    time, the submission-ordered queue of waiting jobs, and a {!View.t}
    over the simulator's live capacity timeline (machine availability minus
    reservations minus windows of running jobs). It answers with the queued
    jobs to start right now — each must fit its whole window at the current
    time — and an optional extra wake-up instant (needed by planning
    policies whose next action time is not a simulator event).

    The view is speculative: the simulator opens a {!Resa_core.Timeline}
    checkpoint around every [decide] call and rolls it back afterwards, so
    a decision may reserve trial windows ([View.reserve], nested
    [View.checkpoint]/[rollback]/[commit]) while reasoning, with every
    query reflecting its own tentative reservations at O(log U) — no
    persistent profile is ever rebuilt. Decisions must not inspect instants
    before the current time (none of the policies here do).

    A {!t} is a {e factory}: [create ~obs] is invoked once per simulation
    run and returns that run's [decide], so planning state (conservative's
    plan table, EASY's guarantees) is freshly scoped per run — sharing one
    [t] across runs, sequentially or from parallel domains, is safe by
    construction. [obs] is the simulator's tracer: with a live sink,
    planning policies emit {!Resa_obs.Trace.Planned} events recording the
    start instant they currently promise a blocked or planned job — the
    policy-side half of decision provenance. With the null sink the
    decision logic is byte-identical to the untraced build. Each [decide]
    call also bumps a per-policy [Prof] counter when profiling is enabled.

    The [*_reference] values are the retained Profile-based oracles (repo
    convention: every timeline hot path keeps its persistent twin): same
    names, same decisions, but each decision snapshots the forward profile
    and re-derives plans with persistent [Profile.reserve]/[earliest_fit]
    chains — exactly the pre-timeline-native engine, kept for the
    differential suite and the before/after benchmark. *)

open Resa_core

type action = {
  start_now : Job.t list;  (** Subset of the queue, to start at [time]. *)
  wake : int option;  (** Extra decision instant strictly after [time]. *)
}

type decide = time:int -> queue:Job.t list -> free:View.t -> action

type t = {
  name : string;
  create : obs:Resa_obs.Trace.t -> decide;
      (** Fresh per-run decision function; called once by [Simulator.run]. *)
}

val fcfs : t
(** Strict FCFS: only the queue head may start; it starts at the first
    instant its whole window fits. Emits the blocked head's next feasible
    start as a [Planned] event. *)

val conservative : t
(** Conservative backfilling: each job is planned at submission at the
    earliest start that delays no previously planned job, and starts exactly
    at its planned time. The plan lives in the policy's own mutable
    timeline, built once per run and updated incrementally (stale windows
    undone with an inverse range-add on replans). Emits a [Planned] event
    per (re)planning. *)

val easy : t
(** EASY backfilling: the head holds a guaranteed earliest start; any other
    job may start now if that guarantee is not pushed back — checked by a
    trial reservation under a checkpoint, kept on success and rolled back
    otherwise. Emits the head's guarantee as a [Planned] event. *)

val aggressive : t
(** List scheduling (LSRC): start every queued job that fits, in queue
    order. With all jobs submitted at time 0 this reproduces [Lsrc.run]
    exactly (tested). Emits no policy events (the simulator's provenance
    classification covers it). *)

val all : t list
(** The four policies, in the order above. *)

val fcfs_reference : t
val conservative_reference : t
val easy_reference : t
val aggressive_reference : t

val all_reference : t list
(** Profile-based oracle twins of {!all}, same order and names: identical
    decisions derived from a per-decision forward-profile snapshot. *)
