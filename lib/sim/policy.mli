(** Pluggable online scheduling policies for the simulator.

    A policy is consulted at every simulation event. It sees the current
    time, the submission-ordered queue of waiting jobs, and the forward
    capacity profile [free] (machine availability minus reservations minus
    windows of running jobs). [free] is exact from the current [time]
    onwards only — the simulator collapses the dead history before [time]
    to a constant — so decisions must not inspect past instants (none of
    the policies here do). It answers with the queued jobs to start right
    now — each must fit its whole window at the current time — and an
    optional extra wake-up instant (needed by planning policies whose next
    action time is not a simulator event).

    Policies are stateful (planning tables); build a fresh value per
    simulation run.

    Every constructor takes an optional tracer [?obs] (default
    {!Resa_obs.Trace.null}): with a live sink, planning policies emit
    {!Resa_obs.Trace.Planned} events recording the start instant they
    currently promise a blocked or planned job — the policy-side half of
    decision provenance (the simulator emits the start/blocked half). With
    the default sink the decision logic is byte-identical to the untraced
    build. Each [decide] call also bumps a per-policy [Prof] counter when
    profiling is enabled. *)

open Resa_core

type action = {
  start_now : Job.t list;  (** Subset of the queue, to start at [time]. *)
  wake : int option;  (** Extra decision instant strictly after [time]. *)
}

type t = {
  name : string;
  decide : time:int -> queue:Job.t list -> free:Profile.t -> action;
}

val fcfs : ?obs:Resa_obs.Trace.t -> unit -> t
(** Strict FCFS: only the queue head may start; it starts at the first
    instant its whole window fits. Emits the blocked head's next feasible
    start as a [Planned] event. *)

val conservative : ?obs:Resa_obs.Trace.t -> unit -> t
(** Conservative backfilling: each job is planned at submission at the
    earliest start that delays no previously planned job, and starts exactly
    at its planned time. Emits a [Planned] event per (re)planning. *)

val easy : ?obs:Resa_obs.Trace.t -> unit -> t
(** EASY backfilling: the head holds a guaranteed earliest start; any other
    job may start now if that guarantee is not pushed back. Emits the head's
    guarantee as a [Planned] event. *)

val aggressive : ?obs:Resa_obs.Trace.t -> unit -> t
(** List scheduling (LSRC): start every queued job that fits, in queue
    order. With all jobs submitted at time 0 this reproduces [Lsrc.run]
    exactly (tested). Emits no policy events (the simulator's provenance
    classification covers it). *)

val all : ?obs:Resa_obs.Trace.t -> unit -> t list
(** Fresh instances of the four policies, in the order above, sharing one
    tracer. *)
