(** Pluggable online scheduling policies for the simulator.

    A policy is consulted at every simulation event. It sees the current
    time, the submission-ordered queue of waiting jobs, and the forward
    capacity profile [free] (machine availability minus reservations minus
    windows of running jobs). [free] is exact from the current [time]
    onwards only — the simulator collapses the dead history before [time]
    to a constant — so decisions must not inspect past instants (none of
    the policies here do). It answers with the queued jobs to start right
    now — each must fit its whole window at the current time — and an
    optional extra wake-up instant (needed by planning policies whose next
    action time is not a simulator event).

    Policies are stateful (planning tables); build a fresh value per
    simulation run. *)

open Resa_core

type action = {
  start_now : Job.t list;  (** Subset of the queue, to start at [time]. *)
  wake : int option;  (** Extra decision instant strictly after [time]. *)
}

type t = {
  name : string;
  decide : time:int -> queue:Job.t list -> free:Profile.t -> action;
}

val fcfs : unit -> t
(** Strict FCFS: only the queue head may start; it starts at the first
    instant its whole window fits. *)

val conservative : unit -> t
(** Conservative backfilling: each job is planned at submission at the
    earliest start that delays no previously planned job, and starts exactly
    at its planned time. *)

val easy : unit -> t
(** EASY backfilling: the head holds a guaranteed earliest start; any other
    job may start now if that guarantee is not pushed back. *)

val aggressive : unit -> t
(** List scheduling (LSRC): start every queued job that fits, in queue
    order. With all jobs submitted at time 0 this reproduces [Lsrc.run]
    exactly (tested). *)

val all : unit -> t list
(** Fresh instances of the four policies, in the order above. *)
