open Resa_core
module Trace = Resa_obs.Trace
module Prof = Resa_obs.Prof
module Metrics = Resa_obs.Metrics

type submitted = { job : Job.t; submit : int }

type arrival = { job : Job.t; submit : int; estimate : int }

type record = { job : Job.t; submit : int; start : int }

type trace = {
  m : int;
  reservations : Reservation.t list;
  records : record list;
  makespan : int;
}

type stream_stats = { jobs : int; makespan : int; max_queued : int; max_live : int }

type heartbeat = {
  hb_seq : int;
  hb_time : int;
  hb_events : int;
  hb_admitted : int;
  hb_completed : int;
  hb_queued : int;
  hb_live : int;
  hb_makespan : int;
  hb_nodes : int;
}

exception Policy_error of string

(* Registry instruments for the always-on telemetry surface. All sites are
   flag-gated inside [Metrics] (one load + branch when disabled); values
   derived from simulation data are deterministic, the decision-latency
   histogram is wall-clock and therefore lives under the reserved "wall."
   prefix (see Resa_obs.Metrics). *)
let m_admitted = Metrics.counter "sim.jobs_admitted"
let m_completed = Metrics.counter "sim.jobs_completed"
let m_started = Metrics.counter "sim.jobs_started"
let m_decisions = Metrics.counter "sim.decisions"
let m_checkpoints = Metrics.counter "sim.checkpoints"
let m_rollbacks = Metrics.counter "sim.rollbacks"
let m_gc_runs = Metrics.counter "sim.gc_runs"
let m_gc_reclaimed = Metrics.counter "sim.gc_reclaimed_nodes"
let m_heartbeats = Metrics.counter "sim.heartbeats"
let m_wait = Metrics.histogram "sim.wait"
let m_queue_depth = Metrics.gauge "sim.queue_depth"
let m_live_jobs = Metrics.gauge "sim.live_jobs"
let m_nodes = Metrics.gauge "sim.timeline_nodes"
let m_decide_ns = Metrics.histogram "wall.decide_ns"

type event =
  | Completion of int (* job id *)
  | Wake

(* Per-job state held only while the job is waiting or running; dropped at
   completion, which is what keeps a streamed replay's footprint proportional
   to the number of *live* jobs rather than the trace length. *)
type live = { ljob : Job.t; lsubmit : int; lest : int; mutable lstart : int }

(* The single event loop behind both entry points. Arrivals are pulled from
   [next] (submit times non-decreasing) with one arrival of lookahead;
   everything else matches the former array-based engine event for event:
   at any instant, due arrivals are admitted first (they used to occupy the
   lowest heap sequence numbers and therefore popped first), then heap
   events in push order — so traces are byte-identical across the two entry
   points (enforced by test/test_stream.ml). *)
let run_core ~obs ~policy ~m ~reservations ~gc_every ~hb_every ~hb_dt ~on_heartbeat ~on_record
    (next : unit -> arrival option) =
  (* Instance construction validates the machine and the reservation set. *)
  let base = Instance.create_exn ~m ~jobs:[] ~reservations in
  let tracing = Trace.enabled obs in
  (* Capacity blocked by reservations alone, for classifying why a job does
     not fit: if it would fit with the blocked windows given back, the
     reservation is the binding constraint. Only built when tracing. *)
  let resv_blocked =
    lazy (Profile.sub (Profile.constant m) (Instance.availability base))
  in
  let events : event Event_heap.t = Event_heap.create () in
  (* Reservation edges are decision opportunities for every policy. *)
  Array.iter
    (fun t -> Event_heap.push events ~time:t Wake)
    (Profile.breakpoints (Instance.availability base));
  (* Free capacity lives in one mutable timeline for the whole run (O(log U)
     per start/release/query). Policies work against it through a [View]:
     each decision runs under a checkpoint that is rolled back afterwards,
     so trial reservations made while deciding never leak — and no
     persistent profile is ever rebuilt on this path. *)
  let free = Timeline.of_profile (Instance.availability base) in
  let view = View.make free in
  (* The policy's per-run state is created here — plans cannot leak across
     runs by construction. *)
  let decide = policy.Policy.create ~obs in
  let queue = Jobq.create () in
  let in_queue : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let live : (int, live) Hashtbl.t = Hashtbl.create 1024 in
  let forced = ref false in
  let n_jobs = ref 0 and makespan = ref 0 in
  let max_queued = ref 0 and max_live = ref 0 in
  let completions = ref 0 in
  (* Arrivals admitted + completions drained: the heartbeat sampler's event
     clock. Pure simulation data, so heartbeat cadence is deterministic. *)
  let events_seen = ref 0 in
  let hb_seq = ref 0 and hb_last_ev = ref 0 and hb_last_t = ref 0 in
  let emit_heartbeat t =
    match on_heartbeat with
    | None -> ()
    | Some f ->
      hb_seq := !hb_seq + 1;
      Metrics.incr m_heartbeats;
      Metrics.set m_live_jobs (Hashtbl.length live);
      Metrics.set m_nodes (Timeline.node_count free);
      f
        {
          hb_seq = !hb_seq;
          hb_time = t;
          hb_events = !events_seen;
          hb_admitted = !n_jobs;
          hb_completed = !completions;
          hb_queued = Jobq.length queue;
          hb_live = Hashtbl.length live;
          hb_makespan = !makespan;
          hb_nodes = Timeline.node_count free;
        };
      hb_last_ev := !events_seen;
      hb_last_t := t
  in
  let heartbeat_due t =
    on_heartbeat <> None
    && ((hb_every > 0 && !events_seen - !hb_last_ev >= hb_every)
       || (hb_dt > 0 && t - !hb_last_t >= hb_dt))
  in
  let last_submit = ref 0 in
  let ahead = ref None in
  let peek_arrival () =
    match !ahead with
    | Some _ as a -> a
    | None -> (
      match next () with
      | None -> None
      | Some a as r ->
        if a.submit < 0 then invalid_arg "Simulator.run_stream: negative submit time";
        if a.submit < !last_submit then
          invalid_arg "Simulator.run_stream: submit times must be non-decreasing";
        if a.estimate < Job.p a.job then
          invalid_arg "Simulator.run_stream: estimate below the actual runtime";
        if Job.q a.job > m then
          invalid_arg "Simulator.run_stream: job wider than the machine";
        last_submit := a.submit;
        ahead := r;
        r)
  in
  let admit t (a : arrival) =
    let id = Job.id a.job in
    if Hashtbl.mem live id then invalid_arg "Simulator.run_stream: duplicate live job id";
    Hashtbl.replace live id { ljob = a.job; lsubmit = a.submit; lest = a.estimate; lstart = -1 };
    incr n_jobs;
    incr events_seen;
    Metrics.incr m_admitted;
    if Hashtbl.length live > !max_live then max_live := Hashtbl.length live;
    (* Policies see the *estimated* job. *)
    Jobq.append queue (Job.make ~id ~p:a.estimate ~q:(Job.q a.job));
    Hashtbl.replace in_queue id ();
    if Jobq.length queue > !max_queued then max_queued := Jobq.length queue;
    if tracing then
      Trace.emit obs (Trace.Job_submit { time = t; job = id; p = Job.p a.job; q = Job.q a.job })
  in
  (* Completion of job [id] at [t]: give back the over-reserved tail. *)
  let release_tail id t =
    let l = Hashtbl.find live id in
    let planned_end = l.lstart + l.lest in
    if t < planned_end then Timeline.change free ~lo:t ~hi:planned_end ~delta:(Job.q l.ljob)
  in
  let rec drain t =
    match peek_arrival () with
    | Some a when a.submit <= t ->
      ahead := None;
      admit t a;
      drain t
    | _ -> (
      match Event_heap.peek_time events with
      | Some t' when t' = t ->
        (match Event_heap.pop events with
        | Some (_, Completion id) ->
          release_tail id t;
          Hashtbl.remove live id;
          incr completions;
          incr events_seen;
          Metrics.incr m_completed;
          (* Outside any decision checkpoint, with every future query at or
             after [t]: the history left of now is dead weight. *)
          if gc_every > 0 && !completions mod gc_every = 0 then begin
            if Metrics.enabled () then begin
              let before = Timeline.node_count free in
              Timeline.gc free ~upto:t;
              Metrics.incr m_gc_runs;
              Metrics.add m_gc_reclaimed (max 0 (before - Timeline.node_count free))
            end
            else Timeline.gc free ~upto:t
          end;
          if tracing then Trace.emit obs (Trace.Job_finish { time = t; job = id })
        | Some (_, Wake) | None -> ());
        drain t
      | _ -> ())
  in
  let start_job t j =
    let l = Hashtbl.find live (Job.id j) in
    let est = l.lest in
    let have = Timeline.min_on free ~lo:t ~hi:(t + est) in
    if have < Job.q j then
      raise
        (Policy_error
           (Format.asprintf
              "%s started %a at t=%d without capacity: window [%d,%d) needs %d but offers %d"
              policy.Policy.name Job.pp j t t (t + est) (Job.q j) have));
    Timeline.reserve free ~start:t ~dur:est ~need:(Job.q j);
    l.lstart <- t;
    Metrics.incr m_started;
    Metrics.observe m_wait (t - l.lsubmit);
    forced := false;
    let finish = t + Job.p l.ljob in
    if finish > !makespan then makespan := finish;
    Event_heap.push events ~time:finish (Completion (Job.id j));
    on_record { job = l.ljob; submit = l.lsubmit; start = t }
  in
  let last_t = ref (-1) in
  let next_time () =
    match (Event_heap.peek_time events, peek_arrival ()) with
    | Some th, Some a -> Some (min th a.submit)
    | (Some _ as r), None -> r
    | None, Some a -> Some a.submit
    | None, None -> None
  in
  let rec loop () =
    match next_time () with
    | None ->
      if Jobq.length queue > 0 then
        if !forced then
          raise
            (Policy_error
               (Format.asprintf "%s deadlocked at t=%d with %d queued jobs (head %a)"
                  policy.Policy.name !last_t (Jobq.length queue) Job.pp
                  (List.hd (Jobq.view queue))))
        else begin
          (* No event left but jobs wait: past the last breakpoint the whole
             machine is free, so a correct policy must start them; wake it
             once. *)
          forced := true;
          let wake_at = max (!last_t + 1) (Timeline.last_breakpoint free) in
          if tracing then Trace.emit obs (Trace.Sim_wake { time = wake_at; forced = true });
          Event_heap.push events ~time:wake_at Wake;
          loop ()
        end
    | Some t ->
      drain t;
      last_t := t;
      let q_now = Jobq.view queue in
      View.set_now view t;
      let t_decide = if Metrics.enabled () then Prof.now_ns () else 0 in
      let spec = Timeline.checkpoint free in
      let action = decide ~time:t ~queue:q_now ~free:view in
      Timeline.rollback free spec;
      Metrics.incr m_decisions;
      Metrics.incr m_checkpoints;
      Metrics.incr m_rollbacks;
      if Metrics.enabled () then begin
        Metrics.observe m_decide_ns (Prof.now_ns () - t_decide);
        Metrics.set m_queue_depth (Jobq.length queue)
      end;
      let start_now = action.Policy.start_now and wake = action.Policy.wake in
      (* Validate starts against the id set — O(1) per started job. A started
         id must be queued and not already started this decision. *)
      let started_set : (int, unit) Hashtbl.t =
        Hashtbl.create (1 + (2 * List.length start_now))
      in
      List.iter
        (fun j ->
          let id = Job.id j in
          if (not (Hashtbl.mem in_queue id)) || Hashtbl.mem started_set id then
            raise
              (Policy_error
                 (Format.asprintf "%s started %a at t=%d which is not in the queue"
                    policy.Policy.name Job.pp j t));
          Hashtbl.replace started_set id ())
        start_now;
      (* Start provenance: a job that overtakes an earlier-queued job that
         stays waiting was backfilled; classification happens against the
         pre-start queue order, before the timeline mutates. *)
      if tracing then begin
        Trace.emit obs
          (Trace.Decision
             {
               time = t;
               policy = policy.Policy.name;
               queued = Jobq.length queue;
               started = List.length start_now;
               wake;
             });
        if start_now <> [] then begin
          let pos_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
          List.iteri (fun i qj -> Hashtbl.replace pos_of (Job.id qj) i) q_now;
          let first_wait =
            let rec go pos = function
              | [] -> None
              | j :: _ when not (Hashtbl.mem started_set (Job.id j)) -> Some pos
              | _ :: rest -> go (pos + 1) rest
            in
            go 0 q_now
          in
          List.iter
            (fun j ->
              let pos = Hashtbl.find pos_of (Job.id j) in
              let provenance =
                match first_wait with
                | Some wpos when pos > wpos -> Trace.Backfilled_ahead_of_head
                | _ -> Trace.Started_now
              in
              Trace.emit obs
                (Trace.Job_start
                   {
                     time = t;
                     job = Job.id j;
                     wait = t - (Hashtbl.find live (Job.id j)).lsubmit;
                     provenance;
                   }))
            start_now
        end
      end;
      List.iter (fun j -> start_job t j) start_now;
      (* Why is the head (the first job left waiting) not running? Checked
         after the starts, against the capacity it actually faces. *)
      if tracing then begin
        match List.find_opt (fun j -> not (Hashtbl.mem started_set (Job.id j))) q_now with
        | None -> ()
        | Some jh ->
          let est = (Hashtbl.find live (Job.id jh)).lest in
          let need = Job.q jh in
          let have = Timeline.min_on free ~lo:t ~hi:(t + est) in
          let reason =
            if have >= need then Trace.Held_by_policy
            else begin
              (* The only profile export left in the simulator: a lazily
                 evaluated tracing-only classification aid. *)
              let without_resv =
                Profile.add (Timeline.to_profile ~from:t free) (Lazy.force resv_blocked)
              in
              if Profile.min_on without_resv ~lo:t ~hi:(t + est) >= need then
                Trace.Blocked_by_reservation
              else Trace.Blocked_by_capacity
            end
          in
          Trace.emit obs
            (Trace.Head_blocked
               {
                 time = t;
                 policy = policy.Policy.name;
                 job = Job.id jh;
                 reason;
                 lo = t;
                 hi = t + est;
                 need;
                 have;
               })
      end;
      if start_now <> [] then begin
        List.iter (fun j -> Hashtbl.remove in_queue (Job.id j)) start_now;
        Jobq.filter queue (fun j -> Hashtbl.mem in_queue (Job.id j))
      end;
      (match wake with
      | Some w when w > t -> Event_heap.push events ~time:w Wake
      | Some _ | None -> ());
      if heartbeat_due t then emit_heartbeat t;
      loop ()
  in
  Prof.with_span ~cat:"sim" ("simulate/" ^ policy.Policy.name) loop;
  (* One closing snapshot so the stream always ends on the final state,
     whatever the cadence (also the only row on short runs). *)
  if on_heartbeat <> None then emit_heartbeat (max !last_t !makespan);
  { jobs = !n_jobs; makespan = !makespan; max_queued = !max_queued; max_live = !max_live }

let run_stream ?(obs = Trace.null) ?(gc_every = 0) ?(heartbeat_every = 0) ?(heartbeat_dt = 0)
    ?on_heartbeat ?(on_record = fun (_ : record) -> ()) ~policy ~m ?(reservations = []) next =
  if gc_every < 0 then invalid_arg "Simulator.run_stream: negative gc_every";
  if heartbeat_every < 0 then invalid_arg "Simulator.run_stream: negative heartbeat_every";
  if heartbeat_dt < 0 then invalid_arg "Simulator.run_stream: negative heartbeat_dt";
  (* With a sampler attached but no cadence given, default to one snapshot
     every 65536 events — frequent enough to watch a replay live, sparse
     enough to stay invisible in the wall clock. *)
  let hb_every =
    if on_heartbeat <> None && heartbeat_every = 0 && heartbeat_dt = 0 then 65536
    else heartbeat_every
  in
  run_core ~obs ~policy ~m ~reservations ~gc_every ~hb_every ~hb_dt:heartbeat_dt ~on_heartbeat
    ~on_record next

let run_estimated ?(obs = Trace.null) ~policy ~m ?(reservations = []) ~estimates
    (submissions : submitted list) =
  let subs = Array.of_list submissions in
  let n = Array.length subs in
  if Array.length estimates <> n then
    invalid_arg "Simulator.run_estimated: estimates length mismatch";
  Array.iteri
    (fun i (s : submitted) ->
      if s.submit < 0 then invalid_arg "Simulator.run_estimated: negative submit time";
      if estimates.(i) < Job.p s.job then
        invalid_arg "Simulator.run_estimated: estimate below the actual runtime")
    subs;
  (* Instance construction validates ids, widths and reservations. *)
  ignore
    (Instance.create_exn ~m ~jobs:(List.map (fun (s : submitted) -> s.job) submissions)
       ~reservations
      : Instance.t);
  (* Feed the engine in (submit, index) order — exactly the order the event
     heap used to pop the arrival events it no longer holds. *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      match Int.compare subs.(i).submit subs.(j).submit with 0 -> Int.compare i j | c -> c)
    order;
  let k = ref 0 in
  let next () =
    if !k >= n then None
    else begin
      let i = order.(!k) in
      incr k;
      Some { job = subs.(i).job; submit = subs.(i).submit; estimate = estimates.(i) }
    end
  in
  let by_id : (int, record) Hashtbl.t = Hashtbl.create (max 16 n) in
  let stats =
    run_core ~obs ~policy ~m ~reservations ~gc_every:0 ~hb_every:0 ~hb_dt:0 ~on_heartbeat:None
      ~on_record:(fun r -> Hashtbl.replace by_id (Job.id r.job) r)
      next
  in
  let records =
    List.map (fun (s : submitted) -> Hashtbl.find by_id (Job.id s.job)) submissions
  in
  { m; reservations; records; makespan = stats.makespan }

let run ?obs ~policy ~m ?(reservations = []) (submissions : submitted list) =
  let estimates =
    Array.of_list (List.map (fun (s : submitted) -> Job.p s.job) submissions)
  in
  run_estimated ?obs ~policy ~m ~reservations ~estimates submissions

let to_offline trace =
  let jobs =
    List.mapi (fun i r -> Job.make ~id:i ~p:(Job.p r.job) ~q:(Job.q r.job)) trace.records
  in
  let inst = Instance.create_exn ~m:trace.m ~jobs ~reservations:trace.reservations in
  let starts = Array.of_list (List.map (fun r -> r.start) trace.records) in
  (inst, Schedule.make starts)
