open Resa_core
module Trace = Resa_obs.Trace
module Prof = Resa_obs.Prof

type submitted = { job : Job.t; submit : int }

type record = { job : Job.t; submit : int; start : int }

type trace = {
  m : int;
  reservations : Reservation.t list;
  records : record list;
  makespan : int;
}

exception Policy_error of string

type event =
  | Arrival of int (* index into the submission array *)
  | Completion of int (* job id *)
  | Wake

let run_estimated ?(obs = Trace.null) ~policy ~m ?(reservations = []) ~estimates
    (submissions : submitted list) =
  let subs = Array.of_list submissions in
  let n = Array.length subs in
  if Array.length estimates <> n then
    invalid_arg "Simulator.run_estimated: estimates length mismatch";
  Array.iteri
    (fun i (s : submitted) ->
      if s.submit < 0 then invalid_arg "Simulator.run_estimated: negative submit time";
      if estimates.(i) < Job.p s.job then
        invalid_arg "Simulator.run_estimated: estimate below the actual runtime")
    subs;
  (* Instance construction validates ids, widths and reservations. *)
  let base =
    Instance.create_exn ~m ~jobs:(List.map (fun (s : submitted) -> s.job) submissions)
      ~reservations
  in
  (* Policies see the *estimated* jobs. *)
  let estimated =
    Array.mapi
      (fun i (s : submitted) -> Job.make ~id:(Job.id s.job) ~p:estimates.(i) ~q:(Job.q s.job))
      subs
  in
  let actual_p : (int, int) Hashtbl.t = Hashtbl.create n in
  let est_p : (int, int) Hashtbl.t = Hashtbl.create n in
  Array.iteri
    (fun i (s : submitted) ->
      Hashtbl.replace actual_p (Job.id s.job) (Job.p s.job);
      Hashtbl.replace est_p (Job.id s.job) estimates.(i))
    subs;
  let tracing = Trace.enabled obs in
  let submit_of : (int, int) Hashtbl.t = Hashtbl.create (if tracing then n else 1) in
  if tracing then
    Array.iter (fun (s : submitted) -> Hashtbl.replace submit_of (Job.id s.job) s.submit) subs;
  (* Capacity blocked by reservations alone, for classifying why a job does
     not fit: if it would fit with the blocked windows given back, the
     reservation is the binding constraint. Only built when tracing. *)
  let resv_blocked =
    lazy (Profile.sub (Profile.constant m) (Instance.availability base))
  in
  let events : event Event_heap.t = Event_heap.create () in
  Array.iteri (fun i (s : submitted) -> Event_heap.push events ~time:s.submit (Arrival i)) subs;
  (* Reservation edges are decision opportunities for every policy. *)
  Array.iter
    (fun t -> Event_heap.push events ~time:t Wake)
    (Profile.breakpoints (Instance.availability base));
  (* Free capacity lives in one mutable timeline for the whole run (O(log U)
     per start/release/query). Policies work against it through a [View]:
     each decision runs under a checkpoint that is rolled back afterwards,
     so trial reservations made while deciding never leak — and no
     persistent profile is ever rebuilt on this path. *)
  let free = Timeline.of_profile (Instance.availability base) in
  let view = View.make free in
  (* The policy's per-run state is created here — plans cannot leak across
     runs by construction. *)
  let decide = policy.Policy.create ~obs in
  (* Waiting jobs in submission order; [pending] batches arrivals drained
     since the last decision (newest first), [in_queue] gives O(1)
     membership by id. *)
  let queue = ref [] in
  let pending = ref [] in
  let in_queue : (int, unit) Hashtbl.t = Hashtbl.create n in
  let starts : (int, int) Hashtbl.t = Hashtbl.create n in
  let forced = ref false in
  let width_of : (int, int) Hashtbl.t = Hashtbl.create n in
  Array.iter (fun j -> Hashtbl.replace width_of (Job.id j) (Job.q j)) estimated;
  (* Completion of job [id] at [t]: give back the over-reserved tail. *)
  let release_tail id t =
    let start = Hashtbl.find starts id in
    let planned_end = start + Hashtbl.find est_p id in
    if t < planned_end then
      Timeline.change free ~lo:t ~hi:planned_end ~delta:(Hashtbl.find width_of id)
  in
  let rec drain t =
    match Event_heap.peek_time events with
    | Some t' when t' = t ->
      (match Event_heap.pop events with
      | Some (_, Arrival i) ->
        pending := estimated.(i) :: !pending;
        Hashtbl.replace in_queue (Job.id estimated.(i)) ();
        if tracing then begin
          let j = subs.(i).job in
          Trace.emit obs
            (Trace.Job_submit { time = t; job = Job.id j; p = Job.p j; q = Job.q j })
        end
      | Some (_, Completion id) ->
        release_tail id t;
        if tracing then Trace.emit obs (Trace.Job_finish { time = t; job = id })
      | Some (_, Wake) | None -> ());
      drain t
    | _ -> ()
  in
  let start_job t j =
    let est = Hashtbl.find est_p (Job.id j) in
    let have = Timeline.min_on free ~lo:t ~hi:(t + est) in
    if have < Job.q j then
      raise
        (Policy_error
           (Format.asprintf
              "%s started %a at t=%d without capacity: window [%d,%d) needs %d but offers %d"
              policy.Policy.name Job.pp j t t (t + est) (Job.q j) have));
    Timeline.reserve free ~start:t ~dur:est ~need:(Job.q j);
    Hashtbl.replace starts (Job.id j) t;
    forced := false;
    Event_heap.push events ~time:(t + Hashtbl.find actual_p (Job.id j)) (Completion (Job.id j))
  in
  let last_t = ref (-1) in
  let rec loop () =
    match Event_heap.peek_time events with
    | None ->
      if !queue <> [] then
        if !forced then
          raise
            (Policy_error
               (Format.asprintf "%s deadlocked at t=%d with %d queued jobs (head %a)"
                  policy.Policy.name !last_t (List.length !queue) Job.pp (List.hd !queue)))
        else begin
          (* No event left but jobs wait: past the last breakpoint the whole
             machine is free, so a correct policy must start them; wake it
             once. *)
          forced := true;
          let wake_at = max (!last_t + 1) (Timeline.last_breakpoint free) in
          if tracing then Trace.emit obs (Trace.Sim_wake { time = wake_at; forced = true });
          Event_heap.push events ~time:wake_at Wake;
          loop ()
        end
    | Some t ->
      drain t;
      last_t := t;
      if !pending <> [] then begin
        queue := !queue @ List.rev !pending;
        pending := []
      end;
      let q_now = !queue in
      View.set_now view t;
      let spec = Timeline.checkpoint free in
      let action = decide ~time:t ~queue:q_now ~free:view in
      Timeline.rollback free spec;
      let start_now = action.Policy.start_now and wake = action.Policy.wake in
      (* Validate starts against the id set — O(1) per started job. A started
         id must be queued and not already started this decision. *)
      let started_set : (int, unit) Hashtbl.t =
        Hashtbl.create (1 + (2 * List.length start_now))
      in
      List.iter
        (fun j ->
          let id = Job.id j in
          if (not (Hashtbl.mem in_queue id)) || Hashtbl.mem started_set id then
            raise
              (Policy_error
                 (Format.asprintf "%s started %a at t=%d which is not in the queue"
                    policy.Policy.name Job.pp j t));
          Hashtbl.replace started_set id ())
        start_now;
      (* Start provenance: a job that overtakes an earlier-queued job that
         stays waiting was backfilled; classification happens against the
         pre-start queue order, before the timeline mutates. *)
      if tracing then begin
        Trace.emit obs
          (Trace.Decision
             {
               time = t;
               policy = policy.Policy.name;
               queued = List.length q_now;
               started = List.length start_now;
               wake;
             });
        if start_now <> [] then begin
          let pos_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
          List.iteri (fun i qj -> Hashtbl.replace pos_of (Job.id qj) i) q_now;
          let first_wait =
            let rec go pos = function
              | [] -> None
              | j :: _ when not (Hashtbl.mem started_set (Job.id j)) -> Some pos
              | _ :: rest -> go (pos + 1) rest
            in
            go 0 q_now
          in
          List.iter
            (fun j ->
              let pos = Hashtbl.find pos_of (Job.id j) in
              let provenance =
                match first_wait with
                | Some wpos when pos > wpos -> Trace.Backfilled_ahead_of_head
                | _ -> Trace.Started_now
              in
              Trace.emit obs
                (Trace.Job_start
                   {
                     time = t;
                     job = Job.id j;
                     wait = t - Hashtbl.find submit_of (Job.id j);
                     provenance;
                   }))
            start_now
        end
      end;
      List.iter (fun j -> start_job t j) start_now;
      (* Why is the head (the first job left waiting) not running? Checked
         after the starts, against the capacity it actually faces. *)
      if tracing then begin
        match List.find_opt (fun j -> not (Hashtbl.mem started_set (Job.id j))) q_now with
        | None -> ()
        | Some jh ->
          let est = Hashtbl.find est_p (Job.id jh) in
          let need = Job.q jh in
          let have = Timeline.min_on free ~lo:t ~hi:(t + est) in
          let reason =
            if have >= need then Trace.Held_by_policy
            else begin
              (* The only profile export left in the simulator: a lazily
                 evaluated tracing-only classification aid. *)
              let without_resv =
                Profile.add (Timeline.to_profile ~from:t free) (Lazy.force resv_blocked)
              in
              if Profile.min_on without_resv ~lo:t ~hi:(t + est) >= need then
                Trace.Blocked_by_reservation
              else Trace.Blocked_by_capacity
            end
          in
          Trace.emit obs
            (Trace.Head_blocked
               {
                 time = t;
                 policy = policy.Policy.name;
                 job = Job.id jh;
                 reason;
                 lo = t;
                 hi = t + est;
                 need;
                 have;
               })
      end;
      if start_now <> [] then begin
        List.iter (fun j -> Hashtbl.remove in_queue (Job.id j)) start_now;
        queue := List.filter (fun j -> Hashtbl.mem in_queue (Job.id j)) !queue
      end;
      (match wake with
      | Some w when w > t -> Event_heap.push events ~time:w Wake
      | Some _ | None -> ());
      loop ()
  in
  Prof.with_span ~cat:"sim" ("simulate/" ^ policy.Policy.name) loop;
  let records =
    Array.to_list subs
    |> List.map (fun (s : submitted) ->
           { job = s.job; submit = s.submit; start = Hashtbl.find starts (Job.id s.job) })
  in
  let makespan = List.fold_left (fun acc r -> max acc (r.start + Job.p r.job)) 0 records in
  { m; reservations; records; makespan }

let run ?obs ~policy ~m ?(reservations = []) (submissions : submitted list) =
  let estimates =
    Array.of_list (List.map (fun (s : submitted) -> Job.p s.job) submissions)
  in
  run_estimated ?obs ~policy ~m ~reservations ~estimates submissions

let to_offline trace =
  let jobs =
    List.mapi (fun i r -> Job.make ~id:i ~p:(Job.p r.job) ~q:(Job.q r.job)) trace.records
  in
  let inst = Instance.create_exn ~m:trace.m ~jobs ~reservations:trace.reservations in
  let starts = Array.of_list (List.map (fun r -> r.start) trace.records) in
  (inst, Schedule.make starts)
