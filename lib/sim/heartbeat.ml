(* Heartbeat rows: the JSONL wire format around [Simulator.heartbeat].

   One line per snapshot. Simulation-data fields (everything the simulator
   measured, the P² wait quantiles and the deterministic registry section)
   live at the top level; wall-clock enrichment (elapsed seconds, jobs/s,
   peak RSS, "wall."-prefixed registry metrics) is segregated under the
   single "wall" member, so a consumer — or a determinism test — drops
   exactly one key to obtain a byte-stable view of the run. *)

module Jsonu = Resa_obs.Jsonu
module Reg = Resa_obs.Metrics

type wall = {
  elapsed_s : float;
  jobs_per_s : float;
  rss_mb : float option;
  wall_metrics : (string * float) list;
}

type row = {
  run : string option;
  hb : Simulator.heartbeat;
  wait_p50 : float;
  wait_p95 : float;
  utilization : float;
  metrics : (string * float) list;
  wall : wall option;
}

(* Histograms flatten to two scalars; counters and gauges to one. The
   names stay registry names, so a row can be joined back to an
   exposition. *)
let flatten views =
  List.concat_map
    (fun (name, v) ->
      match v with
      | Reg.Counter_v n | Reg.Gauge_v n -> [ (name, float_of_int n) ]
      | Reg.Histogram_v h ->
        [ (name ^ ".count", float_of_int h.Reg.count); (name ^ ".sum", float_of_int h.Reg.sum) ])
    views

let registry_sections () =
  let sim, wall =
    List.partition (fun (name, _) -> not (Reg.is_wall name)) (Reg.snapshot ())
  in
  (flatten sim, flatten wall)

let make ?run ?stream ?(registry = false) ?wall hb =
  let wait_p50, wait_p95, utilization =
    match stream with
    | None -> (Float.nan, Float.nan, Float.nan)
    | Some ms ->
      let s = Metrics.Stream.summary ms in
      (Metrics.Stream.wait_p50 ms, Metrics.Stream.wait_p95 ms, s.Metrics.utilization)
  in
  let metrics, wall_metrics =
    if registry && Reg.enabled () then registry_sections () else ([], [])
  in
  let wall =
    match wall with
    | None -> None
    | Some w -> Some { w with wall_metrics = w.wall_metrics @ wall_metrics }
  in
  { run; hb; wait_p50; wait_p95; utilization; metrics; wall }

(* --- JSON ---------------------------------------------------------------- *)

(* JSON has no NaN: unknown floats (quantiles before the first observation,
   RSS off-Linux) serialise as null and parse back as nan/None. *)
let fnum f = if Float.is_finite f then Jsonu.Num f else Jsonu.Null

let to_json r =
  let open Jsonu in
  let i n = Num (float_of_int n) in
  let hb = r.hb in
  let metrics_obj kvs = Obj (List.map (fun (k, v) -> (k, fnum v)) kvs) in
  let fields =
    [
      ("ev", Str "heartbeat");
      ("seq", i hb.Simulator.hb_seq);
      ("t", i hb.Simulator.hb_time);
      ("events", i hb.Simulator.hb_events);
      ("admitted", i hb.Simulator.hb_admitted);
      ("completed", i hb.Simulator.hb_completed);
      ("queued", i hb.Simulator.hb_queued);
      ("live", i hb.Simulator.hb_live);
      ("makespan", i hb.Simulator.hb_makespan);
      ("nodes", i hb.Simulator.hb_nodes);
      ("wait_p50", fnum r.wait_p50);
      ("wait_p95", fnum r.wait_p95);
      ("util", fnum r.utilization);
    ]
  in
  let fields = match r.run with None -> fields | Some name -> ("run", Str name) :: fields in
  let fields =
    if r.metrics = [] then fields else fields @ [ ("metrics", metrics_obj r.metrics) ]
  in
  let fields =
    match r.wall with
    | None -> fields
    | Some w ->
      let wfields =
        [ ("elapsed_s", fnum w.elapsed_s); ("jobs_per_s", fnum w.jobs_per_s) ]
        @ (match w.rss_mb with None -> [ ("rss_mb", Null) ] | Some v -> [ ("rss_mb", fnum v) ])
        @ if w.wall_metrics = [] then [] else [ ("metrics", metrics_obj w.wall_metrics) ]
      in
      fields @ [ ("wall", Obj wfields) ]
  in
  Obj fields

let strip_wall = function
  | Jsonu.Obj kvs -> Jsonu.Obj (List.filter (fun (k, _) -> k <> "wall") kvs)
  | j -> j

let of_json j =
  let ( let* ) o f = Option.bind o f in
  let int k = Option.bind (Jsonu.member k j) Jsonu.to_int in
  let num from k =
    match Jsonu.member k from with
    | Some (Jsonu.Num f) -> Some f
    | Some Jsonu.Null -> Some Float.nan
    | _ -> None
  in
  let metrics_of = function
    | Some (Jsonu.Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
          match v with Jsonu.Num f -> Some (k, f) | Jsonu.Null -> Some (k, Float.nan) | _ -> None)
        kvs
    | _ -> []
  in
  let row =
    let* () = match Jsonu.member "ev" j with Some (Jsonu.Str "heartbeat") -> Some () | _ -> None in
    let* hb_seq = int "seq" in
    let* hb_time = int "t" in
    let* hb_events = int "events" in
    let* hb_admitted = int "admitted" in
    let* hb_completed = int "completed" in
    let* hb_queued = int "queued" in
    let* hb_live = int "live" in
    let* hb_makespan = int "makespan" in
    let* hb_nodes = int "nodes" in
    let* wait_p50 = num j "wait_p50" in
    let* wait_p95 = num j "wait_p95" in
    let* utilization = num j "util" in
    let run = Option.bind (Jsonu.member "run" j) Jsonu.to_str in
    let metrics = metrics_of (Jsonu.member "metrics" j) in
    let wall =
      match Jsonu.member "wall" j with
      | Some (Jsonu.Obj _ as w) ->
        let* elapsed_s = num w "elapsed_s" in
        let* jobs_per_s = num w "jobs_per_s" in
        let rss_mb =
          match Jsonu.member "rss_mb" w with Some (Jsonu.Num f) -> Some f | _ -> None
        in
        Some (Some { elapsed_s; jobs_per_s; rss_mb; wall_metrics = metrics_of (Jsonu.member "metrics" w) })
      | _ -> Some None
    in
    let* wall = wall in
    Some
      {
        run;
        hb =
          Simulator.
            {
              hb_seq;
              hb_time;
              hb_events;
              hb_admitted;
              hb_completed;
              hb_queued;
              hb_live;
              hb_makespan;
              hb_nodes;
            };
        wait_p50;
        wait_p95;
        utilization;
        metrics;
        wall;
      }
  in
  match row with Some r -> Ok r | None -> Error "not a heartbeat row"

let parse_line line =
  match Jsonu.of_string line with Error m -> Error m | Ok j -> of_json j

let write oc r =
  output_string oc (Jsonu.to_string (to_json r));
  output_char oc '\n'
