(** Heartbeat rows: the JSONL wire format around {!Simulator.heartbeat}.

    A streamed replay with a sampler attached emits one JSON object per
    snapshot ([{"ev":"heartbeat", ...}], run-tagged like trace events).
    Simulation-data fields — the sampler's counts, the P² wait quantiles,
    utilization and the deterministic registry section — live at the top
    level and are identical across runs and executor pool sizes.
    Wall-clock enrichment is segregated under the single ["wall"] member
    ({!strip_wall} removes exactly that key), mirroring the
    [Trace]/[Prof] split: drop ["wall"] and the stream is byte-stable. *)

type wall = {
  elapsed_s : float;  (** Wall seconds since the replay started. *)
  jobs_per_s : float;  (** Completed jobs per wall second so far. *)
  rss_mb : float option;  (** Process peak RSS ([Prof.peak_rss_kb]). *)
  wall_metrics : (string * float) list;
      (** Flattened ["wall."]-prefixed registry metrics. *)
}

type row = {
  run : string option;
  hb : Simulator.heartbeat;
  wait_p50 : float;  (** P² median wait; [nan] before any start. *)
  wait_p95 : float;
  utilization : float;  (** [nan] when no stream accumulator was given. *)
  metrics : (string * float) list;
      (** Deterministic registry section: non-["wall."] counters and
          gauges by name, histograms flattened to [.count]/[.sum]. *)
  wall : wall option;
}

val make :
  ?run:string ->
  ?stream:Metrics.Stream.t ->
  ?registry:bool ->
  ?wall:wall ->
  Simulator.heartbeat ->
  row
(** Assemble a row. [stream] supplies quantiles and utilization (defaults
    to [nan]s); [registry] (default [false]) snapshots
    [Resa_obs.Metrics] when collection is enabled, splitting
    ["wall."]-prefixed metrics into the [wall] section; [wall] attaches
    the wall-clock block. *)

val to_json : row -> Resa_obs.Jsonu.t
(** [nan] floats serialise as [null] (JSON has no NaN) and parse back as
    [nan]. *)

val of_json : Resa_obs.Jsonu.t -> (row, string) result

val parse_line : string -> (row, string) result

val strip_wall : Resa_obs.Jsonu.t -> Resa_obs.Jsonu.t
(** Drop the ["wall"] member — the deterministic view of a row. *)

val write : out_channel -> row -> unit
(** One JSONL line, with trailing newline. *)
