(** Bridge from finished simulation traces to the Chrome trace-event
    exporter: a Gantt-style view loadable in Perfetto / chrome://tracing.

    One track per processor (the deterministic packing from
    {!Resa_core.Gantt.assign_processors}), a slice per (job, processor)
    pair, plus a separate ["reservations"] track — processor identity for a
    reservation is a rendering choice, not a scheduling fact. Simulation
    time maps to trace microseconds, 1 unit = 1 µs. *)

val chrome_slices : ?process:string -> Simulator.trace -> Resa_obs.Chrome.slice list
(** [process] names the Chrome process grouping all tracks (default
    ["simulation"]); pass the policy name when exporting several runs into
    one file. Wide jobs appear once per assigned processor, so a [q]-wide
    job yields [q] identical-looking slices at the same instant. *)
