(** Advance-reservation admission under the α cap.

    Production batch systems "impose a limit on the reservation feature to
    ensure a good behavior of the system" (paper §1.4, §4.2). The book
    accepts a reservation request only if the total blocked capacity stays
    within [(1−α)·m] at every instant, which keeps the workload inside
    α-RESASCHEDULING and therefore inside LSRC's [2/α] guarantee. *)

open Resa_core

type t

type rejection =
  | Too_wide of { q : int; cap : int }
      (** The request alone exceeds the per-instant cap. *)
  | Saturated of { time : int; blocked : int; cap : int }
      (** Granting it would block more than the cap at [time]. *)

val create : ?obs:Resa_obs.Trace.t -> m:int -> alpha:float -> unit -> t
(** Requires [m >= 1] and [alpha ∈ (0, 1]]. With a live tracer [?obs]
    (default {!Resa_obs.Trace.null}), every admission decision is emitted as
    a {!Resa_obs.Trace.Resv_accept} (with the granted id) or
    {!Resa_obs.Trace.Resv_reject} (with the rendered rejection reason). *)

val cap : t -> int
(** The per-instant blocked-capacity budget [⌊(1−α)·m⌋]. *)

val request : t -> start:int -> p:int -> q:int -> (Reservation.t, rejection) result
(** Grant or reject; granted reservations get consecutive ids and are
    remembered. *)

val accepted : t -> Reservation.t list
(** Granted reservations, in grant order. *)

val blocked_profile : t -> Profile.t
(** Current total blocked capacity over time. *)

val pp_rejection : Format.formatter -> rejection -> unit
