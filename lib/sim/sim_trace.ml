open Resa_core
module Chrome = Resa_obs.Chrome

let chrome_slices ?(process = "simulation") (trace : Simulator.trace) =
  let inst, sched = Simulator.to_offline trace in
  let assignment = Gantt.assign_processors inst sched in
  let records = Array.of_list trace.records in
  let slices = ref [] in
  (* Reservations occupy their own track: processor identity for them is a
     rendering choice, not a scheduling fact. *)
  Array.iter
    (fun r ->
      slices :=
        {
          Chrome.process;
          track = "reservations";
          name = Printf.sprintf "R%d" (Reservation.id r);
          cat = "reservation";
          ts_us = Reservation.start r;
          dur_us = max 1 (Reservation.stop r - Reservation.start r);
          args = [ ("q", string_of_int (Reservation.q r)) ];
        }
        :: !slices)
    (Instance.reservations inst);
  Array.iteri
    (fun i procs ->
      let r = records.(i) in
      let j = r.Simulator.job in
      Array.iter
        (fun proc ->
          slices :=
            {
              Chrome.process;
              track = Printf.sprintf "cpu %d" proc;
              name = Printf.sprintf "J%d" (Job.id j);
              cat = "job";
              ts_us = r.Simulator.start;
              dur_us = max 1 (Job.p j);
              args =
                [
                  ("q", string_of_int (Job.q j));
                  ("submit", string_of_int r.Simulator.submit);
                  ("wait", string_of_int (r.Simulator.start - r.Simulator.submit));
                ];
            }
            :: !slices)
        procs)
    assignment;
  List.rev !slices
