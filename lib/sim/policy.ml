open Resa_core
module Trace = Resa_obs.Trace
module Prof = Resa_obs.Prof

type action = {
  start_now : Job.t list;
  wake : int option;
}

type t = {
  name : string;
  decide : time:int -> queue:Job.t list -> free:Profile.t -> action;
}

let fits free ~time job = Profile.min_on free ~lo:time ~hi:(time + Job.p job) >= Job.q job

let earliest free ~from job =
  Option.get (Profile.earliest_fit free ~from ~dur:(Job.p job) ~need:(Job.q job))

(* Per-policy decision counters (RESA_PROF). *)
let c_fcfs = Prof.counter "policy.decide.FCFS"
let c_lsrc = Prof.counter "policy.decide.LSRC"
let c_easy = Prof.counter "policy.decide.EASY"
let c_cons = Prof.counter "policy.decide.CONS"

let fcfs ?(obs = Trace.null) () =
  let decide ~time ~queue ~free =
    Prof.incr c_fcfs;
    (* Start the longest startable prefix; the blocked head, if any, yields
       the next wake-up. *)
    let rec go free = function
      | [] -> ([], None)
      | head :: rest when fits free ~time head ->
        let free = Profile.reserve free ~start:time ~dur:(Job.p head) ~need:(Job.q head) in
        let started, wake = go free rest in
        (head :: started, wake)
      | head :: _ ->
        let at = earliest free ~from:(time + 1) head in
        if Trace.enabled obs then
          Trace.emit obs (Trace.Planned { time; policy = "FCFS"; job = Job.id head; at });
        ([], Some at)
    in
    let start_now, wake = go free queue in
    { start_now; wake }
  in
  { name = "FCFS"; decide }

let aggressive ?(obs = Trace.null) () =
  ignore obs;
  let decide ~time ~queue ~free =
    Prof.incr c_lsrc;
    let rec go free = function
      | [] -> []
      | j :: rest when fits free ~time j ->
        let free = Profile.reserve free ~start:time ~dur:(Job.p j) ~need:(Job.q j) in
        j :: go free rest
      | _ :: rest -> go free rest
    in
    { start_now = go free queue; wake = None }
  in
  { name = "LSRC"; decide }

let easy ?(obs = Trace.null) () =
  let decide ~time ~queue ~free =
    Prof.incr c_easy;
    let rec pop_prefix free = function
      | head :: rest when fits free ~time head ->
        let free = Profile.reserve free ~start:time ~dur:(Job.p head) ~need:(Job.q head) in
        let started, wake = pop_prefix free rest in
        (head :: started, wake)
      | [] -> ([], None)
      | head :: rest ->
        (* Head blocked: protect its guaranteed start while backfilling. *)
        let guaranteed = earliest free ~from:time head in
        if Trace.enabled obs then
          Trace.emit obs
            (Trace.Planned { time; policy = "EASY"; job = Job.id head; at = guaranteed });
        let rec backfill free = function
          | [] -> []
          | j :: tl ->
            if fits free ~time j then begin
              let free' = Profile.reserve free ~start:time ~dur:(Job.p j) ~need:(Job.q j) in
              if earliest free' ~from:time head <= guaranteed then j :: backfill free' tl
              else backfill free tl
            end
            else backfill free tl
        in
        (backfill free rest, Some guaranteed)
    in
    let start_now, wake = pop_prefix free queue in
    { start_now; wake }
  in
  { name = "EASY"; decide }

let conservative ?(obs = Trace.null) () =
  let planned : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let plan = ref None (* plan profile, lazily initialised from [free] *) in
  let decide ~time ~queue ~free =
    Prof.incr c_cons;
    let p = match !plan with None -> free | Some p -> p in
    (* Plan newly arrived jobs at their earliest non-delaying start. *)
    let p =
      List.fold_left
        (fun p j ->
          if Hashtbl.mem planned (Job.id j) then p
          else begin
            let s = earliest p ~from:time j in
            Hashtbl.replace planned (Job.id j) s;
            if Trace.enabled obs then
              Trace.emit obs (Trace.Planned { time; policy = "CONS"; job = Job.id j; at = s });
            Profile.reserve p ~start:s ~dur:(Job.p j) ~need:(Job.q j)
          end)
        p queue
    in
    (* Launch jobs whose planned instant has come; replan stragglers
       defensively (should not happen when wake-ups are honoured). *)
    let p = ref p in
    let start_now =
      List.filter
        (fun j ->
          let s = Hashtbl.find planned (Job.id j) in
          if s = time then true
          else if s < time then begin
            (* Undo the stale window, replan from now. *)
            p := Profile.change !p ~lo:s ~hi:(s + Job.p j) ~delta:(Job.q j);
            let s' = earliest !p ~from:time j in
            Hashtbl.replace planned (Job.id j) s';
            if Trace.enabled obs then
              Trace.emit obs (Trace.Planned { time; policy = "CONS"; job = Job.id j; at = s' });
            p := Profile.reserve !p ~start:s' ~dur:(Job.p j) ~need:(Job.q j);
            s' = time
          end
          else false)
        queue
    in
    plan := Some !p;
    let wake =
      List.fold_left
        (fun acc j ->
          let s = Hashtbl.find planned (Job.id j) in
          if s > time then Some (match acc with None -> s | Some a -> min a s) else acc)
        None
        (List.filter (fun j -> not (List.memq j start_now)) queue)
    in
    { start_now; wake }
  in
  { name = "CONS"; decide }

let all ?obs () = [ fcfs ?obs (); conservative ?obs (); easy ?obs (); aggressive ?obs () ]
