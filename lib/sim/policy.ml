open Resa_core
module Trace = Resa_obs.Trace
module Prof = Resa_obs.Prof

type action = {
  start_now : Job.t list;
  wake : int option;
}

type decide = time:int -> queue:Job.t list -> free:View.t -> action

type t = {
  name : string;
  create : obs:Resa_obs.Trace.t -> decide;
}

(* --- timeline-native policies ------------------------------------------- *)

let fits free ~time job = View.fits free ~at:time ~dur:(Job.p job) ~need:(Job.q job)

let earliest free ~from job =
  Option.get (View.earliest_fit free ~from ~dur:(Job.p job) ~need:(Job.q job))

(* Speculative allocation of [job]'s window at [time]; retracted by the
   simulator's post-decision rollback. *)
let take free ~time job = View.reserve free ~start:time ~dur:(Job.p job) ~need:(Job.q job)

(* Per-policy decision counters (RESA_PROF). *)
let c_fcfs = Prof.counter "policy.decide.FCFS"
let c_lsrc = Prof.counter "policy.decide.LSRC"
let c_easy = Prof.counter "policy.decide.EASY"
let c_cons = Prof.counter "policy.decide.CONS"

let fcfs =
  let create ~obs ~time ~queue ~free =
    Prof.incr c_fcfs;
    (* Start the longest startable prefix; the blocked head, if any, yields
       the next wake-up. *)
    let rec go = function
      | [] -> ([], None)
      | head :: rest when fits free ~time head ->
        take free ~time head;
        let started, wake = go rest in
        (head :: started, wake)
      | head :: _ ->
        let at = earliest free ~from:(time + 1) head in
        if Trace.enabled obs then
          Trace.emit obs (Trace.Planned { time; policy = "FCFS"; job = Job.id head; at });
        ([], Some at)
    in
    let start_now, wake = go queue in
    { start_now; wake }
  in
  { name = "FCFS"; create }

let aggressive =
  let create ~obs:_ ~time ~queue ~free =
    Prof.incr c_lsrc;
    let rec go = function
      | [] -> []
      | j :: rest when fits free ~time j ->
        take free ~time j;
        j :: go rest
      | _ :: rest -> go rest
    in
    { start_now = go queue; wake = None }
  in
  { name = "LSRC"; create }

let easy =
  let create ~obs ~time ~queue ~free =
    Prof.incr c_easy;
    let rec pop_prefix = function
      | head :: rest when fits free ~time head ->
        take free ~time head;
        let started, wake = pop_prefix rest in
        (head :: started, wake)
      | [] -> ([], None)
      | head :: rest ->
        (* Head blocked: protect its guaranteed start while backfilling.
           Each candidate is tried under a checkpoint — reserved, the
           guarantee re-derived — and kept or rolled back. *)
        let guaranteed = earliest free ~from:time head in
        if Trace.enabled obs then
          Trace.emit obs
            (Trace.Planned { time; policy = "EASY"; job = Job.id head; at = guaranteed });
        let rec backfill acc = function
          | [] -> List.rev acc
          | j :: tl ->
            if fits free ~time j then begin
              let mark = View.checkpoint free in
              take free ~time j;
              if earliest free ~from:time head <= guaranteed then begin
                View.commit free mark;
                backfill (j :: acc) tl
              end
              else begin
                View.rollback free mark;
                backfill acc tl
              end
            end
            else backfill acc tl
        in
        (backfill [] rest, Some guaranteed)
    in
    let start_now, wake = pop_prefix queue in
    { start_now; wake }
  in
  { name = "EASY"; create }

let conservative =
  let create ~obs =
    (* Per-run plan state, freshly scoped by the factory: the plan timeline
       holds availability minus every planned (and once-planned) window;
       [planned] maps job id to its promised start. *)
    let planned : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let plan = ref None in
    let decisions = ref 0 in
    fun ~time ~queue ~free ->
      Prof.incr c_cons;
      incr decisions;
      let p =
        match !plan with
        | Some p -> p
        | None ->
          (* First decision: seed the plan with the forward capacity (the
             only profile export conservative ever pays, once per run). *)
          let p = Timeline.of_profile (View.snapshot free) in
          plan := Some p;
          p
      in
      (* The plan accretes one window per job forever; on streamed replays
         that history is the policy's only unbounded state. Planning only
         ever queries at or after [time], so compacting the past is
         invisible to decisions (and hence to traces). *)
      if !decisions land 4095 = 0 then Timeline.gc p ~upto:time;
      let plan_job j ~from =
        let s =
          Option.get (Timeline.earliest_fit p ~from ~dur:(Job.p j) ~need:(Job.q j))
        in
        Hashtbl.replace planned (Job.id j) s;
        if Trace.enabled obs then
          Trace.emit obs (Trace.Planned { time; policy = "CONS"; job = Job.id j; at = s });
        Timeline.reserve p ~start:s ~dur:(Job.p j) ~need:(Job.q j);
        s
      in
      (* Plan newly arrived jobs at their earliest non-delaying start. *)
      List.iter
        (fun j -> if not (Hashtbl.mem planned (Job.id j)) then ignore (plan_job j ~from:time))
        queue;
      (* Launch jobs whose planned instant has come; replan stragglers
         defensively (should not happen when wake-ups are honoured). *)
      let start_now =
        List.filter
          (fun j ->
            let s = Hashtbl.find planned (Job.id j) in
            if s = time then true
            else if s < time then begin
              (* Undo the stale window with the inverse range-add, replan
                 from now. *)
              Timeline.change p ~lo:s ~hi:(s + Job.p j) ~delta:(Job.q j);
              plan_job j ~from:time = time
            end
            else false)
          queue
      in
      (* A started job never reappears in the queue, so its promise entry is
         dead — dropping it here keeps [planned] proportional to the live
         queue. Its plan window stays reserved: the machine really is
         occupied. *)
      List.iter (fun j -> Hashtbl.remove planned (Job.id j)) start_now;
      let started : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      List.iter (fun j -> Hashtbl.replace started (Job.id j) ()) start_now;
      let wake =
        List.fold_left
          (fun acc j ->
            if Hashtbl.mem started (Job.id j) then acc
            else begin
              let s = Hashtbl.find planned (Job.id j) in
              if s > time then Some (match acc with None -> s | Some a -> min a s) else acc
            end)
          None queue
      in
      { start_now; wake }
  in
  { name = "CONS"; create }

let all = [ fcfs; conservative; easy; aggressive ]

(* --- Profile-based reference oracles ------------------------------------ *)

(* The pre-timeline-native engine, verbatim: every decision exports the
   forward profile once (what the simulator used to hand every policy) and
   re-derives its plan with persistent [Profile] chains. Same names, same
   decisions — the differential suite holds the native policies to that. *)

let p_fits free ~time job = Profile.min_on free ~lo:time ~hi:(time + Job.p job) >= Job.q job

let p_earliest free ~from job =
  Option.get (Profile.earliest_fit free ~from ~dur:(Job.p job) ~need:(Job.q job))

let fcfs_reference =
  let create ~obs ~time ~queue ~free =
    let free = View.snapshot free in
    let rec go free = function
      | [] -> ([], None)
      | head :: rest when p_fits free ~time head ->
        let free = Profile.reserve free ~start:time ~dur:(Job.p head) ~need:(Job.q head) in
        let started, wake = go free rest in
        (head :: started, wake)
      | head :: _ ->
        let at = p_earliest free ~from:(time + 1) head in
        if Trace.enabled obs then
          Trace.emit obs (Trace.Planned { time; policy = "FCFS"; job = Job.id head; at });
        ([], Some at)
    in
    let start_now, wake = go free queue in
    { start_now; wake }
  in
  { name = "FCFS"; create }

let aggressive_reference =
  let create ~obs:_ ~time ~queue ~free =
    let free = View.snapshot free in
    let rec go free = function
      | [] -> []
      | j :: rest when p_fits free ~time j ->
        let free = Profile.reserve free ~start:time ~dur:(Job.p j) ~need:(Job.q j) in
        j :: go free rest
      | _ :: rest -> go free rest
    in
    { start_now = go free queue; wake = None }
  in
  { name = "LSRC"; create }

let easy_reference =
  let create ~obs ~time ~queue ~free =
    let free = View.snapshot free in
    let rec pop_prefix free = function
      | head :: rest when p_fits free ~time head ->
        let free = Profile.reserve free ~start:time ~dur:(Job.p head) ~need:(Job.q head) in
        let started, wake = pop_prefix free rest in
        (head :: started, wake)
      | [] -> ([], None)
      | head :: rest ->
        let guaranteed = p_earliest free ~from:time head in
        if Trace.enabled obs then
          Trace.emit obs
            (Trace.Planned { time; policy = "EASY"; job = Job.id head; at = guaranteed });
        let rec backfill free = function
          | [] -> []
          | j :: tl ->
            if p_fits free ~time j then begin
              let free' = Profile.reserve free ~start:time ~dur:(Job.p j) ~need:(Job.q j) in
              if p_earliest free' ~from:time head <= guaranteed then j :: backfill free' tl
              else backfill free tl
            end
            else backfill free tl
        in
        (backfill free rest, Some guaranteed)
    in
    let start_now, wake = pop_prefix free queue in
    { start_now; wake }
  in
  { name = "EASY"; create }

let conservative_reference =
  let create ~obs =
    let planned : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let plan = ref None in
    fun ~time ~queue ~free ->
      (* The per-decision snapshot is the cost being measured: the old
         engine rebuilt this profile at every event whether or not the
         decision consulted it. *)
      let snap = View.snapshot free in
      let p = match !plan with None -> snap | Some p -> p in
      let p =
        List.fold_left
          (fun p j ->
            if Hashtbl.mem planned (Job.id j) then p
            else begin
              let s = p_earliest p ~from:time j in
              Hashtbl.replace planned (Job.id j) s;
              if Trace.enabled obs then
                Trace.emit obs (Trace.Planned { time; policy = "CONS"; job = Job.id j; at = s });
              Profile.reserve p ~start:s ~dur:(Job.p j) ~need:(Job.q j)
            end)
          p queue
      in
      let p = ref p in
      let start_now =
        List.filter
          (fun j ->
            let s = Hashtbl.find planned (Job.id j) in
            if s = time then true
            else if s < time then begin
              p := Profile.change !p ~lo:s ~hi:(s + Job.p j) ~delta:(Job.q j);
              let s' = p_earliest !p ~from:time j in
              Hashtbl.replace planned (Job.id j) s';
              if Trace.enabled obs then
                Trace.emit obs (Trace.Planned { time; policy = "CONS"; job = Job.id j; at = s' });
              p := Profile.reserve !p ~start:s' ~dur:(Job.p j) ~need:(Job.q j);
              s' = time
            end
            else false)
          queue
      in
      plan := Some !p;
      let wake =
        List.fold_left
          (fun acc j ->
            let s = Hashtbl.find planned (Job.id j) in
            if s > time then Some (match acc with None -> s | Some a -> min a s) else acc)
          None
          (List.filter (fun j -> not (List.memq j start_now)) queue)
      in
      { start_now; wake }
  in
  { name = "CONS"; create }

let all_reference =
  [ fcfs_reference; conservative_reference; easy_reference; aggressive_reference ]
