type 'a entry = { time : int; seq : int; payload : 'a }

(* Slots at or beyond [len] are always [None]: a popped entry (and its
   payload) must not stay reachable from the backing array, or a long
   simulation retains every event it ever processed. [None] is the dummy
   that makes the invariant typeable for an arbitrary ['a]. *)
type 'a t = {
  mutable data : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

(* Observability counters (RESA_PROF); one flag load per op when disabled. *)
let c_push = Resa_obs.Prof.counter "event_heap.push"
let c_pop = Resa_obs.Prof.counter "event_heap.pop"

let is_empty h = h.len = 0
let size h = h.len

let get h i = match h.data.(i) with Some e -> e | None -> assert false

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let cap = max 16 (2 * Array.length h.data) in
  let data = Array.make cap None in
  Array.blit h.data 0 data 0 h.len;
  h.data <- data

let push h ~time payload =
  Resa_obs.Prof.incr c_push;
  if time < 0 then invalid_arg "Event_heap.push: negative time";
  let entry = { time; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  if h.len = Array.length h.data then grow h;
  h.data.(h.len) <- Some entry;
  h.len <- h.len + 1;
  (* Sift up. *)
  let i = ref (h.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before (get h !i) (get h parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = h.data.(parent) in
    h.data.(parent) <- h.data.(!i);
    h.data.(!i) <- tmp;
    i := parent
  done

let peek_time h = if h.len = 0 then None else Some (get h 0).time

let pop h =
  Resa_obs.Prof.incr c_pop;
  if h.len = 0 then None
  else begin
    let top = get h 0 in
    h.len <- h.len - 1;
    h.data.(0) <- h.data.(h.len);
    h.data.(h.len) <- None;
    if h.len > 0 then begin
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && before (get h l) (get h !smallest) then smallest := l;
        if r < h.len && before (get h r) (get h !smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.payload)
  end

let clear h =
  Array.fill h.data 0 (Array.length h.data) None;
  h.len <- 0;
  h.next_seq <- 0

let live_entries h =
  Array.fold_left (fun acc -> function Some _ -> acc + 1 | None -> acc) 0 h.data
