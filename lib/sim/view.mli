(** Read/speculate access to the simulator's live capacity timeline.

    A view is what a {!Policy.t} sees instead of a rebuilt persistent
    profile: a thin window onto the single mutable {!Resa_core.Timeline.t}
    that the simulator maintains across the whole run. Queries
    ([value_at]/[min_on]/[earliest_fit]/[fits]) cost O(log U) against the
    live tree — no per-event materialisation — and mutations
    ([reserve]/[change]) are {e speculative}: the simulator opens a
    checkpoint around every [decide] call and rolls it back afterwards, so
    a policy may freely reserve trial windows while reasoning and return
    only the jobs to start; the authoritative reservations are applied by
    the simulator itself.

    Policies must not inspect instants before {!now} (the current decision
    time): unlike the old collapsed forward profile, the live timeline
    carries real history there.

    Nested speculation inside a decision uses {!checkpoint} /
    {!rollback} / {!commit} directly (strictly LIFO, delegating to
    {!Resa_core.Timeline}), or the bracketed {!speculate}. [commit] keeps a
    trial relative to the enclosing scope — the simulator's outer rollback
    still retracts it after the decision.

    {!snapshot} exports the forward profile from [now] — exactly what
    policies used to receive — in O(k · log U) for k forward breakpoints,
    by walking [next_breakpoint_after]. It exists for the Profile-based
    [*_reference] oracle policies and for tracing/diagnostic code; the
    timeline-native policies never call it. *)

open Resa_core

type t

val make : Timeline.t -> t
(** Wrap a timeline. The timeline stays owned by the caller (the
    simulator), which advances the decision instant with [set_now]. *)

val set_now : t -> int -> unit
(** Simulator-side: set the current decision instant. *)

val now : t -> int
(** The current decision instant. *)

val value_at : t -> int -> int
val min_on : t -> lo:int -> hi:int -> int
val earliest_fit : t -> from:int -> dur:int -> need:int -> int option

val fits : t -> at:int -> dur:int -> need:int -> bool
(** [fits v ~at ~dur ~need] iff the whole window [\[at, at+dur)] has
    capacity [need]. *)

val reserve : t -> start:int -> dur:int -> need:int -> unit
(** Speculatively subtract capacity (checked, like [Timeline.reserve]).
    Retracted by the simulator's post-decision rollback. *)

val change : t -> lo:int -> hi:int -> delta:int -> unit
(** Unchecked speculative range-add. *)

type mark

val checkpoint : t -> mark
val rollback : t -> mark -> unit
val commit : t -> mark -> unit

val speculate : t -> (unit -> 'a) -> 'a
(** [speculate v f] runs [f] under a fresh checkpoint and always rolls it
    back (also on exceptions): pure what-if evaluation. *)

val snapshot : t -> Profile.t
(** The forward capacity profile from [now]: constant at [value_at (now v)]
    on the collapsed past, exact afterwards. *)
