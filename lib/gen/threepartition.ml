open Resa_core

type t = { xs : int array; b : int }

let make ~xs ~b =
  let n = Array.length xs in
  if n = 0 || n mod 3 <> 0 then Error "Threepartition.make: |xs| must be a positive multiple of 3"
  else if Array.exists (fun x -> x < 1) xs then Error "Threepartition.make: xs must be positive"
  else if b < 3 then Error "Threepartition.make: b must be >= 3"
  else
    let k = n / 3 in
    if Array.fold_left ( + ) 0 xs <> k * b then Error "Threepartition.make: sum xs must equal k*b"
    else Ok { xs = Array.copy xs; b }

let make_exn ~xs ~b =
  match make ~xs ~b with Ok t -> t | Error msg -> invalid_arg msg

let k t = Array.length t.xs / 3

let check_assignment t groups =
  let kk = k t in
  Array.length groups = Array.length t.xs
  && Array.for_all (fun g -> g >= 0 && g < kk) groups
  &&
  let sums = Array.make kk 0 and counts = Array.make kk 0 in
  Array.iteri
    (fun i g ->
      sums.(g) <- sums.(g) + t.xs.(i);
      counts.(g) <- counts.(g) + 1)
    groups;
  Array.for_all (fun s -> s = t.b) sums && Array.for_all (fun c -> c = 3) counts

let solve t =
  let n = Array.length t.xs in
  let kk = k t in
  (* Items sorted by decreasing value; each is assigned to a triple with
     enough remaining budget and fewer than 3 members. Forcing an item into
     the first currently-empty triple breaks group symmetry. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a bb -> Int.compare t.xs.(bb) t.xs.(a)) order;
  let budget = Array.make kk t.b and count = Array.make kk 0 in
  let assign = Array.make n (-1) in
  let rec dfs pos =
    if pos = n then true
    else begin
      let i = order.(pos) in
      let rec try_group g seen_empty =
        if g >= kk then false
        else begin
          let empty = count.(g) = 0 in
          if empty && seen_empty then false (* only the first empty triple *)
          else if budget.(g) >= t.xs.(i) && count.(g) < 3
                  (* A triple with 2 members must be completed exactly later;
                     prune when the residue is no longer achievable. *)
                  && (count.(g) < 2 || budget.(g) = t.xs.(i) || budget.(g) - t.xs.(i) >= 1)
          then begin
            budget.(g) <- budget.(g) - t.xs.(i);
            count.(g) <- count.(g) + 1;
            assign.(i) <- g;
            if dfs (pos + 1) then true
            else begin
              budget.(g) <- budget.(g) + t.xs.(i);
              count.(g) <- count.(g) - 1;
              assign.(i) <- -1;
              try_group (g + 1) (seen_empty || empty)
            end
          end
          else try_group (g + 1) (seen_empty || empty)
        end
      in
      try_group 0 false
    end
  in
  if dfs 0 then Some assign else None

let is_yes t = solve t <> None

let random_yes rng ~k:kk ~b =
  if kk < 1 then invalid_arg "Threepartition.random_yes: k must be >= 1";
  if b < 3 then invalid_arg "Threepartition.random_yes: b must be >= 3";
  let xs = Array.make (3 * kk) 0 in
  for g = 0 to kk - 1 do
    let x1 = Prng.int_incl rng ~lo:1 ~hi:(b - 2) in
    let x2 = Prng.int_incl rng ~lo:1 ~hi:(b - x1 - 1) in
    let x3 = b - x1 - x2 in
    xs.((3 * g) + 0) <- x1;
    xs.((3 * g) + 1) <- x2;
    xs.((3 * g) + 2) <- x3
  done;
  Prng.shuffle rng xs;
  make_exn ~xs ~b

let random rng ~k:kk ~b =
  if kk < 1 then invalid_arg "Threepartition.random: k must be >= 1";
  if b < 3 then invalid_arg "Threepartition.random: b must be >= 3";
  let n = 3 * kk in
  let xs = Array.init n (fun _ -> Prng.int_incl rng ~lo:1 ~hi:(b - 2)) in
  (* Repair the total to k*b by bounded increments/decrements. *)
  let total = ref (Array.fold_left ( + ) 0 xs) in
  let target = kk * b in
  let guard = ref 0 in
  while !total <> target && !guard < 100_000 do
    incr guard;
    let i = Prng.int rng ~bound:n in
    if !total < target && xs.(i) < b - 2 then begin
      xs.(i) <- xs.(i) + 1;
      incr total
    end
    else if !total > target && xs.(i) > 1 then begin
      xs.(i) <- xs.(i) - 1;
      decr total
    end
  done;
  if !total <> target then invalid_arg "Threepartition.random: could not reach target sum";
  make_exn ~xs ~b

let pp ppf t =
  Format.fprintf ppf "3PART(b=%d, xs=[%a])" t.b
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") Format.pp_print_int)
    (Array.to_seq t.xs)
