open Resa_core

type t = {
  instance : Instance.t;
  witness : Schedule.t;
  optimal : int;
}

(* A block of the guillotine partition: [w × h] at position (t0, proc0). *)
type block = { t0 : int; w : int; h : int }

let split_block rng b =
  (* Split along a random feasible dimension; returns None if 1×1. *)
  let can_time = b.w > 1 and can_proc = b.h > 1 in
  if not (can_time || can_proc) then None
  else
    let time_cut = can_time && ((not can_proc) || Prng.bool rng) in
    if time_cut then begin
      let w1 = Prng.int_incl rng ~lo:1 ~hi:(b.w - 1) in
      Some ({ b with w = w1 }, { b with t0 = b.t0 + w1; w = b.w - w1 })
    end
    else begin
      let h1 = Prng.int_incl rng ~lo:1 ~hi:(b.h - 1) in
      Some ({ b with h = h1 }, { b with h = b.h - h1 })
    end

let generate rng ~m ~c ~target_jobs ?(reservation_fraction = 0.0) () =
  if m < 1 || c < 1 || target_jobs < 1 then invalid_arg "Packed.generate: bad dimensions";
  if reservation_fraction < 0.0 || reservation_fraction >= 1.0 then
    invalid_arg "Packed.generate: reservation_fraction must be in [0,1)";
  (* Split loop: keep an array of blocks, split random splittable ones. *)
  let blocks = ref [ { t0 = 0; w = c; h = m } ] in
  let count = ref 1 in
  let continue = ref true in
  while !count < target_jobs && !continue do
    let splittable, solid = List.partition (fun b -> b.w > 1 || b.h > 1) !blocks in
    match splittable with
    | [] -> continue := false
    | _ ->
      let arr = Array.of_list splittable in
      let idx = Prng.int rng ~bound:(Array.length arr) in
      let rest = Array.to_list (Array.init (Array.length arr - 1) (fun i -> arr.(if i < idx then i else i + 1))) in
      (match split_block rng arr.(idx) with
      | None -> assert false
      | Some (b1, b2) ->
        blocks := b1 :: b2 :: rest @ solid;
        incr count)
  done;
  let blocks = Array.of_list !blocks in
  (* Choose reservations; maintain per-time-column job coverage >= 1. *)
  let n = Array.length blocks in
  let is_res = Array.make n false in
  if reservation_fraction > 0.0 && n > 1 then begin
    (* Track how many job blocks cover each time unit. *)
    let cover = Array.make c 0 in
    Array.iter (fun b -> for t = b.t0 to b.t0 + b.w - 1 do cover.(t) <- cover.(t) + 1 done) blocks;
    let order = Array.init n (fun i -> i) in
    Prng.shuffle rng order;
    let wanted = int_of_float (reservation_fraction *. float_of_int n) in
    let taken = ref 0 in
    Array.iter
      (fun i ->
        if !taken < wanted then begin
          let b = blocks.(i) in
          let ok = ref true in
          for t = b.t0 to b.t0 + b.w - 1 do
            if cover.(t) <= 1 then ok := false
          done;
          if !ok then begin
            is_res.(i) <- true;
            incr taken;
            for t = b.t0 to b.t0 + b.w - 1 do
              cover.(t) <- cover.(t) - 1
            done
          end
        end)
      order
  end;
  let jobs = ref [] and starts = ref [] and reservations = ref [] in
  let jid = ref 0 and rid = ref 0 in
  Array.iteri
    (fun i b ->
      if is_res.(i) then begin
        reservations := Reservation.make ~id:!rid ~start:b.t0 ~p:b.w ~q:b.h :: !reservations;
        incr rid
      end
      else begin
        jobs := Job.make ~id:!jid ~p:b.w ~q:b.h :: !jobs;
        starts := b.t0 :: !starts;
        incr jid
      end)
    blocks;
  let instance =
    Instance.create_exn ~m ~jobs:(List.rev !jobs) ~reservations:(List.rev !reservations)
  in
  let witness = Schedule.make (Array.of_list (List.rev !starts)) in
  (match Schedule.validate instance witness with
  | Ok () -> ()
  | Error v ->
    invalid_arg (Format.asprintf "Packed.generate: internal witness infeasible: %a" Schedule.pp_violation v));
  assert (Schedule.makespan instance witness = c);
  { instance; witness; optimal = c }
