open Resa_core

let prop2 ~k =
  if k < 3 then invalid_arg "Adversarial.prop2: k must be >= 3";
  let m = k * k * (k - 1) in
  let short_wide = List.init k (fun i -> Job.make ~id:i ~p:1 ~q:((k - 1) * (k - 1))) in
  let long = List.init (k - 1) (fun i -> Job.make ~id:(k + i) ~p:k ~q:((k * (k - 1)) + 1)) in
  let reservation =
    Reservation.make ~id:0 ~start:k ~p:(2 * k * k) ~q:(k * (k - 1) * (k - 2))
  in
  let inst = Instance.create_exn ~m ~jobs:(short_wide @ long) ~reservations:[ reservation ] in
  (inst, k)

let prop2_alpha ~k = 2.0 /. float_of_int k

let prop2_expected_lsrc ~k = (k * k) - k + 1

let fcfs_bad ~m ~len =
  if m < 1 then invalid_arg "Adversarial.fcfs_bad: m must be >= 1";
  if len < 1 then invalid_arg "Adversarial.fcfs_bad: len must be >= 1";
  let jobs =
    List.concat
      (List.init m (fun i ->
           [ Job.make ~id:(2 * i) ~p:len ~q:1; Job.make ~id:((2 * i) + 1) ~p:1 ~q:m ]))
  in
  let inst = Instance.create_exn ~m ~jobs ~reservations:[] in
  (inst, len + m)

let graham_tight ~m =
  if m < 2 then invalid_arg "Adversarial.graham_tight: m must be >= 2";
  let units = List.init (m * (m - 1)) (fun i -> Job.make ~id:i ~p:1 ~q:1) in
  let long = Job.make ~id:(m * (m - 1)) ~p:m ~q:1 in
  let inst = Instance.create_exn ~m ~jobs:(units @ [ long ]) ~reservations:[] in
  (inst, m)

let figure2_example () =
  (* m=10; U drops 6 → 3 → 0 at times 4 and 9 (three availability levels, as
     in Figure 2), plus a handful of jobs. *)
  let reservations =
    [
      Reservation.make ~id:0 ~start:0 ~p:4 ~q:3;
      Reservation.make ~id:1 ~start:0 ~p:9 ~q:3;
    ]
  in
  let jobs =
    [
      Job.make ~id:0 ~p:5 ~q:4;
      Job.make ~id:1 ~p:3 ~q:3;
      Job.make ~id:2 ~p:6 ~q:2;
      Job.make ~id:3 ~p:2 ~q:7;
      Job.make ~id:4 ~p:4 ~q:5;
    ]
  in
  Instance.create_exn ~m:10 ~jobs ~reservations
