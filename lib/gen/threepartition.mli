(** 3-PARTITION instances (Garey & Johnson), the source problem of the
    paper's Theorem 1 reduction.

    An instance is [3k] positive integers summing to [k·b]; the question is
    whether they can be split into [k] triples each summing to [b]. *)

open Resa_core

type t = private { xs : int array; b : int }

val make : xs:int array -> b:int -> (t, string) result
(** Checks [|xs|] is a positive multiple of 3, all [xs] positive, and
    [Σ xs = (|xs|/3)·b]. *)

val make_exn : xs:int array -> b:int -> t

val k : t -> int
(** Number of triples. *)

val solve : t -> int array option
(** Exact search: [Some groups] maps each item to a triple index such that
    every triple has exactly 3 items summing to [b]; [None] for NO
    instances. Exponential in the worst case; intended for the small
    instances of the FIG1 experiment (k ≤ ~8). *)

val is_yes : t -> bool

val check_assignment : t -> int array -> bool
(** Validates a claimed solution. *)

val random_yes : Prng.t -> k:int -> b:int -> t
(** A YES instance built from [k] random triples summing to [b]
    ([b >= 3]). *)

val random : Prng.t -> k:int -> b:int -> t
(** Random instance with the right total ([Σ = k·b]) but no planted
    solution — may be YES or NO. *)

val pp : Format.formatter -> t -> unit
