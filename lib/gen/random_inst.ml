open Resa_core

let random_jobs rng ~n ~qmax ~pmax =
  List.init n (fun i ->
      Job.make ~id:i ~p:(Prng.int_incl rng ~lo:1 ~hi:pmax) ~q:(Prng.int_incl rng ~lo:1 ~hi:qmax))

let alpha_restricted rng ~m ~n ~alpha ~pmax ?n_reservations ?horizon () =
  if not (alpha > 0.0 && alpha <= 1.0) then invalid_arg "Random_inst.alpha_restricted: bad alpha";
  let qmax = int_of_float (alpha *. float_of_int m +. 1e-9) in
  if qmax < 1 then invalid_arg "Random_inst.alpha_restricted: alpha*m < 1";
  let u_cap = int_of_float ((1.0 -. alpha) *. float_of_int m +. 1e-9) in
  let n_reservations = Option.value n_reservations ~default:(n / 4) in
  let horizon = Option.value horizon ~default:((n * pmax / 2) + 1) in
  let jobs = random_jobs rng ~n ~qmax ~pmax in
  let reservations = ref [] and u = ref (Profile.constant 0) in
  let added = ref 0 and attempts = ref 0 in
  while !added < n_reservations && !attempts < 20 * (n_reservations + 1) && u_cap >= 1 do
    incr attempts;
    let start = Prng.int rng ~bound:horizon in
    let p = Prng.int_incl rng ~lo:1 ~hi:pmax in
    let q = Prng.int_incl rng ~lo:1 ~hi:u_cap in
    let u' = Profile.change !u ~lo:start ~hi:(start + p) ~delta:q in
    if Profile.max_value u' <= u_cap then begin
      u := u';
      reservations := Reservation.make ~id:!added ~start ~p ~q :: !reservations;
      incr added
    end
  done;
  Instance.create_exn ~m ~jobs ~reservations:(List.rev !reservations)

let cluster_workload rng ~m ~n ~max_runtime =
  let jobs =
    List.init n (fun i ->
        (* Width: 2^k with k log-ish-uniform, occasionally off-by-one to
           model non-power-of-two requests. *)
        let max_exp =
          let rec go e = if 1 lsl (e + 1) > m then e else go (e + 1) in
          go 0
        in
        let q0 = 1 lsl Prng.int_incl rng ~lo:0 ~hi:max_exp in
        let q =
          if Prng.int rng ~bound:5 = 0 then max 1 (min m (q0 + Prng.int_incl rng ~lo:(-1) ~hi:1))
          else q0
        in
        let p = Prng.log_uniform_int rng ~lo:1 ~hi:max_runtime in
        Job.make ~id:i ~p ~q)
  in
  Instance.create_exn ~m ~jobs ~reservations:[]

let non_increasing rng ~m ~n ~pmax ~levels =
  if levels < 1 then invalid_arg "Random_inst.non_increasing: levels must be >= 1";
  let jobs = random_jobs rng ~n ~qmax:m ~pmax in
  (* Build descending staircase reservations all starting at 0: random end
     times and widths with total width <= m − 1. *)
  let budget = ref (m - 1) in
  let reservations = ref [] in
  let idx = ref 0 in
  while !idx < levels && !budget >= 1 do
    let q = Prng.int_incl rng ~lo:1 ~hi:!budget in
    let p = Prng.int_incl rng ~lo:1 ~hi:(max 1 (pmax * (levels - !idx))) in
    reservations := Reservation.make ~id:!idx ~start:0 ~p ~q :: !reservations;
    budget := !budget - q;
    incr idx
  done;
  Instance.create_exn ~m ~jobs ~reservations:(List.rev !reservations)
