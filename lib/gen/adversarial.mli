(** Deterministic worst-case instance families from the paper.

    Each builder returns the instance together with its (known, certified by
    construction) optimal makespan. *)

open Resa_core

val prop2 : k:int -> Instance.t * int
(** Proposition 2 / Figure 3 instance for [α = 2/k], [k >= 3], in integer
    time scaled by [k]:
    [m = k²(k−1)]; [k] short-wide jobs (p=1, q=(k−1)²) listed first; [k−1]
    long jobs (p=k, q=k(k−1)+1); one reservation of [k(k−1)(k−2)] processors
    over [\[k, k+2k²)]. The optimum is [k]; FIFO LSRC yields
    [k(k−1)+1 = k² − k + 1], i.e. ratio [2/α − 1 + α/2].
    (Figure 3 shows the unscaled [k=6] member: C_opt=6, LSRC=31.) *)

val prop2_alpha : k:int -> float
(** The α value [2/k] of the [prop2] family. *)

val prop2_expected_lsrc : k:int -> int
(** [k² − k + 1], the FIFO-LSRC makespan proved in Proposition 2. *)

val fcfs_bad : m:int -> len:int -> Instance.t * int
(** The §2.2 family showing FCFS has no constant guarantee: [m] pairs
    (narrow p=[len] q=1; wide p=1 q=[m]) in alternating FIFO order.
    Optimum [len + m]; FCFS produces [m·(len+1)], so the ratio approaches
    [m] as [len] grows. Requires [m >= 1], [len >= 1]. *)

val graham_tight : m:int -> Instance.t * int
(** Reservation-free family on which FIFO LSRC attains exactly the Graham
    guarantee [2 − 1/m] (Theorem 2): [m(m−1)] unit jobs followed by one
    (p=[m], q=1) job. Optimum [m]; LSRC gives [2m − 1]. Requires
    [m >= 2]. *)

val figure2_example : unit -> Instance.t
(** A small fixed instance with non-increasing reservations shaped like
    Figure 2 (three availability levels), used by tests and examples of the
    Proposition 1 transformation. *)
