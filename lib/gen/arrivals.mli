(** Arrival-time streams for the online algorithms and the simulator. *)

open Resa_core

val poisson : Prng.t -> n:int -> mean_gap:float -> int array
(** [n] non-decreasing integer arrival times with exponential
    inter-arrival gaps of the given mean (> 0); first arrival at time 0. *)

val uniform : Prng.t -> n:int -> horizon:int -> int array
(** [n] sorted arrival times uniform over [\[0, horizon)]. *)

val bursts : Prng.t -> n:int -> burst_size:int -> gap:int -> int array
(** Arrivals in bursts of [burst_size] simultaneous jobs, bursts separated
    by [gap] time units — the "demonstration at a scheduled meeting"
    pattern. *)
