open Resa_core

let poisson rng ~n ~mean_gap =
  if n < 0 then invalid_arg "Arrivals.poisson: negative n";
  let t = ref 0.0 in
  Array.init n (fun i ->
      if i = 0 then 0
      else begin
        t := !t +. Prng.exponential rng ~mean:mean_gap;
        int_of_float !t
      end)

let uniform rng ~n ~horizon =
  if n < 0 || horizon < 1 then invalid_arg "Arrivals.uniform: bad parameters";
  let a = Array.init n (fun _ -> Prng.int rng ~bound:horizon) in
  Array.sort Int.compare a;
  a

let bursts rng ~n ~burst_size ~gap =
  if burst_size < 1 || gap < 1 then invalid_arg "Arrivals.bursts: bad parameters";
  ignore rng;
  Array.init n (fun i -> i / burst_size * gap)
