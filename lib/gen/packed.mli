(** Random instances with a *known* optimal makespan.

    The [m × c] time–processor rectangle is split by a random guillotine
    process into axis-aligned blocks; each block becomes a job (duration =
    width, processors = height) placed at its block position in the witness
    schedule, so the jobs pack the machine perfectly and the optimum is
    exactly [c] (the work bound [W/m] matches the witness).

    Optionally some blocks are turned into reservations instead of jobs; the
    selection maintains the invariants that keep the optimum provably equal
    to [c]: at least one processor runs a job at every instant of [\[0, c)]
    (so the availability-aware work bound still equals [c]).

    These instances drive ratio measurements at sizes where branch and bound
    is out of reach (experiments T1 and T2). *)

open Resa_core

type t = {
  instance : Instance.t;
  witness : Schedule.t;  (** A feasible schedule of makespan exactly [c]. *)
  optimal : int;  (** = [c]. *)
}

val generate :
  Prng.t -> m:int -> c:int -> target_jobs:int -> ?reservation_fraction:float -> unit -> t
(** [generate rng ~m ~c ~target_jobs ()] splits until about [target_jobs]
    blocks exist (fewer when the rectangle cannot be split further).
    [reservation_fraction] (default 0) is the fraction of blocks the
    generator *attempts* to convert into reservations; conversions that
    would break the known-optimum invariant are skipped. The result is
    α-restricted for any α between [qmax/m] and [1 − umax/m] (see
    [Instance.alpha_interval]).

    Requires [m >= 1], [c >= 1], [target_jobs >= 1],
    [0 <= reservation_fraction < 1]. *)
