(** Random workload generators.

    Two families:
    - [alpha_restricted]: uniformly random jobs and reservations constrained
      to α-RESASCHEDULING (paper §4.2) — used for the T2 ratio sweeps;
    - [cluster_workload]: jobs shaped like batch-cluster traces
      (power-of-two-biased widths, log-uniform runtimes), the synthetic
      substitute for production traces (DESIGN.md §5);
    - [non_increasing]: random instances whose reservations form a
      non-increasing staircase (paper §4.1), for the FIG2 experiment. *)

open Resa_core

val alpha_restricted :
  Prng.t ->
  m:int ->
  n:int ->
  alpha:float ->
  pmax:int ->
  ?n_reservations:int ->
  ?horizon:int ->
  unit ->
  Instance.t
(** Jobs: [q] uniform in [\[1, ⌊αm⌋\]], [p] uniform in [\[1, pmax\]].
    Reservations: up to [n_reservations] (default [n/4]) random windows in
    [\[0, horizon)] (default [n·pmax/2 + 1]), each kept only if the total
    unavailability stays within [(1−α)m]. The result always satisfies
    [Instance.is_alpha_restricted ~alpha]. Requires [⌊αm⌋ >= 1]. *)

val cluster_workload :
  Prng.t -> m:int -> n:int -> max_runtime:int -> Instance.t
(** Reservation-free workload with power-of-two-biased widths (clamped to
    [m]) and log-uniform runtimes in [\[1, max_runtime\]]. *)

val non_increasing :
  Prng.t -> m:int -> n:int -> pmax:int -> levels:int -> Instance.t
(** Random jobs plus a random non-increasing unavailability staircase with
    at most [levels] descending steps; [U(0) <= m − 1] so at least one
    processor is always available. Satisfies
    [Transform.is_non_increasing]. *)
