open Resa_core
open Resa_gen

type entry = {
  job_number : int;
  submit : int;
  wait : int;
  run : int;
  alloc_procs : int;
  avg_cpu : int;
  used_mem : int;
  req_procs : int;
  req_time : int;
  req_mem : int;
  status : int;
  user : int;
  group : int;
  app : int;
  queue : int;
  partition : int;
  preceding : int;
  think_time : int;
}

let default =
  {
    job_number = 0;
    submit = 0;
    wait = -1;
    run = -1;
    alloc_procs = -1;
    avg_cpu = -1;
    used_mem = -1;
    req_procs = -1;
    req_time = -1;
    req_mem = -1;
    status = -1;
    user = -1;
    group = -1;
    app = -1;
    queue = -1;
    partition = -1;
    preceding = -1;
    think_time = -1;
  }

let field_names =
  [|
    "job_number"; "submit"; "wait"; "run"; "alloc_procs"; "avg_cpu"; "used_mem"; "req_procs";
    "req_time"; "req_mem"; "status"; "user"; "group"; "app"; "queue"; "partition"; "preceding";
    "think_time";
  |]

let is_blank line = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') line

let parse_line line =
  if is_blank line then Ok None
  else if String.length line > 0 && line.[0] = ';' then Ok None
  else begin
    let tokens =
      (* '\r' joins the separators so CRLF traces parse: otherwise the final
         field of every line would arrive as e.g. "18\r" and fail numeric
         conversion. *)
      String.split_on_char ' '
        (String.map (fun c -> if c = '\t' || c = '\r' then ' ' else c) line)
      |> List.filter (fun s -> s <> "")
    in
    if List.length tokens < 18 then
      Error (Printf.sprintf "expected 18 fields, found %d" (List.length tokens))
    else begin
      let values = Array.make 18 0 in
      let bad = ref None in
      List.iteri
        (fun i tok ->
          if i < 18 && !bad = None then
            match int_of_string_opt tok with
            | Some v -> values.(i) <- v
            | None ->
              (* The archive stores a few fields (e.g. average CPU) as
                 floats; accept them. Durations round {e up}: truncating a
                 0.9-second runtime to 0 would turn a job that occupied the
                 machine into a no-work entry that [carries_work] drops. *)
              (match float_of_string_opt tok with
              | Some f ->
                values.(i) <- (if i = 3 || i = 8 then int_of_float (Float.ceil f) else int_of_float f)
              | None -> bad := Some (Printf.sprintf "field %s: %S is not a number" field_names.(i) tok)))
        tokens;
      match !bad with
      | Some msg -> Error msg
      | None ->
        Ok
          (Some
             {
               job_number = values.(0);
               submit = values.(1);
               wait = values.(2);
               run = values.(3);
               alloc_procs = values.(4);
               avg_cpu = values.(5);
               used_mem = values.(6);
               req_procs = values.(7);
               req_time = values.(8);
               req_mem = values.(9);
               status = values.(10);
               user = values.(11);
               group = values.(12);
               app = values.(13);
               queue = values.(14);
               partition = values.(15);
               preceding = values.(16);
               think_time = values.(17);
             })
    end
  end

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some e) -> go (lineno + 1) (e :: acc) rest
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] lines

let to_line e =
  Printf.sprintf "%d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d" e.job_number e.submit
    e.wait e.run e.alloc_procs e.avg_cpu e.used_mem e.req_procs e.req_time e.req_mem e.status
    e.user e.group e.app e.queue e.partition e.preceding e.think_time

let to_string ?(comments = []) entries =
  let buf = Buffer.create 1024 in
  List.iter (fun c -> Buffer.add_string buf ("; " ^ c ^ "\n")) comments;
  List.iter
    (fun e ->
      Buffer.add_string buf (to_line e);
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

(* Entries with neither a positive runtime nor a positive request carry no
   work at all (jobs cancelled before starting, archive status 0/5 stubs);
   converting them used to fabricate phantom 1-second jobs via [max 1]. *)
let carries_work e = e.run > 0 || e.req_time > 0

let keep ~keep_failed e = carries_work e && (keep_failed || e.status <> 0)

let to_workload ?(keep_failed = true) entries ~m =
  List.filter (keep ~keep_failed) entries
  |> List.mapi (fun i e ->
         let q0 = if e.req_procs > 0 then e.req_procs else e.alloc_procs in
         let q = max 1 (min m q0) in
         let p0 = if e.run > 0 then e.run else e.req_time in
         let p = max 1 p0 in
         (Job.make ~id:i ~p ~q, max 0 e.submit))

let of_workload triples =
  List.mapi
    (fun i (job, submit, start) ->
      {
        default with
        job_number = i + 1;
        submit;
        wait = start - submit;
        run = Job.p job;
        alloc_procs = Job.q job;
        req_procs = Job.q job;
        req_time = Job.p job;
        status = 1;
      })
    triples

let estimated_of_entry ~m ~id e =
  let q0 = if e.req_procs > 0 then e.req_procs else e.alloc_procs in
  let q = max 1 (min m q0) in
  let p = max 1 e.run in
  let est = max p e.req_time in
  (Job.make ~id ~p ~q, max 0 e.submit, est)

let to_estimated_workload ?(keep_failed = true) entries ~m =
  List.filter (keep ~keep_failed) entries |> List.mapi (fun i e -> estimated_of_entry ~m ~id:i e)

let job_numbers ?(keep_failed = true) entries =
  List.filter (keep ~keep_failed) entries |> List.map (fun e -> e.job_number) |> Array.of_list

let generate ?(overestimate = 1.0) rng ~m ~n ~max_runtime ~mean_gap =
  if overestimate < 1.0 then invalid_arg "Swf.generate: overestimate must be >= 1.0";
  let inst = Random_inst.cluster_workload rng ~m ~n ~max_runtime in
  let arrivals = Arrivals.poisson rng ~n ~mean_gap in
  List.init n (fun i ->
      let j = Instance.job inst i in
      let req_time =
        if overestimate <= 1.0 then Job.p j
        else
          (* Factor uniform in [1, 2*overestimate - 1]: mean = overestimate. *)
          let f = 1.0 +. Prng.float rng ~bound:(2.0 *. (overestimate -. 1.0)) in
          max (Job.p j) (int_of_float (f *. float_of_int (Job.p j)))
      in
      {
        default with
        job_number = i + 1;
        submit = arrivals.(i);
        run = Job.p j;
        req_time;
        req_procs = Job.q j;
        alloc_procs = Job.q j;
        status = 1;
        user = 1 + (i mod 13);
      })
