open Resa_core

type arrival = { job : Job.t; submit : int; estimate : int; job_number : int }

type t = unit -> arrival option

exception Parse_error of { line : int; msg : string }

let () =
  Printexc.register_printer (function
    | Parse_error { line; msg } -> Some (Printf.sprintf "Swf_stream.Parse_error(line %d: %s)" line msg)
    | _ -> None)

(* Shared kernel with the batch converters: same keep rule, same clamping,
   ids renumbered consecutively over kept entries. *)
let of_lines ?(keep_failed = true) ~m next_line =
  let lineno = ref 0 in
  let next_id = ref 0 in
  let rec next () =
    match next_line () with
    | None -> None
    | Some line ->
      incr lineno;
      (match Swf.parse_line line with
      | Error msg -> raise (Parse_error { line = !lineno; msg })
      | Ok None -> next ()
      | Ok (Some e) ->
        if Swf.keep ~keep_failed e then begin
          let id = !next_id in
          incr next_id;
          let job, submit, estimate = Swf.estimated_of_entry ~m ~id e in
          Some { job; submit; estimate; job_number = e.job_number }
        end
        else next ())
  in
  next

let of_channel ?keep_failed ~m ic = of_lines ?keep_failed ~m (fun () -> In_channel.input_line ic)

let of_string ?keep_failed ~m text =
  let lines = ref (String.split_on_char '\n' text) in
  of_lines ?keep_failed ~m (fun () ->
      match !lines with
      | [] -> None
      | l :: rest ->
        lines := rest;
        Some l)

let with_file ?keep_failed ~m path f =
  In_channel.with_open_text path (fun ic -> f (of_channel ?keep_failed ~m ic))

let of_entries ?(keep_failed = true) ~m entries =
  let remaining = ref entries in
  let next_id = ref 0 in
  let rec next () =
    match !remaining with
    | [] -> None
    | e :: rest ->
      remaining := rest;
      if Swf.keep ~keep_failed e then begin
        let id = !next_id in
        incr next_id;
        let job, submit, estimate = Swf.estimated_of_entry ~m ~id e in
        Some { job; submit; estimate; job_number = e.job_number }
      end
      else next ()
  in
  next

let synthetic ?(overestimate = 1.0) rng ~m ~n ~max_runtime ~mean_gap =
  if overestimate < 1.0 then invalid_arg "Swf_stream.synthetic: overestimate must be >= 1.0";
  if n < 0 then invalid_arg "Swf_stream.synthetic: negative n";
  let max_exp =
    let rec go e = if 1 lsl (e + 1) > m then e else go (e + 1) in
    go 0
  in
  let i = ref 0 in
  let clock = ref 0.0 in
  fun () ->
    if !i >= n then None
    else begin
      let id = !i in
      incr i;
      (* All randomness for job [id] is drawn here, in one fixed order —
         width, runtime, gap, walltime factor — so the stream is a pure
         function of (seed, id prefix) and never materialises the trace.
         The marginals match [Swf.generate] (power-of-two-biased widths,
         log-uniform runtimes, exponential gaps) but the interleaving
         differs, so the two are distinct deterministic families: replays
         cite one or the other, never mix. *)
      let q0 = 1 lsl Prng.int_incl rng ~lo:0 ~hi:max_exp in
      let q =
        if Prng.int rng ~bound:5 = 0 then max 1 (min m (q0 + Prng.int_incl rng ~lo:(-1) ~hi:1))
        else q0
      in
      let p = Prng.log_uniform_int rng ~lo:1 ~hi:max_runtime in
      if id > 0 then clock := !clock +. Prng.exponential rng ~mean:mean_gap;
      let submit = int_of_float !clock in
      let estimate =
        if overestimate <= 1.0 then p
        else begin
          (* Factor uniform in [1, 2*overestimate - 1]: mean = overestimate. *)
          let f = 1.0 +. Prng.float rng ~bound:(2.0 *. (overestimate -. 1.0)) in
          max p (int_of_float (f *. float_of_int p))
        end
      in
      Some { job = Job.make ~id ~p ~q; submit; estimate; job_number = id + 1 }
    end

let iter src f =
  let rec go () =
    match src () with
    | None -> ()
    | Some a ->
      f a;
      go ()
  in
  go ()

let to_list src =
  let acc = ref [] in
  iter src (fun a -> acc := a :: !acc);
  List.rev !acc
