(** Constant-memory SWF ingestion.

    A stream is a pull iterator over the jobs of a trace: each call yields
    the next kept entry already converted to simulator terms, and nothing —
    no line list, no entry list, no job array — is retained behind it. This
    is the input side of the streaming replay path (DESIGN.md §9): a 10M-job
    archive trace flows through the simulator in one pass at flat RSS.

    Conversion semantics are shared with the batch converters by
    construction — the same {!Swf.keep} filter and the same
    {!Swf.estimated_of_entry} kernel, ids renumbered consecutively over kept
    entries — so draining a stream yields exactly
    [Swf.to_estimated_workload] plus the archive job number (the
    differential suite in [test/test_stream.ml] pins this). *)

open Resa_core

type arrival = {
  job : Job.t;  (** Actual runtime and width, id renumbered over kept entries. *)
  submit : int;  (** Clamped to [>= 0] like the batch converters. *)
  estimate : int;  (** Requested walltime, at least [Job.p job]. *)
  job_number : int;  (** Field 1 of the source line — archive provenance. *)
}

type t = unit -> arrival option
(** Pull the next arrival; [None] is end of trace (and is sticky for every
    source defined here). Streams are single-pass and not thread-safe. *)

exception Parse_error of { line : int; msg : string }
(** Raised by pulls on a malformed line, with its 1-based line number — the
    streaming counterpart of [Swf.parse_string]'s [Error]. *)

val of_channel : ?keep_failed:bool -> m:int -> in_channel -> t
(** Read lines lazily from a channel. The caller owns the channel and must
    keep it open while pulling ({!with_file} scopes this). [keep_failed]
    defaults to true, as in the batch converters. *)

val with_file : ?keep_failed:bool -> m:int -> string -> (t -> 'a) -> 'a
(** [with_file path f] opens [path], hands [f] the stream and closes the
    channel when [f] returns or raises. *)

val of_string : ?keep_failed:bool -> m:int -> string -> t
(** Stream over an in-memory trace — the small-n differential oracle
    against [Swf.parse_string] + [Swf.to_estimated_workload]. *)

val of_entries : ?keep_failed:bool -> m:int -> Swf.entry list -> t
(** Stream over already-parsed entries. *)

val synthetic :
  ?overestimate:float -> Prng.t -> m:int -> n:int -> max_runtime:int -> mean_gap:float -> t
(** Deterministic synthetic trace of [n] jobs drawn one at a time — the
    source behind [resa replay --synthetic], usable at sizes where
    [Swf.generate] would not fit in memory. Marginals match
    [Swf.generate] (power-of-two-biased widths, log-uniform runtimes,
    Poisson arrivals, walltime overestimation factor with the given mean)
    but all draws for job [i] are interleaved at pull time, so for a given
    seed this is its {e own} reproducible family, not bit-equal to the
    materialised generator. Submit times are non-decreasing; job numbers
    are [1..n]. *)

val iter : t -> (arrival -> unit) -> unit
(** Drain the stream, applying [f] to every arrival. *)

val to_list : t -> arrival list
(** Drain into a list — for tests and small traces only, by definition. *)
