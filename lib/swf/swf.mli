(** Standard Workload Format (SWF) traces.

    The interchange format of the Parallel Workloads Archive: one job per
    line, 18 integer fields, [';'] comment lines. This repository cannot
    ship production traces (DESIGN.md §5), so this module provides the
    format itself — strict parser, writer, converters — plus a synthetic
    generator with archive-like marginals, making every trace-driven
    experiment reproducible from a seed and portable to real SWF files.

    Field reference (1-based as in the specification): 1 job number,
    2 submit time, 3 wait time, 4 run time, 5 allocated processors,
    6 average CPU time, 7 used memory, 8 requested processors,
    9 requested time, 10 requested memory, 11 status, 12 user, 13 group,
    14 application, 15 queue, 16 partition, 17 preceding job,
    18 think time. Unknown values are [-1]. *)

open Resa_core

type entry = {
  job_number : int;
  submit : int;
  wait : int;
  run : int;
  alloc_procs : int;
  avg_cpu : int;
  used_mem : int;
  req_procs : int;
  req_time : int;
  req_mem : int;
  status : int;
  user : int;
  group : int;
  app : int;
  queue : int;
  partition : int;
  preceding : int;
  think_time : int;
}

val default : entry
(** All fields [-1] except [job_number = 0], [submit = 0]. *)

val parse_line : string -> (entry option, string) result
(** [Ok None] for comment and blank lines; [Error _] names the offending
    field. Fields beyond the 18th are tolerated and ignored (some archive
    files carry trailing annotations). *)

val parse_string : string -> (entry list, string) result
(** Whole-file parse; errors are prefixed with the 1-based line number. *)

val to_line : entry -> string

val to_string : ?comments:string list -> entry list -> string
(** Render a trace, with optional [';']-prefixed header comments. *)

val to_workload : ?keep_failed:bool -> entry list -> m:int -> (Job.t * int) list
(** [(job, submit)] pairs ready for the simulator or {!Resa_algos.Online}:
    processors are [req_procs] (falling back to [alloc_procs]), clamped to
    [\[1, m\]]; runtimes are [run] (falling back to [req_time], minimum 1).
    Entries with neither a positive [run] nor a positive [req_time] (jobs
    cancelled before starting) represent no work and are skipped — they
    used to become phantom 1-second jobs. Jobs with [status = 0] (failed)
    are kept by default — they occupied the machine — and dropped with
    [~keep_failed:false]. Ids are renumbered consecutively over the kept
    entries. *)

val of_workload : (Job.t * int * int) list -> entry list
(** [(job, submit, start)] triples (e.g. a finished simulation) back to SWF
    entries with [wait = start − submit]. *)

val to_estimated_workload :
  ?keep_failed:bool -> entry list -> m:int -> (Job.t * int * int) list
(** [(job, submit, requested_walltime)] triples for
    [Resa_sim.Simulator.run_estimated]: the job carries the *actual* runtime
    while the third component is the user's request ([req_time], clamped to
    at least the actual runtime) — the walltime-accuracy data real SWF
    traces carry. Filters entries exactly like {!to_workload}. *)

val keep : keep_failed:bool -> entry -> bool
(** The filter both converters apply: the entry carries work (positive [run]
    or [req_time]) and, unless [keep_failed], did not fail. Exposed so the
    streaming reader ({!Swf_stream}) provably applies the same rule. *)

val estimated_of_entry : m:int -> id:int -> entry -> Job.t * int * int
(** Convert one {e kept} entry exactly as {!to_estimated_workload} does,
    with the caller supplying the renumbered id — the shared kernel of the
    batch and streaming paths. *)

val job_numbers : ?keep_failed:bool -> entry list -> int array
(** Archive job numbers of the kept entries, indexed by the renumbered job
    id the converters assign — the provenance map that lets per-job metric
    rows name jobs as the original trace does. Same [keep_failed] default
    (true) and filter as {!to_workload}. *)

val generate :
  ?overestimate:float -> Prng.t -> m:int -> n:int -> max_runtime:int -> mean_gap:float -> entry list
(** Synthetic archive-like trace: power-of-two-biased widths, log-uniform
    runtimes, Poisson arrivals ({!Resa_gen.Arrivals.poisson}).
    [overestimate] (default 1.0, must be >= 1.0) sets the mean factor by
    which requested walltimes exceed actual runtimes — archive traces
    commonly show factors of 2–10. *)
