(** Certified lower bounds on the optimal makespan C_opt.

    Used to prune the exact solver and to compute approximation-ratio
    denominators on instances too large to solve exactly. Every bound here is
    valid for RESASCHEDULING: it never exceeds the true optimum. *)

open Resa_core

val min_time_with_area : Profile.t -> from:int -> area:int -> int
(** Smallest [C >= from] with [∫_from^C profile >= area]. The profile must be
    non-negative with positive tail value when [area > 0]; a non-positive
    tail raises [Invalid_argument] regardless of where [from] sits. *)

val min_time_with_area_tl : ?cap:int -> Timeline.t -> from:int -> area:int -> int
(** Timeline-native twin of {!min_time_with_area}, queried against the live
    capacity timeline of the speculative exact solver (one O(log U) descent
    via [Timeline.first_reaching_area] instead of per-segment profile
    searches). With [~cap], the scan stops as soon as the answer is known to
    be [>= cap] and returns [cap] — callers prune on [result >= bound], so
    passing [~cap:bound] never changes the outcome while bounding the walk.
    Exact whenever the true answer is below [cap]. *)

val fit_bound_tl : Timeline.t -> from:int -> Job.t array -> int
(** Timeline-native generalisation of {!fit_bound} to a partial schedule:
    each listed job alone must fit somewhere at or after [from] on the live
    timeline, so no completion of the search node can beat the latest of
    their earliest feasible window ends (never below [from]). *)

val work_bound : Instance.t -> int
(** Area argument (generalises [W/m] from Theorem 2 to reservations): the
    jobs need [W = Σ p·q] processor·time units out of the availability
    [m − U], so C_opt is at least the first instant by which that much
    area has accumulated. *)

val fit_bound : Instance.t -> int
(** Each job alone cannot complete before its earliest feasible window ends
    (generalises [pmax]). *)

val serial_bound : Instance.t -> int
(** Jobs wider than [m/2] are pairwise in conflict, hence run sequentially;
    their total duration must fit into instants where enough processors are
    available. *)

val best : Instance.t -> int
(** Maximum of all bounds above. *)
