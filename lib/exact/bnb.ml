open Resa_core
open Resa_algos

type result = {
  makespan : int;
  schedule : Schedule.t;
  optimal : bool;
  nodes : int;
}

exception Node_budget_exhausted

(* Observability: search effort and pruning mix (RESA_PROF). *)
let c_nodes = Resa_obs.Prof.counter "bnb.nodes"
let c_prunes_area = Resa_obs.Prof.counter "bnb.prunes_area"
let c_prunes_twin = Resa_obs.Prof.counter "bnb.prunes_twin"
let c_prunes_fit = Resa_obs.Prof.counter "bnb.prunes_fit"

let incumbent_schedule inst =
  (* Cheap good starting incumbent: best of a few list heuristics. *)
  let candidates =
    List.map (fun p -> Lsrc.run ~priority:p inst) Priority.standard
    @ [ Backfill.conservative inst; Backfill.easy inst ]
  in
  match candidates with
  | [] -> assert false
  | first :: rest ->
    List.fold_left
      (fun (bs, bm) s ->
        let c = Schedule.makespan inst s in
        if c < bm then (s, c) else (bs, bm))
      (first, Schedule.makespan inst first)
      rest

(* ------------------------------------------------------------------ *)
(* Frozen reference solver: the persistent-profile chronological DFS.  *)
(* Kept verbatim as the oracle twin of the speculative solver below    *)
(* (same pattern as Lsrc.run_order_reference).                         *)
(* ------------------------------------------------------------------ *)

let solve_reference ?(node_limit = 2_000_000) inst =
  let n = Instance.n_jobs inst in
  let avail = Instance.availability inst in
  let avail_bps = Array.to_list (Profile.breakpoints avail) in
  let incumbent, incumbent_cmax = incumbent_schedule inst in
  let best_sched = ref incumbent and best_cmax = ref incumbent_cmax in
  let starts = Array.make n (-1) in
  let nodes = ref 0 in
  let lb_root = Lower_bounds.best inst in
  let areas = Array.map Job.area (Instance.jobs inst) in
  let durations = Array.map Job.p (Instance.jobs inst) in
  let widths = Array.map Job.q (Instance.jobs inst) in
  let placed = Array.make n false in
  (* Symmetry: among identical jobs force placement by increasing index. *)
  let twin_before = Array.make n (-1) in
  for i = 0 to n - 1 do
    for k = 0 to i - 1 do
      if durations.(k) = durations.(i) && widths.(k) = widths.(i) && twin_before.(i) < 0 then
        twin_before.(i) <- k
    done
  done;
  (* Chronological DFS; ties in start time are explored in increasing job
     index to avoid revisiting permutations of simultaneous starts. *)
  let rec dfs depth t_prev i_prev free completions cur_cmax rem_work =
    incr nodes;
    if !nodes > node_limit then raise Node_budget_exhausted;
    if depth = n then begin
      if cur_cmax < !best_cmax then begin
        best_cmax := cur_cmax;
        best_sched := Schedule.make starts
      end
    end
    else
      let area_lb =
        if rem_work = 0 then 0
        else Lower_bounds.min_time_with_area free ~from:t_prev ~area:rem_work
      in
      if max cur_cmax area_lb < !best_cmax then begin
        let cands =
          List.sort_uniq Int.compare
            (List.filter (fun t -> t >= t_prev) (0 :: (avail_bps @ completions)))
        in
        List.iter
          (fun t ->
            let first_i = if t = t_prev then i_prev + 1 else 0 in
            for i = first_i to n - 1 do
              if
                (not placed.(i))
                && (twin_before.(i) < 0 || placed.(twin_before.(i)))
                && t + durations.(i) < !best_cmax
                && Profile.min_on free ~lo:t ~hi:(t + durations.(i)) >= widths.(i)
              then begin
                placed.(i) <- true;
                starts.(i) <- t;
                let free' = Profile.reserve free ~start:t ~dur:durations.(i) ~need:widths.(i) in
                dfs (depth + 1) t i free'
                  ((t + durations.(i)) :: completions)
                  (max cur_cmax (t + durations.(i)))
                  (rem_work - areas.(i));
                placed.(i) <- false;
                starts.(i) <- -1
              end
            done)
          cands
      end
  in
  let optimal =
    if !best_cmax <= lb_root then true (* incumbent matches a certified lower bound *)
    else
      try
        dfs 0 0 (-1) avail [] 0 (Instance.total_work inst);
        true
      with Node_budget_exhausted -> false
  in
  { makespan = !best_cmax; schedule = !best_sched; optimal; nodes = !nodes }

(* ------------------------------------------------------------------ *)
(* Speculative timeline-native solver.                                 *)
(*                                                                     *)
(* One mutable Timeline per search worker; a checkpoint is opened      *)
(* before every placement trial and rolled back on backtrack, so a     *)
(* node costs O(log U) instead of an O(segments) persistent-profile    *)
(* copy. The candidate decision-time set is a merged scan of the       *)
(* static availability breakpoints and a sorted array of live          *)
(* completion times maintained incrementally across the DFS.           *)
(*                                                                     *)
(* Parallel root splitting: the first two levels of the tree are       *)
(* expanded sequentially into subtree roots, which are then solved as  *)
(* pool tasks in fixed-size waves. The shared incumbent lives in an    *)
(* Atomic read by every worker for pruning, but it is published only   *)
(* at wave boundaries — within a wave every subtree prunes against the *)
(* same frozen bound regardless of execution interleaving. That, plus  *)
(* index-ordered merging and per-wave budget allocation computed from  *)
(* completed waves only, makes the full result record (makespan,       *)
(* schedule, optimal, nodes) bit-identical at any pool size.           *)
(* ------------------------------------------------------------------ *)

type search = {
  n : int;
  durations : int array;
  widths : int array;
  areas : int array;
  avail_bps : int array; (* sorted, starts with 0; shared, read-only *)
  twin_before : int array; (* shared, read-only *)
  free : Timeline.t;
  placed : bool array;
  starts : int array;
  comps : int array; (* completion times of placed jobs, ascending *)
  mutable n_comps : int;
  mutable nodes : int;
  mutable budget : int;
  mutable local_best : int; (* recording threshold; starts at the wave bound *)
  mutable best_starts : int array option;
  shared_best : int Atomic.t; (* frozen during a wave; read for pruning *)
}

(* Pruning bound: the worker's own best, tightened by the shared incumbent
   (equal to the wave bound while a wave is in flight). *)
let bnd s =
  let g = Atomic.get s.shared_best in
  if g < s.local_best then g else s.local_best

(* Index of the first element >= x in a.(0..len-1), ascending. *)
let lower_bound a len x =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let comps_insert s t =
  let i = ref s.n_comps in
  while !i > 0 && s.comps.(!i - 1) > t do
    s.comps.(!i) <- s.comps.(!i - 1);
    decr i
  done;
  s.comps.(!i) <- t;
  s.n_comps <- s.n_comps + 1

let comps_remove s t =
  let i = ref 0 in
  while s.comps.(!i) <> t do
    incr i
  done;
  for j = !i to s.n_comps - 2 do
    s.comps.(j) <- s.comps.(j + 1)
  done;
  s.n_comps <- s.n_comps - 1

(* A subtree root produced by the sequential expansion phase: the placed
   prefix in placement order plus the node's running aggregates. *)
type branch = { trail : (int * int) array; b_cmax : int; b_rem : int }

(* Chronological DFS on the live timeline. Returns false iff the node
   budget ran out (the caller unwinds — no exceptions, so every
   checkpoint is paired with a rollback even on exhaustion). When
   [fdepth >= 0], nodes reached at that depth are recorded into [fsink]
   as subtree roots instead of being expanded (the expansion phase);
   [trail] then carries the (start, job) path to the current node. *)
let rec dfs s ~fdepth ~fsink ~trail depth t_prev i_prev cur_cmax rem_work =
  s.nodes <- s.nodes + 1;
  Resa_obs.Prof.incr c_nodes;
  if s.nodes > s.budget then false
  else if depth = s.n then begin
    if cur_cmax < s.local_best then begin
      s.local_best <- cur_cmax;
      s.best_starts <- Some (Array.copy s.starts)
    end;
    true
  end
  else if depth = fdepth then begin
    fsink := { trail = Array.copy trail; b_cmax = cur_cmax; b_rem = rem_work } :: !fsink;
    true
  end
  else begin
    let b = bnd s in
    let area_lb =
      if rem_work = 0 then 0
      else Lower_bounds.min_time_with_area_tl ~cap:b s.free ~from:t_prev ~area:rem_work
    in
    if (if cur_cmax > area_lb then cur_cmax else area_lb) >= b then begin
      Resa_obs.Prof.incr c_prunes_area;
      true
    end
    else begin
      (* Merged ascending scan of availability breakpoints and live
         completion times, restricted to [>= t_prev], skipping duplicates.
         Children restore [comps] before the scan resumes, so the indices
         stay valid across recursive calls. *)
      let min_q = ref max_int in
      for i = 0 to s.n - 1 do
        if (not s.placed.(i)) && s.widths.(i) < !min_q then min_q := s.widths.(i)
      done;
      let min_q = !min_q in
      let ok = ref true and stop = ref false in
      let na = Array.length s.avail_bps in
      let ia = ref (lower_bound s.avail_bps na t_prev)
      and ic = ref (lower_bound s.comps s.n_comps t_prev) in
      let last_t = ref min_int in
      while (not !stop) && !ok && (!ia < na || !ic < s.n_comps) do
        let t =
          if !ia < na && (!ic >= s.n_comps || s.avail_bps.(!ia) <= s.comps.(!ic)) then begin
            let t = s.avail_bps.(!ia) in
            incr ia;
            t
          end
          else begin
            let t = s.comps.(!ic) in
            incr ic;
            t
          end
        in
        (* Candidates are ascending, and every job has duration >= 1: once
           t >= bound no later start can improve on it. *)
        if t >= bnd s then stop := true
        else if t <> !last_t then begin
          last_t := t;
          try_jobs s ~fdepth ~fsink ~trail depth t_prev i_prev cur_cmax rem_work t min_q ok
        end
      done;
      !ok
    end
  end

and try_jobs s ~fdepth ~fsink ~trail depth t_prev i_prev cur_cmax rem_work t min_q ok =
  let first_i = if t = t_prev then i_prev + 1 else 0 in
  (* Capacity at the instant [t] bounds every window minimum from above:
     instants too narrow even for the narrowest unplaced job are dismissed
     with one point query, and jobs wider than it fail with one integer
     compare instead of a window query. Children roll the timeline back
     before the loop resumes, so one sample stays valid across the whole
     scan (same trick as Lsrc). *)
  let cap_now = Timeline.value_at s.free t in
  let i = ref (if cap_now < min_q then s.n else first_i) in
  while !ok && !i < s.n do
    let idx = !i in
    if not s.placed.(idx) then begin
      let tb = s.twin_before.(idx) in
      if tb >= 0 && not s.placed.(tb) then Resa_obs.Prof.incr c_prunes_twin
      else begin
        let fin = t + s.durations.(idx) in
        if
          fin < bnd s
          && s.widths.(idx) <= cap_now
          && Timeline.min_on s.free ~lo:t ~hi:fin >= s.widths.(idx)
        then begin
          s.placed.(idx) <- true;
          s.starts.(idx) <- t;
          comps_insert s fin;
          if depth < Array.length trail then trail.(depth) <- (t, idx);
          let mark = Timeline.checkpoint s.free in
          Timeline.change s.free ~lo:t ~hi:fin ~delta:(-s.widths.(idx));
          let r =
            dfs s ~fdepth ~fsink ~trail (depth + 1) t idx
              (if cur_cmax > fin then cur_cmax else fin)
              (rem_work - s.areas.(idx))
          in
          Timeline.rollback s.free mark;
          comps_remove s fin;
          s.placed.(idx) <- false;
          s.starts.(idx) <- -1;
          if not r then ok := false
        end
      end
    end;
    incr i
  done

(* Pool-task shape: branches per task (one shared timeline, replayed under
   checkpoints) and tasks per wave (the shared incumbent is frozen within a
   wave, republished between waves). Both are fixed constants so the work
   decomposition — and hence the result — is independent of the pool size. *)
let block_size = 8
let wave_blocks = 8
let expand_depth = 2

let solve ?(node_limit = 2_000_000) inst =
  Resa_obs.Prof.with_span ~cat:"exact" "bnb.solve" @@ fun () ->
  let n = Instance.n_jobs inst in
  let avail = Instance.availability inst in
  let incumbent, incumbent_cmax = incumbent_schedule inst in
  let lb_root = Lower_bounds.best inst in
  if n = 0 || incumbent_cmax <= lb_root then
    (* Incumbent matches a certified lower bound: no search needed. *)
    { makespan = incumbent_cmax; schedule = incumbent; optimal = true; nodes = 0 }
  else begin
    let jobs = Instance.jobs inst in
    let durations = Array.map Job.p jobs in
    let widths = Array.map Job.q jobs in
    let areas = Array.map Job.area jobs in
    let avail_bps = Profile.breakpoints avail in
    (* Symmetry chain: twin_before.(i) is the closest earlier job with the
       same (p, q) — one hashtable pass instead of the O(n^2) scan. The
       chain transitively forces identical jobs to be placed in increasing
       index order (each link requires its predecessor), which is the same
       dominance rule with strictly stronger per-node pruning. *)
    let twin_before = Array.make n (-1) in
    let last_twin = Hashtbl.create (2 * n) in
    for i = 0 to n - 1 do
      let key = (durations.(i), widths.(i)) in
      (match Hashtbl.find_opt last_twin key with
      | Some k -> twin_before.(i) <- k
      | None -> ());
      Hashtbl.replace last_twin key i
    done;
    let shared_best = Atomic.make incumbent_cmax in
    let horizon = max 1 incumbent_cmax in
    let mk_state ~budget ~bound0 =
      {
        n;
        durations;
        widths;
        areas;
        avail_bps;
        twin_before;
        free = Timeline.of_profile ~horizon avail;
        placed = Array.make n false;
        starts = Array.make n (-1);
        comps = Array.make n 0;
        n_comps = 0;
        nodes = 0;
        budget;
        local_best = bound0;
        best_starts = None;
        shared_best;
      }
    in
    (* Phase 1: sequential expansion of the first level(s) into subtree
       roots (deterministic DFS order). On breakpoint-rich instances the
       first level alone fans out into hundreds of roots, so the second
       level is expanded only when the first is too coarse to balance.
       Complete schedules met on the way (n <= expansion depth) are
       recorded directly. *)
    let expand dmax =
      let st = mk_state ~budget:node_limit ~bound0:incumbent_cmax in
      let fsink = ref [] in
      let trail = Array.make dmax (0, 0) in
      let ok = dfs st ~fdepth:dmax ~fsink ~trail 0 0 (-1) 0 (Instance.total_work inst) in
      (st, Array.of_list (List.rev !fsink), ok)
    in
    let e1, branches1, ok1 = expand 1 in
    let deepen = ok1 && n >= expand_depth && Array.length branches1 < 16 in
    let st0, branches, expansion_ok =
      if deepen then expand expand_depth else (e1, branches1, ok1)
    in
    let best_cmax = ref st0.local_best in
    let best_starts = ref st0.best_starts in
    let nodes_total = ref (if deepen then e1.nodes + st0.nodes else st0.nodes) in
    let complete = ref expansion_ok in
    Atomic.set shared_best !best_cmax;
    (* Phase 2: solve subtree roots in fixed-size blocks — one pool task
       per block, one timeline per task, branches within a block replayed
       under a checkpoint and rolled back between branches so the state
       (and its construction cost) is shared. Blocks are dispatched in
       fixed-size waves, the remaining node budget split evenly over the
       remaining branches each round. Branches that exhaust their slice
       are retried in later rounds with the (larger) per-branch share of
       whatever budget is left, so a lopsided tree still completes within
       the global limit. Block and wave shapes depend only on the branch
       list, never on the pool size. *)
    let certified = ref (!best_cmax <= lb_root) in
    let pending = ref (if expansion_ok then Array.to_list branches else []) in
    let solve_block ~bound0 ~q ~r (j0, bs) =
      let s = mk_state ~budget:0 ~bound0 in
      let incomplete = ref [] in
      Array.iteri
        (fun k b ->
          let budget = q + if j0 + k < r then 1 else 0 in
          if budget <= 0 then incomplete := b :: !incomplete
          else begin
            let mark = Timeline.checkpoint s.free in
            Array.iter
              (fun (t, i) ->
                s.placed.(i) <- true;
                s.starts.(i) <- t;
                comps_insert s (t + durations.(i));
                Timeline.change s.free ~lo:t ~hi:(t + durations.(i)) ~delta:(-widths.(i)))
              b.trail;
            let t_prev, i_prev = b.trail.(Array.length b.trail - 1) in
            (* Branch-entry fit bound against the live timeline: every
               unplaced job alone must still fit below the bound. *)
            let unplaced = ref [] in
            for i = n - 1 downto 0 do
              if not s.placed.(i) then unplaced := jobs.(i) :: !unplaced
            done;
            let fit_lb =
              Lower_bounds.fit_bound_tl s.free ~from:t_prev (Array.of_list !unplaced)
            in
            if (if b.b_cmax > fit_lb then b.b_cmax else fit_lb) >= bnd s then
              Resa_obs.Prof.incr c_prunes_fit
            else begin
              s.budget <- s.nodes + budget;
              let okb =
                dfs s ~fdepth:(-1) ~fsink:(ref []) ~trail:[||] (Array.length b.trail)
                  t_prev i_prev b.b_cmax b.b_rem
              in
              if not okb then incomplete := b :: !incomplete
            end;
            Timeline.rollback s.free mark;
            Array.iter
              (fun (t, i) ->
                s.placed.(i) <- false;
                s.starts.(i) <- -1;
                comps_remove s (t + durations.(i)))
              b.trail
          end)
        bs;
      (s.local_best, s.best_starts, s.nodes, List.rev !incomplete)
    in
    while (not !certified) && !pending <> [] do
      let remaining = node_limit - !nodes_total in
      if remaining <= 0 then begin
        complete := false;
        pending := []
      end
      else begin
        let parr = Array.of_list !pending in
        let rem_branches = Array.length parr in
        let q = remaining / rem_branches and r = remaining mod rem_branches in
        let n_blocks = (rem_branches + block_size - 1) / block_size in
        let blocks =
          Array.init n_blocks (fun bi ->
              let j0 = bi * block_size in
              (j0, Array.sub parr j0 (min block_size (rem_branches - j0))))
        in
        let round_incomplete = ref [] in
        let wi = ref 0 in
        while !wi < n_blocks do
          if !certified then
            (* The optimum is certified: remaining branches need no search. *)
            wi := n_blocks
          else begin
            let hi = min n_blocks (!wi + wave_blocks) in
            let bound0 = !best_cmax in
            let results =
              Resa_par.parallel_map (solve_block ~bound0 ~q ~r) (Array.sub blocks !wi (hi - !wi))
            in
            Array.iter
              (fun (value, bstarts, bnodes, binc) ->
                nodes_total := !nodes_total + bnodes;
                List.iter (fun b -> round_incomplete := b :: !round_incomplete) binc;
                if value < !best_cmax then begin
                  best_cmax := value;
                  best_starts := bstarts
                end)
              results;
            (* Publish the wave's improvements: the next wave prunes
               against them, workers within a wave saw a frozen bound. *)
            Atomic.set shared_best !best_cmax;
            if !best_cmax <= lb_root then certified := true;
            wi := hi
          end
        done;
        let retry = List.rev !round_incomplete in
        (* Each round either certifies, consumes budget (every dispatched
           branch expands at least one node), or retires branches, so the
           loop terminates: remaining <= 0 above catches exhaustion. *)
        pending := if !certified then [] else retry
      end
    done;
    if (not !certified) && !pending <> [] then complete := false;
    let schedule =
      match !best_starts with Some st -> Schedule.make st | None -> incumbent
    in
    {
      makespan = !best_cmax;
      schedule;
      optimal = !certified || !complete;
      nodes = !nodes_total;
    }
  end

let optimal_makespan ?node_limit inst =
  let r = solve ?node_limit inst in
  if r.optimal then Some r.makespan else None
