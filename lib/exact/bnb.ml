open Resa_core
open Resa_algos

type result = {
  makespan : int;
  schedule : Schedule.t;
  optimal : bool;
  nodes : int;
}

exception Node_budget_exhausted

let incumbent_schedule inst =
  (* Cheap good starting incumbent: best of a few list heuristics. *)
  let candidates =
    List.map (fun p -> Lsrc.run ~priority:p inst) Priority.standard
    @ [ Backfill.conservative inst; Backfill.easy inst ]
  in
  List.fold_left
    (fun (bs, bm) s ->
      let c = Schedule.makespan inst s in
      if c < bm then (s, c) else (bs, bm))
    (List.hd candidates, Schedule.makespan inst (List.hd candidates))
    candidates

let solve ?(node_limit = 2_000_000) inst =
  let n = Instance.n_jobs inst in
  let avail = Instance.availability inst in
  let avail_bps = Array.to_list (Profile.breakpoints avail) in
  let incumbent, incumbent_cmax = incumbent_schedule inst in
  let best_sched = ref incumbent and best_cmax = ref incumbent_cmax in
  let starts = Array.make n (-1) in
  let nodes = ref 0 in
  let lb_root = Lower_bounds.best inst in
  let areas = Array.map Job.area (Instance.jobs inst) in
  let durations = Array.map Job.p (Instance.jobs inst) in
  let widths = Array.map Job.q (Instance.jobs inst) in
  let placed = Array.make n false in
  (* Symmetry: among identical jobs force placement by increasing index. *)
  let twin_before = Array.make n (-1) in
  for i = 0 to n - 1 do
    for k = 0 to i - 1 do
      if durations.(k) = durations.(i) && widths.(k) = widths.(i) && twin_before.(i) < 0 then
        twin_before.(i) <- k
    done
  done;
  (* Chronological DFS; ties in start time are explored in increasing job
     index to avoid revisiting permutations of simultaneous starts. *)
  let rec dfs depth t_prev i_prev free completions cur_cmax rem_work =
    incr nodes;
    if !nodes > node_limit then raise Node_budget_exhausted;
    if depth = n then begin
      if cur_cmax < !best_cmax then begin
        best_cmax := cur_cmax;
        best_sched := Schedule.make starts
      end
    end
    else
      let area_lb =
        if rem_work = 0 then 0
        else Lower_bounds.min_time_with_area free ~from:t_prev ~area:rem_work
      in
      if max cur_cmax area_lb < !best_cmax then begin
        let cands =
          List.sort_uniq Int.compare
            (List.filter (fun t -> t >= t_prev) (0 :: (avail_bps @ completions)))
        in
        List.iter
          (fun t ->
            let first_i = if t = t_prev then i_prev + 1 else 0 in
            for i = first_i to n - 1 do
              if
                (not placed.(i))
                && (twin_before.(i) < 0 || placed.(twin_before.(i)))
                && t + durations.(i) < !best_cmax
                && Profile.min_on free ~lo:t ~hi:(t + durations.(i)) >= widths.(i)
              then begin
                placed.(i) <- true;
                starts.(i) <- t;
                let free' = Profile.reserve free ~start:t ~dur:durations.(i) ~need:widths.(i) in
                dfs (depth + 1) t i free'
                  ((t + durations.(i)) :: completions)
                  (max cur_cmax (t + durations.(i)))
                  (rem_work - areas.(i));
                placed.(i) <- false;
                starts.(i) <- -1
              end
            done)
          cands
      end
  in
  let optimal =
    if !best_cmax <= lb_root then true (* incumbent matches a certified lower bound *)
    else
      try
        dfs 0 0 (-1) avail [] 0 (Instance.total_work inst);
        true
      with Node_budget_exhausted -> false
  in
  { makespan = !best_cmax; schedule = !best_sched; optimal; nodes = !nodes }

let optimal_makespan ?node_limit inst =
  let r = solve ?node_limit inst in
  if r.optimal then Some r.makespan else None
