(** Exact single-machine scheduling with reservations by subset DP.

    On one machine every schedule is a sequence, and for a fixed set of
    already-executed jobs only the earliest completion frontier matters
    ([Profile.earliest_fit] is monotone in its [from] argument), so a
    dynamic program over job subsets is exact: O(2ⁿ·n) time, O(2ⁿ) space.
    This reaches n ≈ 20 — far beyond the branch-and-bound on the Theorem 1
    reduction instances (n = 3k jobs), and is used by the FIG1 experiment to
    certify optima up to k = 6. *)

open Resa_core

val max_jobs : int
(** Hard size limit (20). *)

val solve : Instance.t -> Schedule.t * int
(** [solve inst] returns an optimal schedule and its makespan. Raises
    [Invalid_argument] if [Instance.m inst <> 1] or the instance has more
    than {!max_jobs} jobs. *)

val optimal_makespan : Instance.t -> int
