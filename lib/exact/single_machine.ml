open Resa_core

let max_jobs = 20

let solve inst =
  if Instance.m inst <> 1 then invalid_arg "Single_machine.solve: requires m = 1";
  let n = Instance.n_jobs inst in
  if n > max_jobs then invalid_arg "Single_machine.solve: too many jobs";
  let avail = Instance.availability inst in
  let durations = Array.init n (fun i -> Job.p (Instance.job inst i)) in
  Array.iteri
    (fun i j ->
      ignore i;
      if Job.q j <> 1 then invalid_arg "Single_machine.solve: jobs must have q = 1")
    (Instance.jobs inst);
  let size = 1 lsl n in
  (* frontier.(mask): earliest instant by which exactly the jobs in [mask]
     can have completed; parent.(mask): last job of a witness sequence. *)
  let frontier = Array.make size max_int in
  let parent = Array.make size (-1) in
  frontier.(0) <- 0;
  for mask = 0 to size - 1 do
    if frontier.(mask) < max_int then
      for j = 0 to n - 1 do
        if mask land (1 lsl j) = 0 then begin
          let mask' = mask lor (1 lsl j) in
          let start =
            Option.get (Profile.earliest_fit avail ~from:frontier.(mask) ~dur:durations.(j) ~need:1)
          in
          let finish = start + durations.(j) in
          if finish < frontier.(mask') then begin
            frontier.(mask') <- finish;
            parent.(mask') <- j
          end
        end
      done
  done;
  (* Reconstruct the witness sequence. *)
  let starts = Array.make n 0 in
  let rec rebuild mask =
    if mask <> 0 then begin
      let j = parent.(mask) in
      let mask' = mask lxor (1 lsl j) in
      let start =
        Option.get (Profile.earliest_fit avail ~from:frontier.(mask') ~dur:durations.(j) ~need:1)
      in
      starts.(j) <- start;
      rebuild mask'
    end
  in
  rebuild (size - 1);
  (Schedule.make starts, frontier.(size - 1))

let optimal_makespan inst = snd (solve inst)
