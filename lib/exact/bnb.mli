(** Exact optimal makespan by branch and bound.

    Chronological depth-first search: jobs are placed in order of
    non-decreasing start time, and by the left-shift dominance argument
    (DESIGN.md §3) candidate starts are restricted to time 0, breakpoints of
    the availability profile and completion times of already-placed jobs.
    Pruning: availability-aware lower bounds ({!Lower_bounds}), an LSRC /
    backfilling incumbent, and symmetry breaking on identical jobs.

    Exact up to ~9–10 jobs plus reservations — the sizes needed for ratio
    measurements; beyond that, set a node budget and treat the result as an
    upper bound. *)

open Resa_core

type result = {
  makespan : int;  (** Best makespan found. *)
  schedule : Schedule.t;  (** A feasible schedule achieving it. *)
  optimal : bool;  (** Whether the search ran to completion. *)
  nodes : int;  (** Nodes expanded. *)
}

val solve : ?node_limit:int -> Instance.t -> result
(** Default node limit: 2_000_000. The returned schedule is always feasible;
    [optimal = true] certifies [makespan] is the true C_opt. *)

val optimal_makespan : ?node_limit:int -> Instance.t -> int option
(** [Some c] only when proved optimal within the budget. *)
