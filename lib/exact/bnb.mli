(** Exact optimal makespan by branch and bound.

    Chronological depth-first search: jobs are placed in order of
    non-decreasing start time, and by the left-shift dominance argument
    (DESIGN.md §3) candidate starts are restricted to time 0, breakpoints of
    the availability profile and completion times of already-placed jobs.
    Pruning: availability-aware lower bounds ({!Lower_bounds}), an LSRC /
    backfilling incumbent, and symmetry breaking on identical jobs.

    {!solve} is the speculative solver (DESIGN.md §8): one mutable
    {!Timeline} per search worker with checkpoint/rollback around every
    placement trial, incrementally maintained candidate decision times, and
    deterministic parallel root splitting over {!Resa_par} — results are
    bit-identical at any [RESA_DOMAINS]. {!solve_reference} is the frozen
    persistent-profile solver kept as its oracle twin: both always agree on
    [makespan] and [optimal] (schedules may differ between the two — each is
    feasible and achieves the reported makespan — because the speculative
    solver uses a strictly stronger chain-twin symmetry rule).

    Exact up to ~9–10 jobs plus reservations — the sizes needed for ratio
    measurements; beyond that, set a node budget and treat the result as an
    upper bound. *)

open Resa_core

type result = {
  makespan : int;  (** Best makespan found. *)
  schedule : Schedule.t;  (** A feasible schedule achieving it. *)
  optimal : bool;  (** Whether the search ran to completion. *)
  nodes : int;  (** Nodes expanded. *)
}

val solve : ?node_limit:int -> Instance.t -> result
(** Default node limit: 2_000_000. The returned schedule is always feasible;
    [optimal = true] certifies [makespan] is the true C_opt. Deterministic:
    the full result record (including [nodes] and the schedule's starts) is
    independent of the pool size. *)

val solve_reference : ?node_limit:int -> Instance.t -> result
(** The pre-speculation persistent-profile solver, kept as the oracle twin
    for the randomized differential suite ([bnb-diff]) and benchmarks. *)

val optimal_makespan : ?node_limit:int -> Instance.t -> int option
(** [Some c] only when proved optimal within the budget. *)
