open Resa_core

let min_time_with_area profile ~from ~area =
  if area <= 0 then from
  else begin
    (* A non-positive tail can never accumulate the missing area; rejecting
       it only when [from] sat before the last breakpoint used to let
       past-the-tail calls fall through to a fabricated rate of 1. *)
    if Profile.final_value profile <= 0 then
      invalid_arg "Lower_bounds.min_time_with_area: non-positive tail";
    (* Accumulate area segment by segment from [from], then interpolate in
       the final (constant-rate) piece. *)
    let rec go t acc =
      let v = Profile.value_at profile t in
      match Profile.next_breakpoint_after profile t with
      | Some t' ->
        let gained = v * (t' - t) in
        if acc + gained >= area then
          if v <= 0 then (* cannot finish inside this segment *) t'
          else t + ((area - acc + v - 1) / v)
        else go t' (acc + gained)
      | None ->
        (* Tail segment: v = final_value >= 1, checked above. *)
        t + ((area - acc + v - 1) / v)
    in
    go from 0
  end

let min_time_with_area_tl ?(cap = max_int) tl ~from ~area =
  if area <= 0 then from
  else begin
    if Timeline.final_value tl <= 0 then
      invalid_arg "Lower_bounds.min_time_with_area_tl: non-positive tail";
    (* Same accumulation as the profile version, but one O(log U) descent on
       the timeline's sum aggregate. Once the running answer passes [cap]
       the caller's pruning test is already decided, so the walk stops and
       reports [cap]. *)
    Timeline.first_reaching_area tl ~from ~area ~cap
  end

let fit_bound_tl tl ~from jobs =
  Array.fold_left
    (fun bound j ->
      match Timeline.earliest_fit tl ~from ~dur:(Job.p j) ~need:(Job.q j) with
      | Some s -> max bound (s + Job.p j)
      | None -> bound (* tail below need: unreachable for feasible jobs *))
    from jobs

let work_bound inst =
  let w = Instance.total_work inst in
  if w = 0 then 0 else min_time_with_area (Instance.availability inst) ~from:0 ~area:w

let fit_bound inst =
  let avail = Instance.availability inst in
  let bound = ref 0 in
  Array.iter
    (fun j ->
      match Profile.earliest_fit avail ~from:0 ~dur:(Job.p j) ~need:(Job.q j) with
      | Some s -> bound := max !bound (s + Job.p j)
      | None -> assert false)
    (Instance.jobs inst);
  !bound

let serial_bound inst =
  let m = Instance.m inst in
  let wide = Array.to_list (Instance.jobs inst) |> List.filter (fun j -> 2 * Job.q j > m) in
  match wide with
  | [] -> 0
  | _ ->
    let total = List.fold_left (fun acc j -> acc + Job.p j) 0 wide in
    let qmin = List.fold_left (fun acc j -> min acc (Job.q j)) max_int wide in
    (* Indicator profile of instants where the narrowest wide job fits. *)
    let avail = Instance.availability inst in
    let ok =
      Profile.fold_segments avail ~init:[] ~f:(fun acc ~lo ~hi:_ ~v ->
          (lo, if v >= qmin then 1 else 0) :: acc)
      |> List.rev |> Profile.of_steps
    in
    min_time_with_area ok ~from:0 ~area:total

let best inst = max (work_bound inst) (max (fit_bound inst) (serial_bound inst))
