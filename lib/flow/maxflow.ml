type t = {
  n : int;
  (* Edge arrays: twin edges at indices 2k (forward) and 2k+1 (backward). *)
  mutable dst : int array;
  mutable cap : int array;
  mutable n_edges : int;
  adj : int list array; (* per node, edge indices, reverse insertion order *)
}

let create ~n_nodes =
  if n_nodes < 2 then invalid_arg "Maxflow.create: need at least 2 nodes";
  { n = n_nodes; dst = Array.make 16 0; cap = Array.make 16 0; n_edges = 0; adj = Array.make n_nodes [] }

let grow g =
  let len = Array.length g.dst in
  let dst = Array.make (2 * len) 0 and cap = Array.make (2 * len) 0 in
  Array.blit g.dst 0 dst 0 len;
  Array.blit g.cap 0 cap 0 len;
  g.dst <- dst;
  g.cap <- cap

let add_edge g ~src ~dst ~cap =
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then invalid_arg "Maxflow.add_edge: bad node";
  while g.n_edges + 2 > Array.length g.dst do
    grow g
  done;
  let e = g.n_edges in
  g.dst.(e) <- dst;
  g.cap.(e) <- cap;
  g.dst.(e + 1) <- src;
  g.cap.(e + 1) <- 0;
  g.n_edges <- g.n_edges + 2;
  g.adj.(src) <- e :: g.adj.(src);
  g.adj.(dst) <- (e + 1) :: g.adj.(dst);
  e

let max_flow g ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  let level = Array.make g.n (-1) in
  let iter = Array.make g.n [] in
  let queue = Queue.create () in
  let bfs () =
    Array.fill level 0 g.n (-1);
    Queue.clear queue;
    level.(source) <- 0;
    Queue.add source queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun e ->
          let v = g.dst.(e) in
          if g.cap.(e) > 0 && level.(v) < 0 then begin
            level.(v) <- level.(u) + 1;
            Queue.add v queue
          end)
        g.adj.(u)
    done;
    level.(sink) >= 0
  in
  let rec dfs u pushed =
    if u = sink then pushed
    else begin
      let rec try_edges () =
        match iter.(u) with
        | [] -> 0
        | e :: rest ->
          let v = g.dst.(e) in
          if g.cap.(e) > 0 && level.(v) = level.(u) + 1 then begin
            let d = dfs v (min pushed g.cap.(e)) in
            if d > 0 then begin
              g.cap.(e) <- g.cap.(e) - d;
              g.cap.(e lxor 1) <- g.cap.(e lxor 1) + d;
              d
            end
            else begin
              iter.(u) <- rest;
              try_edges ()
            end
          end
          else begin
            iter.(u) <- rest;
            try_edges ()
          end
      in
      try_edges ()
    end
  in
  let total = ref 0 in
  while bfs () do
    for i = 0 to g.n - 1 do
      iter.(i) <- g.adj.(i)
    done;
    let continue = ref true in
    while !continue do
      let pushed = dfs source max_int in
      if pushed = 0 then continue := false else total := !total + pushed
    done
  done;
  !total

let flow_on g e =
  (* Flow on forward edge e = residual capacity accumulated on its twin. *)
  if e < 0 || e >= g.n_edges || e land 1 = 1 then invalid_arg "Maxflow.flow_on: bad handle";
  g.cap.(e + 1)
