(** Maximum flow (Dinic's algorithm) on integer capacities.

    A small self-contained substrate used by {!Resa_algos.Preemptive} to
    decide preemptive schedulability (jobs × availability-segments
    transportation) and to extract the witness assignment. O(V²·E) worst
    case, far faster on the shallow bipartite networks built here. *)

type t

val create : n_nodes:int -> t
(** Nodes are [0 .. n_nodes-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> int
(** Add a directed edge (plus its residual twin). Returns an edge handle
    usable with {!flow_on}. Capacities must be non-negative. *)

val max_flow : t -> source:int -> sink:int -> int
(** Compute (and fix) the maximum flow. May be called once per network. *)

val flow_on : t -> int -> int
(** Flow routed through the given edge handle after {!max_flow}. *)
