open Resa_core

let is_non_increasing inst =
  let u = Instance.unavailability inst in
  let ok, _ =
    Profile.fold_segments u ~init:(true, max_int) ~f:(fun (ok, prev) ~lo:_ ~hi:_ ~v ->
        (ok && v <= prev, v))
  in
  ok

let require_non_increasing inst =
  if not (is_non_increasing inst) then
    invalid_arg "Transform: instance must have non-increasing reservations"

(* Decompose a non-increasing, eventually-zero staircase into reservations
   all starting at 0: each descending step at time t contributes a
   reservation [0, t) of width (drop). *)
let staircase_reservations u =
  let steps = Profile.to_steps u in
  let rec walk acc prev = function
    | [] -> acc
    | (t, v) :: rest ->
      let acc = if t > 0 && v < prev then (t, prev - v) :: acc else acc in
      walk acc v rest
  in
  let drops = walk [] max_int steps |> List.rev in
  List.mapi (fun i (t, drop) -> Reservation.make ~id:i ~start:0 ~p:t ~q:drop) drops

let clip inst ~at =
  require_non_increasing inst;
  if at < 0 then invalid_arg "Transform.clip: at must be >= 0";
  let u = Instance.unavailability inst in
  let u_at = Profile.value_at u at in
  let m' = Instance.m inst - u_at in
  (* U' = (U − U(at)) before [at], 0 afterwards; non-increasing keeps it
     non-negative before [at]. *)
  let u' =
    Profile.fold_segments u ~init:[] ~f:(fun acc ~lo ~hi:_ ~v ->
        if lo < at then (lo, max 0 (v - u_at)) :: acc else acc)
    |> fun acc -> Profile.of_steps (List.rev ((at, 0) :: acc))
  in
  Instance.create_exn ~m:m'
    ~jobs:(Array.to_list (Instance.jobs inst))
    ~reservations:(staircase_reservations u')

let to_rigid inst =
  require_non_increasing inst;
  let u = Instance.unavailability inst in
  (* Head job per descending step: q = U_j − U_{j+1}, p = t_{j+1}. *)
  let steps = Profile.to_steps u in
  let rec drops acc prev = function
    | [] -> List.rev acc
    | (t, v) :: rest ->
      let acc = if t > 0 && v < prev then (t, prev - v) :: acc else acc in
      drops acc v rest
  in
  let head = drops [] max_int steps in
  let n_head = List.length head in
  let head_jobs = List.mapi (fun j (t, drop) -> Job.make ~id:j ~p:t ~q:drop) head in
  let orig_jobs =
    Array.to_list (Instance.jobs inst)
    |> List.mapi (fun i j -> Job.make ~id:(n_head + i) ~p:(Job.p j) ~q:(Job.q j))
  in
  ( Instance.create_exn ~m:(Instance.m inst) ~jobs:(head_jobs @ orig_jobs) ~reservations:[],
    n_head )

let three_partition_target ~k ~b = (k * (b + 1)) - 1

let of_three_partition ~xs ~b ~rho =
  let n = Array.length xs in
  if n mod 3 <> 0 || n = 0 then invalid_arg "Transform.of_three_partition: |xs| must be a positive multiple of 3";
  if rho < 1 then invalid_arg "Transform.of_three_partition: rho must be >= 1";
  let k = n / 3 in
  let sum = Array.fold_left ( + ) 0 xs in
  if sum <> k * b then invalid_arg "Transform.of_three_partition: sum xs must equal k*b";
  Array.iter (fun x -> if x < 1 then invalid_arg "Transform.of_three_partition: xs must be >= 1") xs;
  let jobs = Array.to_list (Array.mapi (fun i x -> Job.make ~id:i ~p:x ~q:1) xs) in
  let reservations =
    List.init k (fun idx ->
        let j = idx + 1 in
        let start = (j * (b + 1)) - 1 in
        let p = if j = k then (rho * k * (b + 1)) + 1 else 1 in
        Reservation.make ~id:idx ~start ~p ~q:1)
  in
  Instance.create_exn ~m:1 ~jobs ~reservations
