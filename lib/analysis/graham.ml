open Resa_core

let require_no_reservations inst =
  if Instance.n_reservations inst > 0 then
    invalid_arg "Graham: the appendix machinery applies to reservation-free instances"

let lemma1_witness inst sched =
  require_no_reservations inst;
  let cmax = Schedule.makespan inst sched in
  let pmax = Instance.pmax inst in
  let m = Instance.m inst in
  if cmax = 0 then None
  else begin
    let r = Schedule.usage inst sched in
    (* r is piecewise constant: a violating pair exists iff two segments
       A ∋ t, B ∋ t' with t' >= t + pmax, t' < cmax, and r_A + r_B <= m. *)
    let segments =
      Profile.fold_segments r ~init:[] ~f:(fun acc ~lo ~hi ~v ->
          let hi = match hi with None -> cmax | Some h -> min h cmax in
          if lo < cmax && lo < hi then (lo, hi, v) :: acc else acc)
      |> List.rev
    in
    let witness = ref None in
    List.iter
      (fun (a_lo, _a_hi, ra) ->
        List.iter
          (fun (b_lo, b_hi, rb) ->
            if !witness = None && ra + rb <= m then begin
              (* Need t in A, t' in B with t' >= t + pmax. Take t = a_lo. *)
              let t = a_lo in
              let t' = max b_lo (t + pmax) in
              if t' < b_hi then witness := Some (t, t')
            end)
          segments)
      segments;
    !witness
  end

let lemma1_holds inst sched = lemma1_witness inst sched = None

type certificate = {
  makespan : int;
  opt_bound : int;
  work : int;
  graham_rhs : float;
  holds : bool;
}

let theorem2_certificate inst sched ~opt =
  require_no_reservations inst;
  let m = Instance.m inst in
  let makespan = Schedule.makespan inst sched in
  let rhs = (2.0 -. (1.0 /. float_of_int m)) *. float_of_int opt in
  {
    makespan;
    opt_bound = opt;
    work = Instance.total_work inst;
    graham_rhs = rhs;
    holds = float_of_int makespan <= rhs +. 1e-9;
  }

type integral_certificate = {
  c_list : int;
  c_opt : int;
  x_integral : int;
  lemma1_lhs : int;
  work_rhs : int;
  total_work : int;
  chain_holds : bool;
}

let theorem2_integral_certificate inst sched ~opt =
  require_no_reservations inst;
  let m = Instance.m inst in
  let c_list = Schedule.makespan inst sched in
  let w = Instance.total_work inst in
  if c_list <= opt then
    {
      c_list;
      c_opt = opt;
      x_integral = 0;
      lemma1_lhs = 0;
      work_rhs = w;
      total_work = w;
      chain_holds = w <= m * opt;
    }
  else begin
    (* In the proof's notation C_A = (2 − x)·C*, so (1−x)C* = C_A − C* and
       x·C* = 2C* − C_A: every quantity below is an exact integer. *)
    let r = Schedule.usage inst sched in
    let span = c_list - opt in
    let x_integral =
      Profile.integral_on r ~lo:0 ~hi:span + Profile.integral_on r ~lo:opt ~hi:c_list
    in
    let lemma1_lhs = (m + 1) * span in
    let work_rhs = w - ((2 * opt) - c_list) in
    {
      c_list;
      c_opt = opt;
      x_integral;
      lemma1_lhs;
      work_rhs;
      total_work = w;
      chain_holds = lemma1_lhs <= x_integral && x_integral <= work_rhs && w <= m * opt;
    }
  end

let pp_integral_certificate ppf c =
  Format.fprintf ppf
    "C_A=%d C*=%d : (m+1)(C_A-C*)=%d <= X=%d <= W-(2C*-C_A)=%d, W=%d : %s" c.c_list c.c_opt
    c.lemma1_lhs c.x_integral c.work_rhs c.total_work
    (if c.chain_holds then "chain OK" else "chain VIOLATED")

let pp_certificate ppf c =
  Format.fprintf ppf "Cmax=%d vs (2-1/m)*%d = %.2f : %s (W=%d)" c.makespan c.opt_bound
    c.graham_rhs
    (if c.holds then "OK" else "VIOLATED")
    c.work
