(** Machine-checked version of the appendix ("Revisiting Graham's bound").

    For a list schedule of a reservation-free instance, Lemma 1 states that
    any two instants more than [pmax] apart (both before the makespan) see
    more than [m] busy processors in total; integrating it yields
    Theorem 2's [2 − 1/m] guarantee. These functions recompute [r(t)] from a
    concrete schedule and verify both statements exactly, which both tests
    and the FIG-level experiments use as independent certificates. *)

open Resa_core

val lemma1_witness : Instance.t -> Schedule.t -> (int * int) option
(** [lemma1_witness inst sched] searches for a violating pair: times
    [t' >= t + pmax], both in [\[0, makespan)], with [r(t) + r(t') <= m].
    [None] means Lemma 1 holds for this schedule. Requires a reservation-free
    instance ([Invalid_argument] otherwise). *)

val lemma1_holds : Instance.t -> Schedule.t -> bool

type certificate = {
  makespan : int;
  opt_bound : int;  (** The C value the schedule is compared against. *)
  work : int;
  graham_rhs : float;  (** (2 − 1/m)·C. *)
  holds : bool;  (** makespan <= (2 − 1/m)·C. *)
}

val theorem2_certificate : Instance.t -> Schedule.t -> opt:int -> certificate
(** Checks the Theorem 2 inequality [C_lsrc <= (2 − 1/m)·opt] against a
    claimed optimal (or lower-bound) value [opt]. *)

val pp_certificate : Format.formatter -> certificate -> unit

type integral_certificate = {
  c_list : int;  (** The list schedule's makespan C_A. *)
  c_opt : int;  (** The reference optimum Copt. *)
  x_integral : int;
      (** The proof's X = ∫₀^{C_A−Copt} r(t) dt + ∫_{Copt}^{C_A} r(t) dt
          (note (1−x)·Copt = C_A − Copt in the proof's notation). *)
  lemma1_lhs : int;  (** (m+1)·(C_A − Copt): Lemma 1 forces X ≥ this. *)
  work_rhs : int;  (** W − (2Copt − C_A): the rearrangement bounds X ≤ this. *)
  total_work : int;  (** W(I) ≤ m·Copt closes the chain. *)
  chain_holds : bool;
      (** All three inequalities of the appendix proof, evaluated in exact
          integer arithmetic on this very schedule. *)
}

val theorem2_integral_certificate :
  Instance.t -> Schedule.t -> opt:int -> integral_certificate
(** Replays the appendix proof of Theorem 2 numerically: integrates the
    measured [r(t)] over the proof's two windows and checks the inequality
    chain [(m+1)(C_A − Copt) ≤ X ≤ W − (2Copt − C_A)] and [W ≤ m·Copt]. When
    [C_A ≤ Copt] the chain is vacuous and [chain_holds] is true. Requires a
    reservation-free instance, a feasible *greedy* schedule, and [opt >=
    pmax] (as in the proof). *)

val pp_integral_certificate : Format.formatter -> integral_certificate -> unit
