open Resa_core
open Resa_algos

let makespan_of_order inst order = Schedule.makespan inst (Lsrc.run_order inst order)

let worst_order ?(restarts = 4) ?(iterations = 60) rng inst =
  let n = Instance.n_jobs inst in
  if n = 0 then ([||], 0)
  else begin
    (* Each restart climbs with its own generator, pre-split from [rng]
       by [parallel_replicates] before any restart runs: the fan-out is
       embarrassingly parallel yet bit-identical at any domain count. *)
    let climb rng _idx =
      let order = Array.init n (fun i -> i) in
      Prng.shuffle rng order;
      let current = ref (makespan_of_order inst order) in
      (* Steepest-ascent over random pairwise swaps. *)
      let stale = ref 0 in
      let iter = ref 0 in
      while !iter < iterations && !stale < 2 * n do
        incr iter;
        let i = Prng.int rng ~bound:n and j = Prng.int rng ~bound:n in
        if i <> j then begin
          let tmp = order.(i) in
          order.(i) <- order.(j);
          order.(j) <- tmp;
          let v = makespan_of_order inst order in
          if v > !current then begin
            current := v;
            stale := 0
          end
          else begin
            (* Undo the swap. *)
            let tmp = order.(i) in
            order.(i) <- order.(j);
            order.(j) <- tmp;
            incr stale
          end
        end
      done;
      (order, !current)
    in
    let results = Resa_par.parallel_replicates rng ~n:restarts climb in
    (* Fixed reduction order (ascending restart, strict improvement only)
       reproduces the sequential loop's tie-breaking exactly. *)
    let best_order = ref (Array.init n (fun i -> i)) in
    let best = ref (makespan_of_order inst !best_order) in
    Array.iter
      (fun (order, v) ->
        if v > !best then begin
          best := v;
          best_order := order
        end)
      results;
    (!best_order, !best)
  end

type removal_anomaly = {
  removed : int;
  with_job : int;
  without_job : int;
}

let without_job inst i =
  let jobs =
    Array.to_list (Instance.jobs inst)
    |> List.filteri (fun k _ -> k <> i)
  in
  Instance.with_jobs inst jobs

let find_removal_anomaly inst =
  let full = Schedule.makespan inst (Lsrc.run inst) in
  let n = Instance.n_jobs inst in
  let rec scan i =
    if i >= n then None
    else begin
      let reduced = without_job inst i in
      let v = Schedule.makespan reduced (Lsrc.run reduced) in
      if v > full then Some { removed = i; with_job = full; without_job = v } else scan (i + 1)
    end
  in
  scan 0

type machine_anomaly = {
  m_small : int;
  m_large : int;
  cmax_small : int;
  cmax_large : int;
}

let with_machines inst m =
  Instance.create_exn ~m ~jobs:(Array.to_list (Instance.jobs inst)) ~reservations:[]

let find_machine_anomaly inst =
  if Instance.n_reservations inst > 0 then
    invalid_arg "Anomaly.find_machine_anomaly: reservation-free instances only";
  let m = Instance.m inst in
  let small = Schedule.makespan inst (Lsrc.run inst) in
  let larger = with_machines inst (m + 1) in
  let large = Schedule.makespan larger (Lsrc.run larger) in
  if large > small then
    Some { m_small = m; m_large = m + 1; cmax_small = small; cmax_large = large }
  else None

let check_machine_anomaly inst a =
  Instance.n_reservations inst = 0
  && a.m_small = Instance.m inst
  && a.m_large = a.m_small + 1
  && Schedule.makespan inst (Lsrc.run inst) = a.cmax_small
  &&
  let larger = with_machines inst a.m_large in
  Schedule.makespan larger (Lsrc.run larger) = a.cmax_large
  && a.cmax_large > a.cmax_small

let check_removal_anomaly inst a =
  a.removed >= 0
  && a.removed < Instance.n_jobs inst
  && Schedule.makespan inst (Lsrc.run inst) = a.with_job
  &&
  let reduced = without_job inst a.removed in
  Schedule.makespan reduced (Lsrc.run reduced) = a.without_job
  && a.without_job > a.with_job
