(** Empirical worst-case search over list orders, and scheduling anomalies.

    The paper's bounds quantify over *all* priority lists; these tools
    search that space on concrete instances: a local-search maximiser for
    the LSRC makespan over permutations (used by the FIG4 experiment to
    drive the measured curve toward the lower bound), and a detector for
    Graham-style anomalies where *removing* a job makes the list schedule
    longer — impossible for the optimum, very possible for greedy lists
    under reservations. *)

open Resa_core

val worst_order : ?restarts:int -> ?iterations:int -> Prng.t -> Instance.t -> int array * int
(** [worst_order rng inst] hill-climbs over job permutations (random
    restarts, best pairwise-swap moves) to maximise the LSRC makespan.
    Returns the worst order found and its makespan — a certified *lower*
    bound on the instance's worst-case list behaviour. The restarts fan
    out over the {!Resa_par} pool with per-restart generators pre-split
    from [rng], so the result is deterministic given the generator state
    and independent of the domain count. Defaults: 4 restarts, 60
    iterations each. *)

type removal_anomaly = {
  removed : int;  (** Job index whose removal lengthens the schedule. *)
  with_job : int;  (** FIFO-LSRC makespan of the full instance. *)
  without_job : int;  (** Makespan after removing the job ([> with_job]). *)
}

val find_removal_anomaly : Instance.t -> removal_anomaly option
(** Scan all single-job removals under FIFO LSRC (the remaining jobs keep
    their relative order). [None] if the instance is monotone under
    removal. *)

val check_removal_anomaly : Instance.t -> removal_anomaly -> bool
(** Recompute and verify a claimed anomaly. *)

type machine_anomaly = {
  m_small : int;
  m_large : int;  (** [m_small + 1]. *)
  cmax_small : int;
  cmax_large : int;  (** [> cmax_small]: more processors, longer schedule. *)
}

val find_machine_anomaly : Instance.t -> machine_anomaly option
(** Graham's most famous anomaly transposed to rigid tasks: does adding one
    processor make the FIFO list schedule *longer*? Only meaningful for
    reservation-free instances ([Invalid_argument] otherwise, since
    reservations are machine-count-specific). *)

val check_machine_anomaly : Instance.t -> machine_anomaly -> bool
