(** The paper's closed-form performance bounds, as plotted in Figure 4.

    All functions take [alpha ∈ (0, 1]] and return worst-case makespan
    ratios. *)

val upper_bound : alpha:float -> float
(** Proposition 3: LSRC is at most [2/α]-approximate on
    α-RESASCHEDULING. *)

val prop2_value : alpha:float -> float
(** Proposition 2 (for [2/α] integer): ratios of at least
    [2/α − 1 + α/2] are achieved by adversarial instances. *)

val b1 : alpha:float -> float
(** The lower bound [B1] of §4.2 for general α:
    [⌈2/α⌉ − 1 + 1/(⌊(1−α/2)/(1−(α/2)(⌈2/α⌉−1))⌋ + 1)].
    Coincides with {!prop2_value} when [2/α] is an integer. *)

val b2 : alpha:float -> float
(** The weaker but simpler bound [B2 = ⌈2/α⌉ − (⌈2/α⌉−1)/(2/α)].
    Always [<= b1]. *)

val graham : m:int -> float
(** Theorem 2: [2 − 1/m], the reservation-free guarantee. *)

val prop1_bound : m_at_opt:int -> float
(** Proposition 1: [2 − 1/m(C_opt)] for non-increasing reservations, where
    [m_at_opt] is the number of processors available at the optimum. *)

val figure4_rows : alphas:float list -> (float * float * float * float) list
(** [(α, 2/α, B1, B2)] rows — the series of Figure 4. *)
