(** The paper's two instance transformations.

    - Proposition 1 (Figure 2): an instance with {e non-increasing}
      reservations is clipped at a reference time ([I → I']) and its
      unavailability staircase replaced by rigid "head" tasks ([I' → I''])
      that a list scheduler, given them first, schedules exactly where the
      reservations were. This reduces the analysis to Theorem 2.
    - Theorem 1 (Figure 1): the reduction from 3-PARTITION showing that
      unrestricted RESASCHEDULING admits no approximation algorithm. *)

open Resa_core

val is_non_increasing : Instance.t -> bool
(** Whether the unavailability [U] is non-increasing over time (equivalently
    the availability is non-decreasing) — the §4.1 restriction. *)

val clip : Instance.t -> at:int -> Instance.t
(** [clip inst ~at] is the proof's [I']: the machine shrinks to
    [m' = m − U(at)] processors, the availability is unchanged before [at]
    and constantly [m'] afterwards. Requires non-increasing reservations and
    [at >= 0]. Both instances have the same optimum when [at] is the optimal
    makespan, and any feasible schedule of the clip is feasible for the
    original. *)

val to_rigid : Instance.t -> Instance.t * int
(** [to_rigid inst = (inst'', n_head)] is the proof's [I'']: reservations
    are deleted and replaced by [n_head] rigid jobs placed at the *front* of
    the job array — job [j] (0-based, [j < n_head]) has [q = U_j − U_{j+1}]
    and [p = t_{j+1}] in the notation of Figure 2. Original job [i] becomes
    job [n_head + i]. Requires non-increasing reservations.

    With FIFO priority, LSRC starts every head job at time 0, recreating the
    unavailability staircase: its makespan on [inst''] equals its makespan on
    [inst] whenever the head jobs dominate the staircase (Proposition 1's
    argument). *)

val of_three_partition : xs:int array -> b:int -> rho:int -> Instance.t
(** Theorem 1's reduction instance (Figure 1): one machine, one unit job per
    integer [x_i], and [k = |xs|/3] unit reservations carving windows of
    length exactly [b]; the last reservation has length [ρ·k·(b+1)+1] so
    that any ρ-approximation must answer the 3-PARTITION question.
    Requires [|xs|] divisible by 3 and [Σ xs = k·b].

    The instance admits a schedule of makespan [k(b+1) − 1] iff the
    3-PARTITION instance is a YES instance; otherwise every schedule has
    makespan [> (ρ+1)·k·(b+1) − 1]. *)

val three_partition_target : k:int -> b:int -> int
(** The YES-makespan [k(b+1) − 1]. *)
