let check_alpha alpha =
  if not (alpha > 0.0 && alpha <= 1.0) then invalid_arg "Ratio_bounds: alpha must be in (0,1]"

let upper_bound ~alpha =
  check_alpha alpha;
  2.0 /. alpha

let prop2_value ~alpha =
  check_alpha alpha;
  (2.0 /. alpha) -. 1.0 +. (alpha /. 2.0)

let ceil_2_over_alpha alpha = ceil (2.0 /. alpha -. 1e-12)

let b1 ~alpha =
  check_alpha alpha;
  let c = ceil_2_over_alpha alpha in
  let half = alpha /. 2.0 in
  let denom_inner = 1.0 -. (half *. (c -. 1.0)) in
  let inner = (1.0 -. half) /. denom_inner in
  c -. 1.0 +. (1.0 /. (Float.of_int (int_of_float (floor (inner +. 1e-12))) +. 1.0))

let b2 ~alpha =
  check_alpha alpha;
  let c = ceil_2_over_alpha alpha in
  c -. ((c -. 1.0) /. (2.0 /. alpha))

let graham ~m =
  if m < 1 then invalid_arg "Ratio_bounds.graham: m must be >= 1";
  2.0 -. (1.0 /. float_of_int m)

let prop1_bound ~m_at_opt =
  if m_at_opt < 1 then invalid_arg "Ratio_bounds.prop1_bound: m_at_opt must be >= 1";
  2.0 -. (1.0 /. float_of_int m_at_opt)

let figure4_rows ~alphas =
  List.map (fun a -> (a, upper_bound ~alpha:a, b1 ~alpha:a, b2 ~alpha:a)) alphas
