(** Typed metrics registry: counters, gauges and log2-bucketed histograms.

    The always-on telemetry surface behind heartbeat snapshots and the
    Prometheus-style exposition — bounded aggregates where {!Trace} keeps
    per-event records. Collection is {e off} by default (enable with
    [RESA_METRICS=1] or {!enable}); the disabled path of {!incr}, {!add},
    {!set} and {!observe} is a single flag load and branch, cheap enough
    for the simulator's per-event path to call unconditionally — and with
    collection off every deterministic output of the program is
    byte-identical to a build without telemetry (tested).

    All state is domain-safe: cells are atomics, registration is mutexed.
    Because atomic additions commute, a snapshot of a deterministic
    workload is identical at any executor pool size.

    {b Determinism convention.} Metric values derived from simulation data
    (waits, queue depths, timeline node counts) are deterministic and may
    feed deterministic outputs (heartbeat rows, test goldens). Any metric
    carrying wall-clock data {e must} be named under the reserved
    ["wall."] prefix — {!is_wall} is the test — and consumers keep such
    metrics strictly inside their segregated wall-clock sections, exactly
    as {!Prof} keeps spans out of tables. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val is_wall : string -> bool
(** [true] iff the name is under the reserved ["wall."] prefix (wall-clock
    data, to be kept out of deterministic outputs). *)

(** {2 Instruments}

    Interned by name: the same name always yields the same instrument;
    re-registering a name as a different kind raises [Invalid_argument].
    Create once at module level, not per call. *)

type counter

val counter : string -> counter
val incr : counter -> unit
(** No-op when collection is disabled (likewise {!add}, {!set},
    {!observe}). *)

val add : counter -> int -> unit

val value : counter -> int
(** Reads work whether or not collection is enabled. *)

type gauge

val gauge : string -> gauge

val set : gauge -> int -> unit
(** Last-write-wins point-in-time value (queue depth, node count). *)

val gauge_value : gauge -> int

type histogram

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Record one observation. Buckets are powers of two: bucket [0] counts
    observations [<= 0], bucket [i >= 1] counts observations in
    [\[2^(i-1), 2^i - 1\]]; 63 buckets cover the whole positive [int]
    range, so nothing is ever out of range. *)

val hist_count : histogram -> int
val hist_sum : histogram -> int

(** {2 Snapshots} *)

type hist_view = {
  count : int;
  sum : int;
  buckets : (int * int) list;
      (** [(le, cumulative count)] per occupied bucket, ascending [le]
          (each [le] is [2^i - 1]), trimmed after the bucket where the
          cumulative count reaches [count]. *)
}

type view = Counter_v of int | Gauge_v of int | Histogram_v of hist_view

val snapshot : unit -> (string * view) list
(** Every registered instrument with its current value, sorted by name —
    deterministic for a deterministic workload. *)

val expose : unit -> string
(** Prometheus text exposition (format 0.0.4) of the whole registry:
    names are prefixed [resa_] and flattened to [\[a-zA-Z0-9_\]],
    histograms render cumulative power-of-two buckets plus [+Inf], [_sum]
    and [_count]. The exposition surface for a future [resa serve]
    daemon; wall-clock metrics appear here too — the registry, unlike
    deterministic outputs, is allowed to carry them. *)

val reset : unit -> unit
(** Zero every instrument (registrations are kept). *)
