(** Bench-trajectory regression gate.

    Compares two [BENCH_*.json] trajectory files (the uniform records the
    bench harness emits) row-by-row: rows pair up on their
    [(experiment, n, algo, domains, seed)] key, duplicate keys within one
    file collapse to the minimum wall time, and each pair's [new/old]
    ratio is judged against a relative-slowdown threshold. Memory rows
    ([algo] under the ["rss_mb:"] prefix) are informational, and pairs
    under the noise floor in both files never gate. [resa benchdiff] is
    the CLI around this module; the report's regression count is its exit
    status. *)

type row = {
  experiment : string;
  n : int;
  algo : string;
  wall_s : float;
  domains : int;
  seed : int;
  git_rev : string;
  ts : string option;  (** ISO-8601 UTC stamp, when the file carries one. *)
  host : string option;
}

val rows_of_json : Jsonu.t -> (row list, string) result
val rows_of_string : string -> (row list, string) result

type verdict =
  | Regression  (** ratio above the threshold — gates. *)
  | Improvement  (** ratio below [1/threshold]. *)
  | Within
  | Info  (** memory row, never gates. *)
  | Noise  (** both walls under [min_wall], never gates. *)

type comparison = {
  ckey : string;
  old_wall : float;
  new_wall : float;
  ratio : float;
  verdict : verdict;
}

type report = {
  threshold : float;
  min_wall : float;
  comparisons : comparison list;  (** Sorted ratio-descending. *)
  only_old : string list;
  only_new : string list;
  regressions : int;
  improvements : int;
  old_stamp : string;  (** [ts host git_rev] of the file's first row. *)
  new_stamp : string;
}

val compare_rows :
  ?threshold:float -> ?min_wall:float -> old_rows:row list -> new_rows:row list -> unit -> report
(** [threshold] (default [1.10]) must be [> 1]; [min_wall] (default
    [0.05] s) is the timer noise floor. *)

val render : report -> string
(** Human-readable table with a trailing regression/improvement count. *)
