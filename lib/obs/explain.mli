(** Decision-provenance replay behind [resa explain].

    Consumes a parsed JSONL trace (see {!Trace.parse_line}) and renders,
    per run and per job, the reconstructed story: submission, blocked
    episodes aggregated by binding constraint, policy plans, the start
    with its provenance, and the completion. *)

val render : (string option * Trace.event) list -> string
(** Runs appear in first-appearance order; jobs within a run in id order.
    Events with no run tag group under the name ["run"]. *)
