(** Chrome trace-event JSON exporter (loadable in Perfetto / chrome://tracing).

    A slice is one rectangle on a track: for simulation traces, one track
    per cluster processor inside a per-run process (built by
    [Resa_sim.Sim_trace.chrome_slices]); for executor profiling, one track
    per pool domain ({!of_spans}). Only complete events (ph ["X"]) and
    process/thread-name metadata are emitted, so the output is a single
    well-formed JSON object — validated by [python3 -m json.tool] in CI. *)

type slice = {
  process : string;  (** Process group (e.g. policy name, or "executor"). *)
  track : string;  (** Track within the process (e.g. ["cpu 3"], ["domain 1"]). *)
  name : string;  (** Slice label (e.g. ["J17"]). *)
  cat : string;  (** Category; [""] defaults to ["sim"]. *)
  ts_us : int;  (** Start, microseconds. Simulation time maps 1 unit = 1 µs. *)
  dur_us : int;
  args : (string * string) list;  (** Extra key/values shown on click. *)
}

val to_string : slice list -> string
(** The complete JSON document ([{"traceEvents": [...]}]). Deterministic:
    pids/tids are assigned in first-appearance order. *)

val to_json_value : slice list -> Jsonu.t

val write : out_channel -> slice list -> unit
(** {!to_string} plus a trailing newline. *)

val of_spans : ?process:string -> Prof.span list -> slice list
(** Wall-clock {!Prof} spans as slices, one track per domain, rebased so
    the earliest span starts at 0. *)
