(* Typed metrics registry — the always-on telemetry half of the
   observability layer. Where [Trace] records *what happened* (a typed
   event per occurrence, gigabytes at 10M jobs) and [Prof] records *where
   wall-clock time went*, this module keeps bounded aggregates: named
   counters, gauges and log2-bucketed histograms that a heartbeat sampler
   or a serving daemon can snapshot at any instant in O(registry size).

   The discipline follows [Prof]:

   - Disabled cost: collection is off by default (enable with
     RESA_METRICS=1 or [enable]); the disabled path of [incr], [add],
     [set] and [observe] is one flag load and a branch, cheap enough for
     the simulator's per-event path to call unconditionally.

   - Domain safety: cells are atomics, registration is mutexed, so worker
     domains may bump shared instruments concurrently. Sums of atomic adds
     are order-independent, which keeps snapshots deterministic for
     deterministic workloads regardless of pool size.

   - Determinism segregation: metric *values* derived from simulation data
     (waits, queue depths, node counts) are deterministic; anything
     wall-clock lives under the reserved "wall." name prefix and is kept
     out of deterministic outputs by every consumer ([is_wall] is the
     test). This is the same split [Prof] enforces structurally. *)

let flag =
  ref
    (match Sys.getenv_opt "RESA_METRICS" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let enabled () = !flag [@@inline]
let enable () = flag := true
let disable () = flag := false

let wall_prefix = "wall."

let is_wall name =
  String.length name >= 5 && String.sub name 0 5 = wall_prefix

(* --- instruments -------------------------------------------------------- *)

type counter = { cname : string; ccell : int Atomic.t }
type gauge = { gname : string; gcell : int Atomic.t }

(* Buckets are powers of two: bucket 0 counts observations <= 0, bucket i
   (1 <= i < 63) counts observations in [2^(i-1), 2^i - 1], and the last
   bucket absorbs everything larger. 63 buckets cover the full positive
   int range, so no observation is ever out of range. *)
let hist_buckets = 63

type histogram = {
  hname : string;
  counts : int Atomic.t array;
  hsum : int Atomic.t;
  hcount : int Atomic.t;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()

let intern name make describe =
  Mutex.lock registry_mutex;
  let i =
    match Hashtbl.find_opt registry name with
    | Some i -> i
    | None ->
      let i = make () in
      Hashtbl.add registry name i;
      i
  in
  Mutex.unlock registry_mutex;
  match describe i with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Metrics: %S already registered with another kind" name)

let counter cname =
  intern cname
    (fun () -> Counter { cname; ccell = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)

let gauge gname =
  intern gname
    (fun () -> Gauge { gname; gcell = Atomic.make 0 })
    (function Gauge g -> Some g | _ -> None)

let histogram hname =
  intern hname
    (fun () ->
      Histogram
        {
          hname;
          counts = Array.init hist_buckets (fun _ -> Atomic.make 0);
          hsum = Atomic.make 0;
          hcount = Atomic.make 0;
        })
    (function Histogram h -> Some h | _ -> None)

let incr c = if !flag then Atomic.incr c.ccell [@@inline]
let add c n = if !flag then ignore (Atomic.fetch_and_add c.ccell n) [@@inline]
let value c = Atomic.get c.ccell

let set g v = if !flag then Atomic.set g.gcell v [@@inline]
let gauge_value g = Atomic.get g.gcell

(* floor(log2 v) + 1 for v >= 1 (bucket upper bound 2^i - 1), 0 for v <= 0. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do
      i := !i + 1;
      v := !v lsr 1
    done;
    min !i (hist_buckets - 1)
  end

let bucket_le i = if i = 0 then 0 else (1 lsl i) - 1

let observe h v =
  if !flag then begin
    ignore (Atomic.fetch_and_add h.counts.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add h.hsum v);
    ignore (Atomic.fetch_and_add h.hcount 1)
  end
  [@@inline]

let hist_count h = Atomic.get h.hcount
let hist_sum h = Atomic.get h.hsum

(* --- snapshots ----------------------------------------------------------- *)

type hist_view = { count : int; sum : int; buckets : (int * int) list }

type view = Counter_v of int | Gauge_v of int | Histogram_v of hist_view

let hist_view h =
  (* Cumulative counts at each power-of-two upper bound, trimmed to the
     occupied prefix: the list ends at the first bucket whose cumulative
     count reaches [count] (so an empty histogram has no buckets). *)
  let count = Atomic.get h.hcount and sum = Atomic.get h.hsum in
  let buckets = ref [] in
  let cum = ref 0 in
  (try
     for i = 0 to hist_buckets - 1 do
       cum := !cum + Atomic.get h.counts.(i);
       if !cum > 0 then buckets := (bucket_le i, !cum) :: !buckets;
       if !cum >= count then raise Exit
     done
   with Exit -> ());
  { count; sum; buckets = List.rev !buckets }

let snapshot () =
  Mutex.lock registry_mutex;
  let all = Hashtbl.fold (fun name i acc -> (name, i) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  all
  |> List.map (fun (name, i) ->
         ( name,
           match i with
           | Counter c -> Counter_v (Atomic.get c.ccell)
           | Gauge g -> Gauge_v (Atomic.get g.gcell)
           | Histogram h -> Histogram_v (hist_view h) ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- Prometheus text exposition ------------------------------------------ *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let expose () =
  (* Prometheus text format 0.0.4: one [# TYPE] line per metric, names
     prefixed [resa_], dots flattened to underscores. Histograms render
     their cumulative power-of-two buckets plus the mandatory [+Inf]. *)
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let pname = "resa_" ^ sanitize name in
      match v with
      | Counter_v n ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" pname pname n)
      | Gauge_v n ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %d\n" pname pname n)
      | Histogram_v h ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" pname);
        List.iter
          (fun (le, cum) ->
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" pname le cum))
          h.buckets;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n" pname h.count
             pname h.sum pname h.count))
    (snapshot ());
  Buffer.contents b

(* --- reset --------------------------------------------------------------- *)

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Counter c -> Atomic.set c.ccell 0
      | Gauge g -> Atomic.set g.gcell 0
      | Histogram h ->
        Array.iter (fun a -> Atomic.set a 0) h.counts;
        Atomic.set h.hsum 0;
        Atomic.set h.hcount 0)
    registry;
  Mutex.unlock registry_mutex
