(* Chrome trace-event JSON (the `chrome://tracing` / Perfetto format).

   We emit only complete events (ph = "X") plus process/thread name
   metadata. Slices are grouped into processes (one per simulation run, one
   for the executor) and tracks within a process (one per cluster
   processor, one per pool domain); pids/tids are assigned in order of
   first appearance so the export is deterministic for a deterministic
   slice list. *)

type slice = {
  process : string;
  track : string;
  name : string;
  cat : string;
  ts_us : int;
  dur_us : int;
  args : (string * string) list;
}

let to_json_value slices =
  let open Jsonu in
  let pids : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let tids : (string * string, int) Hashtbl.t = Hashtbl.create 16 in
  let meta = ref [] in
  let next_pid = ref 0 in
  let pid_of process =
    match Hashtbl.find_opt pids process with
    | Some pid -> pid
    | None ->
      incr next_pid;
      let pid = !next_pid in
      Hashtbl.add pids process pid;
      meta :=
        Obj
          [
            ("name", Str "process_name"); ("ph", Str "M"); ("pid", Num (float_of_int pid));
            ("tid", Num 0.); ("args", Obj [ ("name", Str process) ]);
          ]
        :: !meta;
      pid
  in
  (* tids count per process so Perfetto sorts tracks in appearance order. *)
  let next_tid : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let tid_of process track =
    let pid = pid_of process in
    match Hashtbl.find_opt tids (process, track) with
    | Some tid -> tid
    | None ->
      let tid = 1 + Option.value ~default:0 (Hashtbl.find_opt next_tid pid) in
      Hashtbl.replace next_tid pid tid;
      Hashtbl.add tids (process, track) tid;
      meta :=
        Obj
          [
            ("name", Str "thread_name"); ("ph", Str "M"); ("pid", Num (float_of_int pid));
            ("tid", Num (float_of_int tid)); ("args", Obj [ ("name", Str track) ]);
          ]
        :: !meta;
      tid
  in
  let events =
    List.map
      (fun s ->
        let pid = pid_of s.process in
        let tid = tid_of s.process s.track in
        Obj
          [
            ("name", Str s.name);
            ("cat", Str (if s.cat = "" then "sim" else s.cat));
            ("ph", Str "X");
            ("ts", Num (float_of_int s.ts_us));
            ("dur", Num (float_of_int s.dur_us));
            ("pid", Num (float_of_int pid));
            ("tid", Num (float_of_int tid));
            ("args", Obj (List.map (fun (k, v) -> (k, Str v)) s.args));
          ])
      slices
  in
  Obj
    [
      ("traceEvents", List (List.rev !meta @ events));
      ("displayTimeUnit", Str "ms");
    ]

let to_string slices = Jsonu.to_string (to_json_value slices)

let write oc slices =
  output_string oc (to_string slices);
  output_char oc '\n'

let of_spans ?(process = "executor") spans =
  match spans with
  | [] -> []
  | first :: _ ->
    (* Rebase on the earliest span so the timeline starts near 0. *)
    let t0 =
      List.fold_left (fun acc (s : Prof.span) -> min acc s.start_ns) first.Prof.start_ns spans
    in
    List.map
      (fun (s : Prof.span) ->
        {
          process;
          track = Printf.sprintf "domain %d" s.domain;
          name = s.name;
          cat = s.cat;
          ts_us = (s.start_ns - t0) / 1000;
          dur_us = max 1 (s.dur_ns / 1000);
          args = [];
        })
      spans
