(** Minimal dependency-free JSON values, parsing and printing.

    Backs the JSONL trace format, the Chrome trace-event exporter and the
    [resa explain] replay; also used by the test suite to assert that every
    export is well-formed. Numbers are represented as floats (integral
    values print without a fractional part); the parser accepts strict JSON
    with no extensions. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no trailing newline). *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val of_string : string -> (t, string) result
(** Parse a complete document; [Error] carries a position message. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing field or non-object. *)

val to_int : t -> int option
(** [Num] with an integral value, as [int]. *)

val to_str : t -> string option
