(* Typed structured tracing for the simulator/scheduler stack.

   Two hard rules keep the rest of the repository honest:

   1. Determinism: every event carries only *simulation* data (instants,
      job ids, capacities, decisions). Wall-clock timing lives in [Prof],
      never here, so a deterministic event stream is identical across
      executor pool sizes.

   2. Disabled cost: the [Null] sink answers [enabled _ = false] and every
      instrumentation site is written

        if Trace.enabled obs then Trace.emit obs (...)

      so the untraced path pays one immediate comparison — no event
      allocation, no branches inside hot operations. *)

type provenance =
  | Started_now
  | Backfilled_ahead_of_head
  | Blocked_by_reservation
  | Blocked_by_capacity
  | Held_by_policy

let provenance_to_string = function
  | Started_now -> "started-now"
  | Backfilled_ahead_of_head -> "backfilled-ahead-of-head"
  | Blocked_by_reservation -> "blocked-by-reservation"
  | Blocked_by_capacity -> "blocked-by-capacity"
  | Held_by_policy -> "held-by-policy"

let provenance_of_string = function
  | "started-now" -> Some Started_now
  | "backfilled-ahead-of-head" -> Some Backfilled_ahead_of_head
  | "blocked-by-reservation" -> Some Blocked_by_reservation
  | "blocked-by-capacity" -> Some Blocked_by_capacity
  | "held-by-policy" -> Some Held_by_policy
  | _ -> None

type event =
  | Job_submit of { time : int; job : int; p : int; q : int }
  | Job_start of { time : int; job : int; wait : int; provenance : provenance }
  | Job_finish of { time : int; job : int }
  | Decision of { time : int; policy : string; queued : int; started : int; wake : int option }
  | Head_blocked of {
      time : int;
      policy : string;
      job : int;
      reason : provenance;
      lo : int;
      hi : int;
      need : int;
      have : int;
    }
  | Planned of { time : int; policy : string; job : int; at : int }
  | Resv_accept of { resv : int; start : int; p : int; q : int }
  | Resv_reject of { start : int; p : int; q : int; reason : string }
  | Sim_wake of { time : int; forced : bool }
  | Truncated of { dropped : int }
      (* A bounded sink overflowed: [dropped] older events are missing
         before this point. Emitted by flush paths, never by the
         simulator. *)

(* --- sinks -------------------------------------------------------------- *)

type t =
  | Null
  | Ring of { cap : int; buf : event Queue.t; mutable dropped : int }
  | File of { oc : out_channel; run : string option; mutex : Mutex.t }

let null = Null

let buffer ?(cap = 1 lsl 20) () =
  if cap < 1 then invalid_arg "Trace.buffer: cap must be >= 1";
  Ring { cap; buf = Queue.create (); dropped = 0 }

let file ?run oc = File { oc; run; mutex = Mutex.create () }

let enabled t = t != Null [@@inline]

(* --- JSONL -------------------------------------------------------------- *)

let to_json ?run ev =
  let open Jsonu in
  let i n = Num (float_of_int n) in
  let fields =
    match ev with
    | Job_submit { time; job; p; q } ->
      [ ("ev", Str "job_submit"); ("t", i time); ("job", i job); ("p", i p); ("q", i q) ]
    | Job_start { time; job; wait; provenance } ->
      [
        ("ev", Str "job_start"); ("t", i time); ("job", i job); ("wait", i wait);
        ("provenance", Str (provenance_to_string provenance));
      ]
    | Job_finish { time; job } -> [ ("ev", Str "job_finish"); ("t", i time); ("job", i job) ]
    | Decision { time; policy; queued; started; wake } ->
      [
        ("ev", Str "decision"); ("t", i time); ("policy", Str policy); ("queued", i queued);
        ("started", i started);
        ("wake", match wake with None -> Null | Some w -> i w);
      ]
    | Head_blocked { time; policy; job; reason; lo; hi; need; have } ->
      [
        ("ev", Str "head_blocked"); ("t", i time); ("policy", Str policy); ("job", i job);
        ("reason", Str (provenance_to_string reason)); ("lo", i lo); ("hi", i hi);
        ("need", i need); ("have", i have);
      ]
    | Planned { time; policy; job; at } ->
      [ ("ev", Str "planned"); ("t", i time); ("policy", Str policy); ("job", i job); ("at", i at) ]
    | Resv_accept { resv; start; p; q } ->
      [ ("ev", Str "resv_accept"); ("resv", i resv); ("start", i start); ("p", i p); ("q", i q) ]
    | Resv_reject { start; p; q; reason } ->
      [
        ("ev", Str "resv_reject"); ("start", i start); ("p", i p); ("q", i q);
        ("reason", Str reason);
      ]
    | Sim_wake { time; forced } ->
      [ ("ev", Str "sim_wake"); ("t", i time); ("forced", Bool forced) ]
    | Truncated { dropped } -> [ ("ev", Str "truncated"); ("dropped", i dropped) ]
  in
  let fields = match run with None -> fields | Some r -> ("run", Str r) :: fields in
  Jsonu.to_string (Obj fields)

let of_json j =
  let ( let* ) o f = Option.bind o f in
  let int k = Option.bind (Jsonu.member k j) Jsonu.to_int in
  let str k = Option.bind (Jsonu.member k j) Jsonu.to_str in
  let run = str "run" in
  let ev =
    let* kind = str "ev" in
    match kind with
    | "job_submit" ->
      let* time = int "t" in
      let* job = int "job" in
      let* p = int "p" in
      let* q = int "q" in
      Some (Job_submit { time; job; p; q })
    | "job_start" ->
      let* time = int "t" in
      let* job = int "job" in
      let* wait = int "wait" in
      let* provenance = Option.bind (str "provenance") provenance_of_string in
      Some (Job_start { time; job; wait; provenance })
    | "job_finish" ->
      let* time = int "t" in
      let* job = int "job" in
      Some (Job_finish { time; job })
    | "decision" ->
      let* time = int "t" in
      let* policy = str "policy" in
      let* queued = int "queued" in
      let* started = int "started" in
      Some (Decision { time; policy; queued; started; wake = int "wake" })
    | "head_blocked" ->
      let* time = int "t" in
      let* policy = str "policy" in
      let* job = int "job" in
      let* reason = Option.bind (str "reason") provenance_of_string in
      let* lo = int "lo" in
      let* hi = int "hi" in
      let* need = int "need" in
      let* have = int "have" in
      Some (Head_blocked { time; policy; job; reason; lo; hi; need; have })
    | "planned" ->
      let* time = int "t" in
      let* policy = str "policy" in
      let* job = int "job" in
      let* at = int "at" in
      Some (Planned { time; policy; job; at })
    | "resv_accept" ->
      let* resv = int "resv" in
      let* start = int "start" in
      let* p = int "p" in
      let* q = int "q" in
      Some (Resv_accept { resv; start; p; q })
    | "resv_reject" ->
      let* start = int "start" in
      let* p = int "p" in
      let* q = int "q" in
      let* reason = str "reason" in
      Some (Resv_reject { start; p; q; reason })
    | "sim_wake" ->
      let* time = int "t" in
      let* forced = (match Jsonu.member "forced" j with Some (Jsonu.Bool b) -> Some b | _ -> None) in
      Some (Sim_wake { time; forced })
    | "truncated" ->
      let* dropped = int "dropped" in
      Some (Truncated { dropped })
    | _ -> None
  in
  match ev with
  | Some ev -> Ok (run, ev)
  | None -> Error "not a trace event"

let parse_line line =
  match Jsonu.of_string line with
  | Error m -> Error m
  | Ok j -> of_json j

(* --- emission ----------------------------------------------------------- *)

let emit t ev =
  match t with
  | Null -> ()
  | Ring r ->
    Queue.push ev r.buf;
    if Queue.length r.buf > r.cap then begin
      ignore (Queue.pop r.buf);
      r.dropped <- r.dropped + 1
    end
  | File f ->
    let line = to_json ?run:f.run ev in
    Mutex.lock f.mutex;
    output_string f.oc line;
    output_char f.oc '\n';
    Mutex.unlock f.mutex

let contents = function
  | Null | File _ -> []
  | Ring r -> List.of_seq (Queue.to_seq r.buf)

let dropped = function Null | File _ -> 0 | Ring r -> r.dropped

let write_jsonl ?run ?(dropped = 0) oc events =
  List.iter
    (fun ev ->
      output_string oc (to_json ?run ev);
      output_char oc '\n')
    events;
  (* Truncation is data, not a log line: a trailing summary event makes
     the gap visible to every consumer of the file (resa explain warns on
     it) instead of silently shipping an incomplete stream. *)
  if dropped > 0 then begin
    output_string oc (to_json ?run (Truncated { dropped }));
    output_char oc '\n'
  end

let flush_jsonl ?run oc t = write_jsonl ?run ~dropped:(dropped t) oc (contents t)

(* --- derived views ------------------------------------------------------ *)

let start_provenances events =
  List.filter_map
    (function Job_start { job; provenance; _ } -> Some (job, provenance) | _ -> None)
    events
