(* `resa explain`: replay a JSONL trace and reconstruct, per job, why it
   started when it did — submission, blocked episodes with their binding
   constraint, policy plans, the start provenance and the completion.

   Pure string processing over parsed events, so it can replay traces
   produced by any past run of any policy. *)

type blocked = { reason : Trace.provenance; first : int; lo : int; hi : int; need : int; have : int; count : int }

type job_story = {
  id : int;
  mutable submit : int option;
  mutable p : int;
  mutable q : int;
  mutable blocked : blocked list; (* reverse order of first occurrence *)
  mutable planned : (int * int) list; (* (decision time, planned start), reverse *)
  mutable start : (int * int * Trace.provenance) option; (* time, wait, provenance *)
  mutable finish : int option;
}

type run_acc = {
  mutable jobs : job_story list; (* reverse first-appearance order *)
  by_id : (int, job_story) Hashtbl.t;
  mutable accepted : int;
  mutable rejected : int;
  mutable decisions : int;
  mutable wakes : int;
  mutable truncated : int; (* events dropped by a bounded sink before flush *)
}

let story acc id =
  match Hashtbl.find_opt acc.by_id id with
  | Some s -> s
  | None ->
    let s =
      { id; submit = None; p = 0; q = 0; blocked = []; planned = []; start = None; finish = None }
    in
    Hashtbl.add acc.by_id id s;
    acc.jobs <- s :: acc.jobs;
    s

let feed acc = function
  | Trace.Job_submit { time; job; p; q } ->
    let s = story acc job in
    s.submit <- Some time;
    s.p <- p;
    s.q <- q
  | Trace.Job_start { time; job; wait; provenance } ->
    (story acc job).start <- Some (time, wait, provenance)
  | Trace.Job_finish { time; job } -> (story acc job).finish <- Some time
  | Trace.Head_blocked { time; job; reason; lo; hi; need; have; _ } ->
    let s = story acc job in
    (match List.find_opt (fun b -> b.reason = reason) s.blocked with
    | Some b ->
      s.blocked <-
        { b with count = b.count + 1 } :: List.filter (fun x -> x.reason <> reason) s.blocked
    | None -> s.blocked <- { reason; first = time; lo; hi; need; have; count = 1 } :: s.blocked)
  | Trace.Planned { time; job; at; _ } ->
    let s = story acc job in
    (* Keep only plan changes: consecutive identical plans collapse. *)
    (match s.planned with
    | (_, prev) :: _ when prev = at -> ()
    | _ -> s.planned <- (time, at) :: s.planned)
  | Trace.Decision _ -> acc.decisions <- acc.decisions + 1
  | Trace.Resv_accept _ -> acc.accepted <- acc.accepted + 1
  | Trace.Resv_reject _ -> acc.rejected <- acc.rejected + 1
  | Trace.Sim_wake _ -> acc.wakes <- acc.wakes + 1
  | Trace.Truncated { dropped } -> acc.truncated <- acc.truncated + dropped

let render_story b s =
  Buffer.add_string b (Printf.sprintf "job %d" s.id);
  if s.p > 0 || s.q > 0 then Buffer.add_string b (Printf.sprintf " (p=%d, q=%d)" s.p s.q);
  Buffer.add_string b ":";
  (match s.submit with
  | Some t -> Buffer.add_string b (Printf.sprintf " submitted t=%d" t)
  | None -> Buffer.add_string b " (submission not traced)");
  List.iter
    (fun blk ->
      Buffer.add_string b
        (Printf.sprintf "; %s x%d (first t=%d, window [%d,%d) need %d have %d)"
           (Trace.provenance_to_string blk.reason)
           blk.count blk.first blk.lo blk.hi blk.need blk.have))
    (List.rev s.blocked);
  List.iter
    (fun (t, at) -> Buffer.add_string b (Printf.sprintf "; planned at t=%d for t=%d" t at))
    (List.rev s.planned);
  (match s.start with
  | Some (t, wait, prov) ->
    Buffer.add_string b
      (Printf.sprintf "; started t=%d (wait %d, %s)" t wait (Trace.provenance_to_string prov))
  | None -> Buffer.add_string b "; never started");
  (match s.finish with
  | Some t -> Buffer.add_string b (Printf.sprintf "; finished t=%d" t)
  | None -> ());
  Buffer.add_char b '\n'

let render events =
  let runs : (string, run_acc) Hashtbl.t = Hashtbl.create 4 in
  let order = ref [] in
  let run_acc name =
    match Hashtbl.find_opt runs name with
    | Some acc -> acc
    | None ->
      let acc =
        {
          jobs = [];
          by_id = Hashtbl.create 64;
          accepted = 0;
          rejected = 0;
          decisions = 0;
          wakes = 0;
          truncated = 0;
        }
      in
      Hashtbl.add runs name acc;
      order := name :: !order;
      acc
  in
  List.iter (fun (run, ev) -> feed (run_acc (Option.value run ~default:"run")) ev) events;
  let b = Buffer.create 4096 in
  List.iter
    (fun name ->
      let acc = Hashtbl.find runs name in
      Buffer.add_string b (Printf.sprintf "== %s ==\n" name);
      Buffer.add_string b
        (Printf.sprintf "decisions: %d, forced wake-ups: %d" acc.decisions acc.wakes);
      if acc.accepted + acc.rejected > 0 then
        Buffer.add_string b
          (Printf.sprintf ", reservations: %d accepted / %d rejected" acc.accepted acc.rejected);
      Buffer.add_char b '\n';
      if acc.truncated > 0 then
        Buffer.add_string b
          (Printf.sprintf
             "warning: %d event%s dropped (ring buffer overflow) — stories may be incomplete\n"
             acc.truncated
             (if acc.truncated = 1 then "" else "s"));
      let jobs = List.sort (fun a b -> compare a.id b.id) acc.jobs in
      List.iter (render_story b) jobs;
      Buffer.add_char b '\n')
    (List.rev !order);
  Buffer.contents b
