(** Wall-clock spans and operation counters (the nondeterministic half of
    the observability layer; deterministic events live in {!Trace}).

    Timing data collected here is kept strictly out of deterministic
    outputs: it feeds Chrome trace exports and the bench trajectory JSON,
    never tables or schedules. Profiling is {e off} by default — enable
    with [RESA_PROF=1] or {!enable} — and the disabled path of {!incr},
    {!add}, {!with_span} and {!add_busy} is a single flag load and branch,
    cheap enough for Timeline and event-heap hot loops to call
    unconditionally. All state is domain-safe (atomic counters, mutexed
    span store). *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val now_ns : unit -> int
(** Wall-clock nanoseconds (works whether or not profiling is enabled). *)

type counter

val counter : string -> counter
(** Interned by name: the same name always yields the same counter. Create
    once at module level, not per call. *)

val incr : counter -> unit
(** No-op when profiling is disabled. *)

val add : counter -> int -> unit
val value : counter -> int

val counters : unit -> (string * int) list
(** All registered counters with current values, sorted by name. *)

type span = { name : string; cat : string; domain : int; start_ns : int; dur_ns : int }

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** Run the thunk, recording a span when profiling is enabled (also on
    exception). [cat] defaults to ["span"]. *)

val spans : unit -> span list
(** Completed spans, ordered by start time. *)

val add_busy : int -> unit
(** Credit the calling domain with busy nanoseconds (executor pool task
    accounting). No-op when disabled. *)

val busy_ns : unit -> (int * int) list
(** Per-domain busy nanoseconds accumulated so far, keyed by the real
    domain id (the table grows on demand, so distinct domains never merge
    however many pools the process has spawned), ascending ids, zero
    entries omitted. *)

val reset : unit -> unit
(** Zero all counters and busy accumulators, drop all spans. *)

val peak_rss_kb : unit -> int option
(** The process's peak resident set size (Linux [VmHWM], in kB) — what a
    long replay reports to prove its footprint stayed flat. [None] where
    [/proc/self/status] is unavailable. Works whether or not profiling is
    enabled; like all wall-clock data here it must never feed deterministic
    outputs. *)
