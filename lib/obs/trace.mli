(** Structured tracing: typed scheduler/simulator events and pluggable sinks.

    The deterministic half of the observability layer (DESIGN.md §6). Events
    carry only simulation data — instants, job ids, capacities, decisions —
    never wall-clock time, so a traced run produces the identical event
    stream at any executor pool size; wall-clock profiling lives in {!Prof}
    and is exported separately.

    Instrumentation sites are written

    {[ if Trace.enabled obs then Trace.emit obs (Trace.Job_start {...}) ]}

    so the disabled path ([obs = null], the default everywhere) costs one
    physical comparison and allocates nothing — untraced runs are
    byte-identical to, and as fast as, the uninstrumented code (tested). *)

type provenance =
  | Started_now  (** Started without overtaking any queued job. *)
  | Backfilled_ahead_of_head  (** Started while an earlier-queued job waits. *)
  | Blocked_by_reservation
      (** Would fit if reservations were ignored: a blocked window is the
          binding constraint. *)
  | Blocked_by_capacity  (** Running jobs (or the machine) are the binding constraint. *)
  | Held_by_policy
      (** Fits right now but the policy chose to wait (planning policies). *)

val provenance_to_string : provenance -> string
(** Stable kebab-case names, used in JSONL, CSV and [resa explain]. *)

val provenance_of_string : string -> provenance option

type event =
  | Job_submit of { time : int; job : int; p : int; q : int }
  | Job_start of { time : int; job : int; wait : int; provenance : provenance }
  | Job_finish of { time : int; job : int }  (** Actual completion (estimates released). *)
  | Decision of { time : int; policy : string; queued : int; started : int; wake : int option }
      (** One policy consultation. *)
  | Head_blocked of {
      time : int;
      policy : string;
      job : int;
      reason : provenance;
      lo : int;
      hi : int;
      need : int;
      have : int;
    }
      (** The first still-waiting queued job, with the window [\[lo,hi)] it
          needs, the capacity [need] it requires and the minimum [have] the
          window offers. *)
  | Planned of { time : int; policy : string; job : int; at : int }
      (** Policy-specific provenance: a planned/guaranteed start instant. *)
  | Resv_accept of { resv : int; start : int; p : int; q : int }
  | Resv_reject of { start : int; p : int; q : int; reason : string }
  | Sim_wake of { time : int; forced : bool }
      (** Simulator-scheduled extra decision instant ([forced] = deadlock
          avoidance wake-up past the last breakpoint). *)
  | Truncated of { dropped : int }
      (** A bounded sink overflowed: [dropped] older events are missing
          before this point. Emitted by flush paths ({!write_jsonl},
          {!flush_jsonl}), never by the simulator; [resa explain] warns
          when it sees one. *)

type t
(** A sink. Values are single-owner within one simulation run; the [file]
    sink serialises concurrent writers internally. *)

val null : t
(** Drops everything; [enabled null = false]. The default sink. *)

val buffer : ?cap:int -> unit -> t
(** Bounded ring buffer keeping the most recent [cap] events (default
    2{^20}); older events are dropped and counted. *)

val file : ?run:string -> out_channel -> t
(** JSONL sink: one event per line, written immediately (mutex-protected).
    [run] tags every line — used when several runs share one file. *)

val enabled : t -> bool
(** [false] exactly for {!null}. Check before building an event. *)

val emit : t -> event -> unit

val contents : t -> event list
(** Ring-buffer contents, oldest first; [[]] for [null] and [file] sinks. *)

val dropped : t -> int
(** Events evicted from a ring buffer so far. *)

val to_json : ?run:string -> event -> string
(** One JSONL line (no trailing newline). *)

val of_json : Jsonu.t -> (string option * event, string) result
(** Inverse of {!to_json}: the optional ["run"] tag and the event. *)

val parse_line : string -> (string option * event, string) result

val write_jsonl : ?run:string -> ?dropped:int -> out_channel -> event list -> unit
(** One event per line. When [dropped > 0] a trailing {!Truncated} line
    records that the stream is incomplete (default [0]: no line). *)

val flush_jsonl : ?run:string -> out_channel -> t -> unit
(** [write_jsonl] of a ring buffer's {!contents} with its {!dropped} count
    — the one call sites should use to persist a ring, so truncation is
    never silently lost. *)

val start_provenances : event list -> (int * provenance) list
(** Per started job id, its start provenance, in event order — the
    provenance hook behind [Metrics.per_job]. *)
