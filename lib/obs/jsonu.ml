(* Minimal self-contained JSON: a value type, a recursive-descent parser
   and string escaping. Exists so the observability layer (JSONL traces,
   Chrome exports, `resa explain`) stays free of third-party dependencies;
   it is not a general-purpose JSON library — numbers are floats, and the
   parser accepts exactly the documents this repository emits (strict
   RFC 8259 core: no comments, no trailing commas). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.0f" f)
    else Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        write b v)
      l;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        write b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- parser ------------------------------------------------------------ *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | Some x -> parse_error "expected %c at %d, got %c" ch c.i x
  | None -> parse_error "expected %c at %d, got end of input" ch c.i

let literal c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else parse_error "bad literal at %d" c.i

let parse_string_body c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> c.i <- c.i + 1
    | Some '\\' -> (
      c.i <- c.i + 1;
      match peek c with
      | None -> parse_error "unterminated escape"
      | Some ch ->
        c.i <- c.i + 1;
        (match ch with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if c.i + 4 > String.length c.s then parse_error "short \\u escape";
          let code = int_of_string ("0x" ^ String.sub c.s c.i 4) in
          c.i <- c.i + 4;
          (* Only the codepoints we ever emit (< 0x80) round-trip exactly;
             anything else degrades to '?' rather than UTF-8 encoding. *)
          if code < 0x80 then Buffer.add_char b (Char.chr code) else Buffer.add_char b '?'
        | ch -> parse_error "bad escape \\%c" ch);
        go ())
    | Some ch ->
      c.i <- c.i + 1;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.i in
  let numchar ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.i < String.length c.s && numchar c.s.[c.i] do
    c.i <- c.i + 1
  done;
  match float_of_string_opt (String.sub c.s start (c.i - start)) with
  | Some f -> Num f
  | None -> parse_error "bad number at %d" start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '"' -> Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.i <- c.i + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.i <- c.i + 1;
          items (v :: acc)
        | Some ']' ->
          c.i <- c.i + 1;
          List.rev (v :: acc)
        | _ -> parse_error "expected , or ] at %d" c.i
      in
      List (items [])
    end
  | Some '{' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.i <- c.i + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.i <- c.i + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          c.i <- c.i + 1;
          List.rev ((k, v) :: acc)
        | _ -> parse_error "expected , or } at %d" c.i
      in
      Obj (members [])
    end
  | Some ('0' .. '9' | '-') -> parse_number c
  | Some ch -> parse_error "unexpected %c at %d" ch c.i

let of_string s =
  let c = { s; i = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.i <> String.length s then Error (Printf.sprintf "trailing input at %d" c.i)
    else Ok v
  | exception Parse_error m -> Error m

(* --- accessors ---------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_int = function Num f when Float.is_integer f -> Some (int_of_float f) | _ -> None

let to_str = function Str s -> Some s | _ -> None
