(* Bench-trajectory regression gate: compare two BENCH_*.json files
   row-by-row and flag relative slowdowns.

   Rows are the uniform records Bench_json emits ({experiment, n, algo,
   wall_s, domains, seed, git_rev} plus the ts/host stamp). Two rows match
   when their (experiment, n, algo, domains, seed) keys coincide; within a
   file, duplicate keys collapse to the minimum wall time (best-of, the
   usual bench convention — reruns only ever add noise upward). The gate
   compares new/old wall ratios against a threshold:

   - algo names under the "rss_mb:" prefix carry megabytes, not seconds;
     they are compared but reported as informational, never failing the
     gate (RSS is a process-wide high-water mark, monotone across rows of
     one harness run, so only regressions of the *first* row of a regime
     would be meaningful).
   - rows whose wall time is below [min_wall] in both files sit under the
     timer noise floor and are skipped from gating.
   - a non-finite wall (RSS off-Linux serialises as nan -> null) skips the
     row. *)

type row = {
  experiment : string;
  n : int;
  algo : string;
  wall_s : float;
  domains : int;
  seed : int;
  git_rev : string;
  ts : string option;
  host : string option;
}

let key r = Printf.sprintf "%s/n=%d/%s/d=%d/seed=%d" r.experiment r.n r.algo r.domains r.seed

let informational r =
  String.length r.algo >= 7 && String.sub r.algo 0 7 = "rss_mb:"

let row_of_json j =
  let ( let* ) o f = Option.bind o f in
  let int k = Option.bind (Jsonu.member k j) Jsonu.to_int in
  let str k = Option.bind (Jsonu.member k j) Jsonu.to_str in
  let* experiment = str "experiment" in
  let* n = int "n" in
  let* algo = str "algo" in
  let* wall_s =
    match Jsonu.member "wall_s" j with
    | Some (Jsonu.Num f) -> Some f
    | Some Jsonu.Null -> Some Float.nan
    | _ -> None
  in
  let* domains = int "domains" in
  let* seed = int "seed" in
  let git_rev = Option.value (str "git_rev") ~default:"unknown" in
  Some { experiment; n; algo; wall_s; domains; seed; git_rev; ts = str "ts"; host = str "host" }

let rows_of_json = function
  | Jsonu.List items ->
    let rows = List.filter_map row_of_json items in
    if rows = [] && items <> [] then Error "no bench records recognised" else Ok rows
  | _ -> Error "expected a JSON array of bench records"

let rows_of_string s =
  match Jsonu.of_string s with Error m -> Error m | Ok j -> rows_of_json j

(* --- comparison ---------------------------------------------------------- *)

type verdict = Regression | Improvement | Within | Info | Noise

type comparison = {
  ckey : string;
  old_wall : float;
  new_wall : float;
  ratio : float;  (* new / old *)
  verdict : verdict;
}

type report = {
  threshold : float;
  min_wall : float;
  comparisons : comparison list;  (* ratio-descending *)
  only_old : string list;
  only_new : string list;
  regressions : int;
  improvements : int;
  old_stamp : string;
  new_stamp : string;
}

let stamp_of = function
  | [] -> "empty"
  | r :: _ ->
    Printf.sprintf "%s%s%s"
      (match r.ts with Some t -> t ^ " " | None -> "")
      (match r.host with Some h -> h ^ " " | None -> "")
      r.git_rev

let index rows =
  let tbl : (string, row) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      if Float.is_finite r.wall_s then
        match Hashtbl.find_opt tbl (key r) with
        | Some prev -> if r.wall_s < prev.wall_s then Hashtbl.replace tbl (key r) r
        | None ->
          Hashtbl.add tbl (key r) r;
          order := key r :: !order)
    rows;
  (tbl, List.rev !order)

let compare_rows ?(threshold = 1.10) ?(min_wall = 0.05) ~old_rows ~new_rows () =
  if not (threshold > 1.0) then invalid_arg "Benchdiff.compare_rows: threshold must be > 1";
  let old_tbl, old_order = index old_rows in
  let new_tbl, new_order = index new_rows in
  let comparisons =
    List.filter_map
      (fun k ->
        match (Hashtbl.find_opt old_tbl k, Hashtbl.find_opt new_tbl k) with
        | Some o, Some n ->
          let ratio = if o.wall_s > 0.0 then n.wall_s /. o.wall_s else Float.nan in
          let verdict =
            if informational o then Info
            else if o.wall_s < min_wall && n.wall_s < min_wall then Noise
            else if Float.is_finite ratio && ratio > threshold then Regression
            else if Float.is_finite ratio && ratio < 1.0 /. threshold then Improvement
            else Within
          in
          Some { ckey = k; old_wall = o.wall_s; new_wall = n.wall_s; ratio; verdict }
        | _ -> None)
      old_order
    |> List.stable_sort (fun a b -> compare b.ratio a.ratio)
  in
  let missing_from tbl order = List.filter (fun k -> not (Hashtbl.mem tbl k)) order in
  let count v = List.length (List.filter (fun c -> c.verdict = v) comparisons) in
  {
    threshold;
    min_wall;
    comparisons;
    only_old = missing_from new_tbl old_order;
    only_new = missing_from old_tbl new_order;
    regressions = count Regression;
    improvements = count Improvement;
    old_stamp = stamp_of old_rows;
    new_stamp = stamp_of new_rows;
  }

let verdict_tag = function
  | Regression -> "REGRESSION"
  | Improvement -> "improved"
  | Within -> "ok"
  | Info -> "info"
  | Noise -> "noise"

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "old: %s\nnew: %s\n" r.old_stamp r.new_stamp);
  Buffer.add_string b
    (Printf.sprintf "threshold: %.2fx (noise floor %.3fs), %d row pairs\n" r.threshold
       r.min_wall (List.length r.comparisons));
  let w =
    List.fold_left (fun acc c -> max acc (String.length c.ckey)) 24 r.comparisons
  in
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "%-*s  %10.4f -> %10.4f  %6s  %s\n" w c.ckey c.old_wall c.new_wall
           (if Float.is_finite c.ratio then Printf.sprintf "%.2fx" c.ratio else "-")
           (verdict_tag c.verdict)))
    r.comparisons;
  List.iter
    (fun k -> Buffer.add_string b (Printf.sprintf "%-*s  only in old\n" w k))
    r.only_old;
  List.iter
    (fun k -> Buffer.add_string b (Printf.sprintf "%-*s  only in new\n" w k))
    r.only_new;
  Buffer.add_string b
    (Printf.sprintf "%d regression%s, %d improvement%s\n" r.regressions
       (if r.regressions = 1 then "" else "s")
       r.improvements
       (if r.improvements = 1 then "" else "s"));
  Buffer.contents b
