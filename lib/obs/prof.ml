(* Wall-clock spans and operation counters — the nondeterministic half of
   the observability layer. Everything here is timing data: it is never
   written into deterministic outputs (tables, schedules, JSONL event
   traces), only into Chrome exports and bench trajectory JSON.

   Profiling is off by default (enable with RESA_PROF=1 or [enable]); the
   disabled path of every operation is one flag load and a branch, so hot
   loops (Timeline ops, heap pushes) can call [incr] unconditionally.
   Counters are atomics — worker domains of the executor pool bump them
   concurrently — and spans record which domain produced them. *)

let flag =
  ref
    (match Sys.getenv_opt "RESA_PROF" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let enabled () = !flag [@@inline]
let enable () = flag := true
let disable () = flag := false

(* Wall-clock nanoseconds. [Unix.gettimeofday] is the only sub-second clock
   the stdlib distribution offers without C stubs; spans are comparative
   profiling data, so occasional NTP slew is acceptable. *)
let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

(* --- counters ----------------------------------------------------------- *)

type counter = { cname : string; cell : int Atomic.t }

let registry : (string, counter) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()

let counter cname =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt registry cname with
    | Some c -> c
    | None ->
      let c = { cname; cell = Atomic.make 0 } in
      Hashtbl.add registry cname c;
      c
  in
  Mutex.unlock registry_mutex;
  c

let incr c = if !flag then Atomic.incr c.cell [@@inline]
let add c n = if !flag then ignore (Atomic.fetch_and_add c.cell n) [@@inline]
let value c = Atomic.get c.cell

let counters () =
  Mutex.lock registry_mutex;
  let all = Hashtbl.fold (fun _ c acc -> (c.cname, Atomic.get c.cell) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort compare all

(* --- spans -------------------------------------------------------------- *)

type span = { name : string; cat : string; domain : int; start_ns : int; dur_ns : int }

let spans_store : span list ref = ref []
let spans_mutex = Mutex.create ()

let record_span s =
  Mutex.lock spans_mutex;
  spans_store := s :: !spans_store;
  Mutex.unlock spans_mutex

let with_span ?(cat = "span") name f =
  if not !flag then f ()
  else begin
    let start_ns = now_ns () in
    let finish () =
      record_span
        {
          name;
          cat;
          domain = (Domain.self () :> int);
          start_ns;
          dur_ns = now_ns () - start_ns;
        }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let spans () =
  Mutex.lock spans_mutex;
  let l = !spans_store in
  Mutex.unlock spans_mutex;
  (* Start-time order: stable enough for reports, and independent of the
     completion interleaving across domains. *)
  List.stable_sort (fun a b -> compare (a.start_ns, a.name) (b.start_ns, b.name)) l

(* --- executor busy time ------------------------------------------------- *)

(* Busy nanoseconds keyed by the *real* domain id. Domain ids grow
   monotonically over the process lifetime (pools respawn), so a fixed
   modulo table would silently merge distinct domains once ids wrap its
   size; instead the table grows on demand. The hot path is lock-free: one
   atomic array load plus an indexed fetch-and-add. Growth copies the cell
   *references* into a larger array under a mutex and publishes it with a
   single atomic store, so adds racing a growth land in cells both arrays
   share — no accounting is lost. *)
let busy_mutex = Mutex.create ()
let busy = Atomic.make (Array.init 256 (fun _ -> Atomic.make 0))

let rec busy_cell id =
  let arr = Atomic.get busy in
  if id < Array.length arr then arr.(id)
  else begin
    Mutex.lock busy_mutex;
    let arr = Atomic.get busy in
    if id >= Array.length arr then begin
      let len = ref (Array.length arr) in
      while id >= !len do
        len := 2 * !len
      done;
      let b =
        Array.init !len (fun i -> if i < Array.length arr then arr.(i) else Atomic.make 0)
      in
      Atomic.set busy b
    end;
    Mutex.unlock busy_mutex;
    busy_cell id
  end

let add_busy ns =
  if !flag then ignore (Atomic.fetch_and_add (busy_cell (Domain.self () :> int)) ns)

let busy_ns () =
  let arr = Atomic.get busy in
  let acc = ref [] in
  for id = Array.length arr - 1 downto 0 do
    let v = Atomic.get arr.(id) in
    if v > 0 then acc := (id, v) :: !acc
  done;
  !acc

(* --- reset -------------------------------------------------------------- *)

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry;
  Mutex.unlock registry_mutex;
  Mutex.lock spans_mutex;
  spans_store := [];
  Mutex.unlock spans_mutex;
  Array.iter (fun a -> Atomic.set a 0) (Atomic.get busy)

(* --- process memory ------------------------------------------------------ *)

let peak_rss_kb () =
  (* VmHWM from /proc/self/status: the process's resident-set high-water
     mark in kB. Linux-only by construction; [None] elsewhere. *)
  match In_channel.with_open_text "/proc/self/status" In_channel.input_lines with
  | lines ->
    List.find_map
      (fun line ->
        match String.index_opt line ':' with
        | Some i when String.sub line 0 i = "VmHWM" ->
          let rest = String.sub line (i + 1) (String.length line - i - 1) in
          let digits = String.to_seq rest |> Seq.filter (fun c -> c >= '0' && c <= '9') in
          int_of_string_opt (String.of_seq digits)
        | _ -> None)
      lines
  | exception Sys_error _ -> None
