(* resa: command-line front end.

   Subcommands:
     generate   emit an instance file from one of the built-in families
     solve      run a scheduling algorithm on an instance file
     simulate   online simulation of an SWF trace under a chosen policy
                (--trace/--chrome/--csv export the observability streams)
     replay     constant-memory streaming replay of a (synthetic or SWF)
                trace: incremental metrics, timeline history GC, flat RSS
     explain    replay a JSONL event trace: per job, why it started when it did
     top        live terminal view of a heartbeat stream (replay --heartbeat)
     benchdiff  regression gate over two bench trajectory JSON files
     trace      emit a synthetic Standard Workload Format trace
     bounds     print the Figure 4 bound curves for a list of alphas
     info       summarise an instance file (bounds, alpha interval, profile)

   Experiments that regenerate the paper's figures live in the benchmark
   harness: `dune exec bench/main.exe [fig1..fig4 t1..t5 ablation perf]`. *)

open Cmdliner
open Resa_core
open Resa_algos

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (reproducible).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel sections (overrides $(b,RESA_DOMAINS); results are \
           identical at any value).")

let apply_jobs = Option.iter Resa_par.set_domains

let read_instance path =
  match if path = "-" then Instance_io.of_string (In_channel.input_all stdin) else Instance_io.read_file path with
  | Ok inst -> inst
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 2

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate family k m len c n alpha pmax seed =
  let rng = Prng.create ~seed in
  let known_opt = ref None in
  let inst =
    match family with
    | "prop2" ->
      let inst, opt = Resa_gen.Adversarial.prop2 ~k in
      known_opt := Some opt;
      inst
    | "graham" ->
      let inst, opt = Resa_gen.Adversarial.graham_tight ~m in
      known_opt := Some opt;
      inst
    | "fcfs-bad" ->
      let inst, opt = Resa_gen.Adversarial.fcfs_bad ~m ~len in
      known_opt := Some opt;
      inst
    | "fig2" -> Resa_gen.Adversarial.figure2_example ()
    | "packed" ->
      let p = Resa_gen.Packed.generate rng ~m ~c ~target_jobs:n ~reservation_fraction:0.2 () in
      known_opt := Some p.optimal;
      p.instance
    | "random" -> Resa_gen.Random_inst.alpha_restricted rng ~m ~n ~alpha ~pmax ()
    | "workload" -> Resa_gen.Random_inst.cluster_workload rng ~m ~n ~max_runtime:pmax
    | other ->
      Printf.eprintf "unknown family %S\n" other;
      exit 2
  in
  (match !known_opt with Some v -> Printf.printf "# optimal %d\n" v | None -> ());
  print_string (Instance_io.to_string inst)

let generate_cmd =
  let family =
    Arg.(
      value
      & pos 0 string "random"
      & info [] ~docv:"FAMILY"
          ~doc:"One of: prop2, graham, fcfs-bad, fig2, packed, random, workload.")
  in
  let k = Arg.(value & opt int 4 & info [ "k" ] ~doc:"Parameter k of the prop2 family.") in
  let m = Arg.(value & opt int 8 & info [ "m" ] ~doc:"Number of machines.") in
  let len = Arg.(value & opt int 20 & info [ "len" ] ~doc:"Narrow-job length (fcfs-bad).") in
  let c = Arg.(value & opt int 20 & info [ "c" ] ~doc:"Target optimal makespan (packed).") in
  let n = Arg.(value & opt int 12 & info [ "n" ] ~doc:"Number of jobs.") in
  let alpha = Arg.(value & opt float 0.5 & info [ "alpha" ] ~doc:"Alpha restriction (random).") in
  let pmax = Arg.(value & opt int 10 & info [ "pmax" ] ~doc:"Maximum job duration.") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Emit an instance file from a built-in family")
    Term.(const generate $ family $ k $ m $ len $ c $ n $ alpha $ pmax $ seed_arg)

(* ------------------------------------------------------------------ *)
(* solve                                                               *)
(* ------------------------------------------------------------------ *)

let priority_of_string s =
  match String.lowercase_ascii s with
  | "fifo" -> Priority.Fifo
  | "lpt" -> Priority.Lpt
  | "spt" -> Priority.Spt
  | "widest" -> Priority.Widest_first
  | "narrowest" -> Priority.Narrowest_first
  | "area" -> Priority.Largest_area_first
  | s when String.length s > 7 && String.sub s 0 7 = "random:" ->
    Priority.Random (int_of_string (String.sub s 7 (String.length s - 7)))
  | other ->
    Printf.eprintf "unknown priority %S\n" other;
    exit 2

let solve path algo priority show_gantt width =
  let inst = read_instance path in
  let priority = priority_of_string priority in
  let named name sched = (name, sched) in
  let name, sched =
    match String.lowercase_ascii algo with
    | "lsrc" -> named "LSRC" (Lsrc.run ~priority inst)
    | "fcfs" -> named "FCFS" (Fcfs.run ~priority inst)
    | "easy" -> named "EASY" (Backfill.easy ~priority inst)
    | "conservative" | "cons" -> named "CONS" (Backfill.conservative ~priority inst)
    | "shelf-nfdh" -> named "NFDH" (Shelf.run Shelf.Nfdh inst)
    | "shelf-ffdh" -> named "FFDH" (Shelf.run Shelf.Ffdh inst)
    | "bnb" | "opt" ->
      let r = Resa_exact.Bnb.solve inst in
      named (if r.optimal then "OPT" else "B&B(budget hit)") r.schedule
    | "dp" ->
      let sched, _ = Resa_exact.Single_machine.solve inst in
      named "OPT(dp)" sched
    | "preemptive" ->
      (* Preemptive optimum reported on its own (it has no Schedule.t). *)
      let r = Preemptive.optimal inst in
      Printf.printf "preemptive optimal makespan: %d\n" r.makespan;
      Array.iteri
        (fun i l ->
          Printf.printf "  J%d:" i;
          List.iter (fun (lo, hi) -> Printf.printf " [%d,%d)" lo hi) l;
          print_newline ())
        r.intervals;
      exit 0
    | other ->
      Printf.eprintf "unknown algorithm %S\n" other;
      exit 2
  in
  (match Schedule.validate inst sched with
  | Ok () -> ()
  | Error v ->
    Printf.eprintf "internal error: infeasible schedule: %s\n"
      (Format.asprintf "%a" Schedule.pp_violation v);
    exit 3);
  let cmax = Schedule.makespan inst sched in
  let lb = Resa_exact.Lower_bounds.best inst in
  Printf.printf "%s makespan: %d\n" name cmax;
  Printf.printf "lower bound: %d (ratio <= %.3f)\n" lb
    (if lb > 0 then float_of_int cmax /. float_of_int lb else Float.nan);
  Printf.printf "utilization: %.3f\n" (Schedule.utilization inst sched);
  if show_gantt then print_string (Gantt.render ~width inst sched)

let solve_cmd =
  let path = Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc:"Instance file ('-' for stdin).") in
  let algo =
    Arg.(
      value & opt string "lsrc"
      & info [ "algo"; "a" ]
          ~doc:
            "lsrc, fcfs, easy, conservative, shelf-nfdh, shelf-ffdh, bnb, dp (exact, m=1), \
             or preemptive (exact, q=1 jobs).")
  in
  let priority =
    Arg.(
      value & opt string "fifo"
      & info [ "priority"; "p" ] ~doc:"fifo, lpt, spt, widest, narrowest, area, random:SEED.")
  in
  let gantt = Arg.(value & flag & info [ "gantt"; "g" ] ~doc:"Render an ASCII Gantt chart.") in
  let width = Arg.(value & opt int 72 & info [ "width" ] ~doc:"Gantt chart width.") in
  Cmd.v
    (Cmd.info "solve" ~doc:"Schedule an instance file and report the makespan")
    Term.(const solve $ path $ algo $ priority $ gantt $ width)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate swf_path m n max_runtime mean_gap seed policy_name overestimate jobs trace_out
    chrome_out csv_out =
  apply_jobs jobs;
  let rng = Prng.create ~seed in
  let entries =
    match swf_path with
    | Some path -> (
      match In_channel.with_open_text path In_channel.input_all |> Resa_swf.Swf.parse_string with
      | Ok entries -> entries
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2)
    | None -> Resa_swf.Swf.generate ~overestimate rng ~m ~n ~max_runtime ~mean_gap
  in
  let triples = Resa_swf.Swf.to_estimated_workload entries ~m in
  let job_numbers = Resa_swf.Swf.job_numbers entries in
  let subs = List.map (fun (job, submit, _) -> Resa_sim.Simulator.{ job; submit }) triples in
  let estimates = Array.of_list (List.map (fun (_, _, e) -> e) triples) in
  let policies =
    let open Resa_sim.Policy in
    match String.lowercase_ascii policy_name with
    | "all" -> all
    | "fcfs" -> [ fcfs ]
    | "easy" -> [ easy ]
    | "cons" | "conservative" -> [ conservative ]
    | "lsrc" | "aggressive" -> [ aggressive ]
    | other ->
      Printf.eprintf "unknown policy %S\n" other;
      exit 2
  in
  let trace_out =
    match trace_out with Some _ as p -> p | None -> Sys.getenv_opt "RESA_TRACE"
  in
  let tracing = trace_out <> None || chrome_out <> None || csv_out <> None in
  print_endline Resa_sim.Metrics.header;
  (* One independent simulation per policy: fan out over the domain pool
     (row order, and hence output, is policy order regardless of pool
     size). Each run owns a private ring-buffer sink, so traced event
     streams are deterministic at any pool size; they are serialised below
     in policy order. *)
  let results =
    Resa_par.parallel_map_list
      (fun policy ->
        let obs = if tracing then Resa_obs.Trace.buffer () else Resa_obs.Trace.null in
        let trace = Resa_sim.Simulator.run_estimated ~obs ~policy ~m ~estimates subs in
        let s = Resa_sim.Metrics.summarize trace in
        ( policy.Resa_sim.Policy.name,
          Resa_sim.Metrics.row ~name:policy.Resa_sim.Policy.name s,
          trace,
          obs ))
      policies
  in
  List.iter (fun (_, row, _, _) -> print_endline row) results;
  Option.iter
    (fun path ->
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun (name, _, _, obs) -> Resa_obs.Trace.flush_jsonl ~run:name oc obs) results))
    trace_out;
  Option.iter
    (fun path ->
      let slices =
        List.concat_map
          (fun (name, _, trace, _) -> Resa_sim.Sim_trace.chrome_slices ~process:name trace)
          results
        @ (if Resa_obs.Prof.enabled () then
             Resa_obs.Chrome.of_spans ~process:"executor" (Resa_obs.Prof.spans ())
           else [])
      in
      Out_channel.with_open_text path (fun oc -> Resa_obs.Chrome.write oc slices))
    chrome_out;
  Option.iter
    (fun path ->
      Out_channel.with_open_text path (fun oc ->
          List.iteri
            (fun i (name, _, trace, obs) ->
              let provs = Resa_obs.Trace.start_provenances (Resa_obs.Trace.contents obs) in
              let provenance id =
                match List.assoc_opt id provs with
                | Some p -> Resa_obs.Trace.provenance_to_string p
                | None -> ""
              in
              let csv =
                Resa_sim.Metrics.per_job_csv ~run:name
                  (Resa_sim.Metrics.per_job ~provenance ~job_numbers trace)
              in
              (* One header for the whole file. *)
              let csv =
                if i = 0 then csv
                else
                  match String.index_opt csv '\n' with
                  | Some k -> String.sub csv (k + 1) (String.length csv - k - 1)
                  | None -> csv
              in
              Out_channel.output_string oc csv)
            results))
    csv_out

let simulate_cmd =
  let swf =
    Arg.(value & opt (some string) None & info [ "swf" ] ~docv:"FILE" ~doc:"SWF trace file (otherwise synthetic).")
  in
  let m = Arg.(value & opt int 64 & info [ "m" ] ~doc:"Number of machines.") in
  let n = Arg.(value & opt int 200 & info [ "n" ] ~doc:"Synthetic trace length.") in
  let max_runtime = Arg.(value & opt int 200 & info [ "max-runtime" ] ~doc:"Synthetic max runtime.") in
  let mean_gap = Arg.(value & opt float 5.0 & info [ "mean-gap" ] ~doc:"Mean inter-arrival gap.") in
  let policy = Arg.(value & opt string "all" & info [ "policy" ] ~doc:"all, fcfs, easy, cons or lsrc.") in
  let overestimate =
    Arg.(
      value & opt float 1.0
      & info [ "overestimate" ]
          ~doc:"Mean walltime overestimation factor for synthetic traces (>= 1).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the structured event stream (JSONL, one event per line, tagged with the \
             policy name) to $(docv). Defaults to $(b,RESA_TRACE) when set.")
  in
  let chrome_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON Gantt view (one process per policy, one track per \
             processor; open in Perfetto or chrome://tracing) to $(docv).")
  in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:
            "Write per-job metrics (submit, start, wait, slowdown, provenance) as CSV to \
             $(docv).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Online simulation of a (synthetic or SWF) trace")
    Term.(
      const simulate $ swf $ m $ n $ max_runtime $ mean_gap $ seed_arg $ policy $ overestimate
      $ jobs_arg $ trace_out $ chrome_out $ csv_out)

(* ------------------------------------------------------------------ *)
(* replay                                                              *)
(* ------------------------------------------------------------------ *)

let replay swf_path m n max_runtime mean_gap seed policy_name overestimate gc_every
    heartbeat_out hb_every hb_dt prom_out metrics_on =
  (* --prom needs the registry populated; --metrics asks for it explicitly
     (same switch as RESA_METRICS=1). *)
  if metrics_on || prom_out <> None then Resa_obs.Metrics.enable ();
  let policies =
    let open Resa_sim.Policy in
    match String.lowercase_ascii policy_name with
    | "all" -> all
    | "fcfs" -> [ fcfs ]
    | "easy" -> [ easy ]
    | "cons" | "conservative" -> [ conservative ]
    | "lsrc" | "aggressive" -> [ aggressive ]
    | other ->
      Printf.eprintf "unknown policy %S\n" other;
      exit 2
  in
  (* One pass per policy over a freshly opened stream (file re-read or
     synthetic re-seeded): nothing is shared across runs and nothing is
     retained within one, so the process high-water mark reflects a single
     replay's live set. Runs are sequential on purpose — overlapping them
     would sum their footprints into the RSS column. *)
  let with_stream k =
    match swf_path with
    | Some path -> Resa_swf.Swf_stream.with_file ~m path k
    | None ->
      let rng = Prng.create ~seed in
      k (Resa_swf.Swf_stream.synthetic ~overestimate rng ~m ~n ~max_runtime ~mean_gap)
  in
  (* Heartbeat sink: one JSONL file shared by all runs (run-tagged rows,
     like --trace); each line is flushed immediately so `resa top` can
     follow the stream through a pipe while the replay runs. *)
  let with_hb_channel k =
    match heartbeat_out with
    | None -> k None
    | Some "-" -> k (Some stdout)
    | Some path -> Out_channel.with_open_text path (fun oc -> k (Some oc))
  in
  with_hb_channel (fun hb_oc ->
      Printf.printf "%-8s %9s %10s %10s %9s %9s %7s %6s %8s %9s %8s %8s\n" "policy" "jobs" "Cmax"
        "mean_wait" "p50_wait" "p95_wait" "slowdn" "util" "wall_s" "jobs/s" "max_live" "rss_MB";
      List.iter
        (fun policy ->
          let ms = Resa_sim.Metrics.Stream.create ~m ~reservations:[] () in
          let t0 = Resa_obs.Prof.now_ns () in
          let on_heartbeat =
            Option.map
              (fun oc hb ->
                let elapsed_s = float_of_int (Resa_obs.Prof.now_ns () - t0) /. 1e9 in
                let wall =
                  Resa_sim.Heartbeat.
                    {
                      elapsed_s;
                      jobs_per_s =
                        float_of_int hb.Resa_sim.Simulator.hb_completed
                        /. Float.max elapsed_s 1e-9;
                      rss_mb =
                        Option.map
                          (fun kb -> float_of_int kb /. 1024.)
                          (Resa_obs.Prof.peak_rss_kb ());
                      wall_metrics = [];
                    }
                in
                Resa_sim.Heartbeat.write oc
                  (Resa_sim.Heartbeat.make ~run:policy.Resa_sim.Policy.name ~stream:ms
                     ~registry:true ~wall hb);
                flush oc)
              hb_oc
          in
          let stats =
            try
              with_stream (fun src ->
                  Resa_sim.Simulator.run_stream ~gc_every ~heartbeat_every:hb_every
                    ~heartbeat_dt:hb_dt ?on_heartbeat
                    ~on_record:(Resa_sim.Metrics.Stream.observe ms)
                    ~policy ~m
                    (fun () ->
                      Option.map
                        (fun (a : Resa_swf.Swf_stream.arrival) ->
                          Resa_sim.Simulator.
                            { job = a.job; submit = a.submit; estimate = a.estimate })
                        (src ())))
            with Resa_swf.Swf_stream.Parse_error { line; msg } ->
              Printf.eprintf "error: line %d: %s\n" line msg;
              exit 2
          in
          let wall_s = float_of_int (Resa_obs.Prof.now_ns () - t0) /. 1e9 in
          let s = Resa_sim.Metrics.Stream.summary ms in
          let rss_mb =
            match Resa_obs.Prof.peak_rss_kb () with
            | Some kb -> Printf.sprintf "%.1f" (float_of_int kb /. 1024.)
            | None -> "-"
          in
          Printf.printf "%-8s %9d %10d %10.1f %9.0f %9.0f %7.2f %6.3f %8.2f %9.0f %8d %8s\n"
            policy.Resa_sim.Policy.name stats.Resa_sim.Simulator.jobs
            stats.Resa_sim.Simulator.makespan s.Resa_sim.Metrics.mean_wait
            (Resa_sim.Metrics.Stream.wait_p50 ms)
            (Resa_sim.Metrics.Stream.wait_p95 ms)
            s.Resa_sim.Metrics.mean_slowdown s.Resa_sim.Metrics.utilization wall_s
            (float_of_int stats.Resa_sim.Simulator.jobs /. Float.max wall_s 1e-9)
            stats.Resa_sim.Simulator.max_live rss_mb)
        policies);
  (* The registry is process-global and cumulative across the sequential
     runs, like Prof counters: the exposition describes the whole replay. *)
  Option.iter
    (fun path ->
      if path = "-" then print_string (Resa_obs.Metrics.expose ())
      else Out_channel.with_open_text path (fun oc -> output_string oc (Resa_obs.Metrics.expose ())))
    prom_out

let replay_cmd =
  let swf =
    Arg.(
      value
      & opt (some string) None
      & info [ "swf" ] ~docv:"FILE"
          ~doc:"SWF trace file, streamed line by line (otherwise synthetic).")
  in
  let m = Arg.(value & opt int 128 & info [ "m" ] ~doc:"Number of machines.") in
  let n = Arg.(value & opt int 200_000 & info [ "n" ] ~doc:"Synthetic trace length.") in
  let max_runtime =
    Arg.(value & opt int 2000 & info [ "max-runtime" ] ~doc:"Synthetic max runtime.")
  in
  let mean_gap =
    (* 150 keeps the synthetic system stable (bounded queue) even under
       FCFS, so the replay's memory footprint is flat by default. *)
    Arg.(value & opt float 150.0 & info [ "mean-gap" ] ~doc:"Mean inter-arrival gap.")
  in
  let policy =
    Arg.(value & opt string "all" & info [ "policy" ] ~doc:"all, fcfs, easy, cons or lsrc.")
  in
  let overestimate =
    Arg.(
      value & opt float 2.0
      & info [ "overestimate" ]
          ~doc:"Mean walltime overestimation factor for synthetic traces (>= 1).")
  in
  let gc_every =
    (* The timeline's node arrays grow with the completions elapsed since
       the last compaction, so this interval sets the replay's peak
       footprint; 1000 holds a multi-million-job replay near ~13 MB at no
       measurable throughput cost. *)
    Arg.(
      value & opt int 1000
      & info [ "gc-every" ] ~docv:"K"
          ~doc:
            "Compact the capacity timeline every $(docv) job completions (0 disables); \
             compaction is invisible to scheduling decisions.")
  in
  let heartbeat_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "heartbeat" ] ~docv:"FILE"
          ~doc:
            "Write periodic telemetry snapshots (JSONL, one run-tagged row per interval: jobs, \
             queue depth, live jobs, P² wait quantiles, timeline nodes, wall-clock rate and \
             RSS) to $(docv) ('-' for stdout). Each line is flushed immediately, so \
             $(b,resa top) can follow the file or a pipe live.")
  in
  let hb_every =
    Arg.(
      value & opt int 0
      & info [ "heartbeat-every" ] ~docv:"K"
          ~doc:
            "Snapshot every $(docv) events (arrivals + completions). Default with --heartbeat \
             and no cadence: 65536.")
  in
  let hb_dt =
    Arg.(
      value & opt int 0
      & info [ "heartbeat-dt" ] ~docv:"T"
          ~doc:"Snapshot every $(docv) simulation time units (0 disables the time cadence).")
  in
  let prom_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "After the replay, write the metrics registry as a Prometheus text exposition to \
             $(docv) ('-' for stdout). Implies --metrics.")
  in
  let metrics_on =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Enable the typed metrics registry for this run (same switch as \
             $(b,RESA_METRICS=1)); heartbeat rows then carry the registry section.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Constant-memory streaming replay of a (synthetic or SWF) trace: incremental metrics, \
          no materialised job list, timeline history GC")
    Term.(
      const replay $ swf $ m $ n $ max_runtime $ mean_gap $ seed_arg $ policy $ overestimate
      $ gc_every $ heartbeat_out $ hb_every $ hb_dt $ prom_out $ metrics_on)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain path =
  let lines =
    if path = "-" then In_channel.input_lines stdin
    else
      match In_channel.with_open_text path In_channel.input_lines with
      | lines -> lines
      | exception Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
  in
  let events =
    List.concat
      (List.mapi
         (fun lineno line ->
           if String.trim line = "" then []
           else
             match Resa_obs.Trace.parse_line line with
             | Ok ev -> [ ev ]
             | Error msg ->
               Printf.eprintf "error: %s:%d: %s\n" path (lineno + 1) msg;
               exit 2)
         lines)
  in
  print_string (Resa_obs.Explain.render events)

let explain_cmd =
  let path =
    Arg.(
      value
      & pos 0 string "-"
      & info [] ~docv:"FILE" ~doc:"JSONL event trace from simulate --trace ('-' for stdin).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Replay a JSONL event trace and print, per job, why it started when it did")
    Term.(const explain $ path)

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

(* Live terminal view of a heartbeat stream. Reads rows as they arrive
   (a pipe from `resa replay --heartbeat -`, or a file being appended
   to), keeps the latest row plus short rate/occupancy histories per run,
   and redraws on every row when stdout is a terminal. On a non-terminal
   stdout it stays quiet and prints one final dashboard at end of
   stream, so `resa top < hb.jsonl` doubles as a summariser. *)

let top path =
  let ic =
    if path = "-" then stdin
    else
      try open_in path
      with Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
  in
  let module H = Resa_sim.Heartbeat in
  let hist_cap = 48 in
  let runs : (string, H.row * float list * float list) Hashtbl.t = Hashtbl.create 4 in
  let order = ref [] in
  let malformed = ref 0 in
  let observe (r : H.row) =
    let name = Option.value r.H.run ~default:"run" in
    let _, rates, lives =
      match Hashtbl.find_opt runs name with
      | Some s -> s
      | None ->
        order := name :: !order;
        (r, [], [])
    in
    let push v l = if List.length l >= hist_cap then v :: List.filteri (fun i _ -> i < hist_cap - 1) l else v :: l in
    let rate = match r.H.wall with Some w -> w.H.jobs_per_s | None -> Float.nan in
    Hashtbl.replace runs name
      (r, push rate rates, push (float_of_int r.H.hb.Resa_sim.Simulator.hb_live) lives)
  in
  let render () =
    let b = Buffer.create 1024 in
    List.iter
      (fun name ->
        let r, rates, lives = Hashtbl.find runs name in
        let hb = r.H.hb in
        let open Resa_sim.Simulator in
        Buffer.add_string b
          (Printf.sprintf "== %s ==  snapshot %d  t=%d  events=%d\n" name hb.hb_seq hb.hb_time
             hb.hb_events);
        Buffer.add_string b
          (Printf.sprintf "  jobs: %d admitted, %d completed, %d queued, %d live\n" hb.hb_admitted
             hb.hb_completed hb.hb_queued hb.hb_live);
        Buffer.add_string b
          (Printf.sprintf "  timeline: %d nodes, makespan %d\n" hb.hb_nodes hb.hb_makespan);
        let f v = if Float.is_finite v then Printf.sprintf "%.1f" v else "-" in
        Buffer.add_string b
          (Printf.sprintf "  wait: p50 %s  p95 %s  util %s\n" (f r.H.wait_p50) (f r.H.wait_p95)
             (f r.H.utilization));
        (match r.H.wall with
        | Some w ->
          Buffer.add_string b
            (Printf.sprintf "  wall: %.1fs  %.0f jobs/s  rss %s MB\n" w.H.elapsed_s w.H.jobs_per_s
               (match w.H.rss_mb with Some v -> Printf.sprintf "%.1f" v | None -> "-"))
        | None -> ());
        let spark label xs =
          if List.exists Float.is_finite xs then
            Buffer.add_string b
              (Printf.sprintf "  %-7s %s\n" label
                 (Resa_stats.Stats.sparkline ~width:hist_cap (List.rev xs)))
        in
        spark "live" lives;
        spark "jobs/s" rates)
      (List.rev !order);
    if !malformed > 0 then
      Buffer.add_string b (Printf.sprintf "(%d malformed line%s skipped)\n" !malformed
        (if !malformed = 1 then "" else "s"));
    Buffer.contents b
  in
  let tty = Unix.isatty Unix.stdout in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         (match H.parse_line line with
         | Ok row -> observe row
         | Error _ -> incr malformed);
         if tty then begin
           (* Home + clear-to-end: flicker-free redraw. *)
           print_string "\027[H\027[J";
           print_string (render ());
           flush stdout
         end
       end
     done
   with End_of_file -> ());
  if path <> "-" then close_in ic;
  if not tty then print_string (render ())

let top_cmd =
  let path =
    Arg.(
      value
      & pos 0 string "-"
      & info [] ~docv:"FILE"
          ~doc:"Heartbeat JSONL stream from replay --heartbeat ('-' for stdin).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal view of a heartbeat stream: per-run job counts, queue depth, wait \
          quantiles, timeline health and rate/occupancy sparklines")
    Term.(const top $ path)

(* ------------------------------------------------------------------ *)
(* benchdiff                                                           *)
(* ------------------------------------------------------------------ *)

let benchdiff old_path new_path threshold min_wall warn_only =
  let read path =
    let contents =
      if path = "-" then In_channel.input_all stdin
      else
        match In_channel.with_open_text path In_channel.input_all with
        | s -> s
        | exception Sys_error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2
    in
    match Resa_obs.Benchdiff.rows_of_string contents with
    | Ok rows -> rows
    | Error msg ->
      Printf.eprintf "error: %s: %s\n" path msg;
      exit 2
  in
  let old_rows = read old_path in
  let new_rows = read new_path in
  let report = Resa_obs.Benchdiff.compare_rows ~threshold ~min_wall ~old_rows ~new_rows () in
  print_string (Resa_obs.Benchdiff.render report);
  if report.Resa_obs.Benchdiff.regressions > 0 then
    if warn_only then print_endline "benchdiff: regressions found (warn-only, not failing)"
    else exit 1

let benchdiff_cmd =
  let old_path = Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc:"Baseline BENCH_*.json trajectory.") in
  let new_path = Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc:"Candidate BENCH_*.json trajectory.") in
  let threshold =
    Arg.(
      value & opt float 1.10
      & info [ "threshold" ] ~docv:"R"
          ~doc:"Flag pairs whose new/old wall ratio exceeds $(docv) (must be > 1).")
  in
  let min_wall =
    Arg.(
      value & opt float 0.05
      & info [ "min-wall" ] ~docv:"S"
          ~doc:"Timer noise floor: pairs under $(docv) seconds in both files never gate.")
  in
  let warn_only =
    Arg.(
      value & flag
      & info [ "warn-only" ]
          ~doc:"Report regressions but exit 0 — for advisory CI gates on noisy runners.")
  in
  Cmd.v
    (Cmd.info "benchdiff"
       ~doc:
         "Compare two bench trajectory JSON files row-by-row and exit non-zero on relative \
          slowdowns past the threshold")
    Term.(const benchdiff $ old_path $ new_path $ threshold $ min_wall $ warn_only)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace m n max_runtime mean_gap overestimate seed =
  let rng = Prng.create ~seed in
  let entries = Resa_swf.Swf.generate ~overestimate rng ~m ~n ~max_runtime ~mean_gap in
  print_string
    (Resa_swf.Swf.to_string
       ~comments:
         [
           "synthetic SWF trace generated by resa";
           Printf.sprintf "MaxProcs: %d" m;
           Printf.sprintf "seed: %d, overestimate: %.2f" seed overestimate;
         ]
       entries)

let trace_cmd =
  let m = Arg.(value & opt int 64 & info [ "m" ] ~doc:"Number of machines.") in
  let n = Arg.(value & opt int 200 & info [ "n" ] ~doc:"Trace length.") in
  let max_runtime = Arg.(value & opt int 200 & info [ "max-runtime" ] ~doc:"Max runtime.") in
  let mean_gap = Arg.(value & opt float 5.0 & info [ "mean-gap" ] ~doc:"Mean inter-arrival gap.") in
  let overestimate =
    Arg.(value & opt float 1.0 & info [ "overestimate" ] ~doc:"Mean walltime overestimation (>= 1).")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Emit a synthetic Standard Workload Format trace")
    Term.(const trace $ m $ n $ max_runtime $ mean_gap $ overestimate $ seed_arg)

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_main path =
  let inst = read_instance path in
  Format.printf "%a@." Instance.pp inst;
  Printf.printf "total work:        %d processor-units\n" (Instance.total_work inst);
  Printf.printf "pmax / qmax:       %d / %d\n" (Instance.pmax inst) (Instance.qmax inst);
  Printf.printf "peak blocked:      %d of %d processors\n" (Instance.umax inst) (Instance.m inst);
  Printf.printf "reservation horizon: %d\n" (Instance.horizon inst);
  (match Instance.alpha_interval inst with
  | Some (lo, hi) -> Printf.printf "alpha-restricted for alpha in [%.3f, %.3f]\n" lo hi
  | None -> print_endline "not alpha-restricted for any alpha");
  Printf.printf "lower bounds:      work=%d fit=%d serial=%d -> best=%d\n"
    (Resa_exact.Lower_bounds.work_bound inst)
    (Resa_exact.Lower_bounds.fit_bound inst)
    (Resa_exact.Lower_bounds.serial_bound inst)
    (Resa_exact.Lower_bounds.best inst);
  let horizon = max 1 (max (Instance.horizon inst) (Resa_exact.Lower_bounds.best inst)) in
  print_endline "availability profile:";
  print_string (Gantt.render_profile ~width:70 ~height:8 (Instance.availability inst) ~hi:horizon)

let info_cmd =
  let path = Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc:"Instance file ('-' for stdin).") in
  Cmd.v (Cmd.info "info" ~doc:"Summarise an instance file") Term.(const info_main $ path)

(* ------------------------------------------------------------------ *)
(* bounds                                                              *)
(* ------------------------------------------------------------------ *)

let bounds alphas =
  Printf.printf "%8s %12s %8s %8s\n" "alpha" "2/a(upper)" "B1" "B2";
  List.iter
    (fun (a, ub, b1, b2) -> Printf.printf "%8.3f %12.3f %8.3f %8.3f\n" a ub b1 b2)
    (Resa_analysis.Ratio_bounds.figure4_rows ~alphas)

let bounds_cmd =
  let alphas =
    Arg.(
      value
      & opt (list float) [ 0.25; 0.33; 0.5; 0.66; 0.75; 1.0 ]
      & info [ "alphas" ] ~doc:"Comma-separated alpha values.")
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the Figure 4 bound curves")
    Term.(const bounds $ alphas)

let () =
  let doc = "scheduling with reservations: algorithms, bounds and simulator" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "resa" ~version:"1.0.0" ~doc)
          [
            generate_cmd;
            solve_cmd;
            simulate_cmd;
            replay_cmd;
            explain_cmd;
            top_cmd;
            benchdiff_cmd;
            trace_cmd;
            bounds_cmd;
            info_cmd;
          ]))
