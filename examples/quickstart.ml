(* Quickstart: build an instance with a reservation, schedule it with LSRC,
   inspect and render the result.

   Run with: dune exec examples/quickstart.exe *)

open Resa_core
open Resa_algos

let () =
  (* A cluster with 8 processors. One reservation blocks 5 processors
     during [6, 10) — say, a maintenance window booked in advance. *)
  let inst =
    Instance.of_sizes ~m:8
      ~reservations:[ (6, 4, 5) ] (* start, duration, processors *)
      [
        (4, 3); (* job 0: 3 processors for 4 time units *)
        (2, 5); (* job 1 *)
        (7, 2); (* job 2 *)
        (3, 4); (* job 3 *)
        (5, 1); (* job 4 *)
        (2, 6); (* job 5 *)
      ]
  in
  Format.printf "%a@." Instance.pp inst;

  (* Schedule with list scheduling (LSRC), the algorithm the paper analyses;
     jobs are considered in FIFO order and greedily started whenever their
     whole execution window fits around the reservations. *)
  let schedule = Lsrc.run inst in

  (* Every schedule can be validated independently of the algorithm. *)
  (match Schedule.validate inst schedule with
  | Ok () -> print_endline "schedule is feasible"
  | Error v -> Format.printf "BUG: %a@." Schedule.pp_violation v);

  Printf.printf "makespan: %d\n" (Schedule.makespan inst schedule);
  Printf.printf "lower bound on the optimum: %d\n" (Resa_exact.Lower_bounds.best inst);
  Printf.printf "utilization of available processor-time: %.2f\n\n"
    (Schedule.utilization inst schedule);

  (* ASCII Gantt chart: one row per processor, '#' = reservation. *)
  print_string (Gantt.render ~width:60 inst schedule);

  (* The exact solver confirms how far from optimal we are. *)
  let r = Resa_exact.Bnb.solve inst in
  Printf.printf "\nexact optimum: %d (proved: %b)  LSRC/OPT = %.3f\n" r.makespan r.optimal
    (float_of_int (Schedule.makespan inst schedule) /. float_of_int r.makespan);

  (* Comparing a few priority rules is one line each. *)
  List.iter
    (fun p ->
      Printf.printf "%-10s -> makespan %d\n" (Priority.name p)
        (Schedule.makespan inst (Lsrc.run ~priority:p inst)))
    Priority.standard
