(* The paper's motivating scenario (section 1.2): a user books an advance
   reservation to demo an application at a scheduled meeting, while the
   batch queue keeps serving ordinary jobs around it. The site enforces the
   alpha cap of section 4.2, so reservations can never block more than
   (1 - alpha) of the machine and list scheduling keeps its 2/alpha
   guarantee.

   Run with: dune exec examples/grid_reservation.exe *)

open Resa_core

let m = 32
let alpha = 0.5

let () =
  Printf.printf "Cluster: %d processors; reservation admission cap: %.0f%% (alpha = %.2f)\n\n"
    m ((1.0 -. alpha) *. 100.0) alpha;

  (* --- 1. Users request advance reservations through the book. --- *)
  let book = Resa_sim.Reservation_book.create ~m ~alpha () in
  let requests =
    [
      ("demo at the 10:00 meeting", 100, 20, 16);
      ("cross-site co-allocation", 150, 30, 12);
      ("greedy user wants half+1", 120, 40, 17);
      (* exceeds the cap: rejected *)
      ("second demo, overlapping", 110, 30, 10);
      (* would overlap the first beyond the cap: rejected *)
    ]
  in
  List.iter
    (fun (who, start, p, q) ->
      match Resa_sim.Reservation_book.request book ~start ~p ~q with
      | Ok r -> Format.printf "GRANTED  %-28s -> %a@." who Reservation.pp r
      | Error e ->
        Format.printf "REJECTED %-28s (%a)@." who Resa_sim.Reservation_book.pp_rejection e)
    requests;
  let reservations = Resa_sim.Reservation_book.accepted book in

  (* --- 2. Meanwhile the batch queue receives ordinary jobs. --- *)
  let rng = Prng.create ~seed:2024 in
  let inst = Resa_gen.Random_inst.cluster_workload rng ~m ~n:60 ~max_runtime:60 in
  let arrivals = Resa_gen.Arrivals.poisson rng ~n:60 ~mean_gap:3.0 in
  let subs =
    List.init 60 (fun i ->
        Resa_sim.Simulator.{ job = Instance.job inst i; submit = arrivals.(i) })
  in

  (* --- 3. The site scheduler works around the granted reservations. --- *)
  Printf.printf "\n%s\n" Resa_sim.Metrics.header;
  List.iter
    (fun policy ->
      let trace = Resa_sim.Simulator.run ~policy ~m ~reservations subs in
      let s = Resa_sim.Metrics.summarize trace in
      print_endline (Resa_sim.Metrics.row ~name:policy.Resa_sim.Policy.name s))
    Resa_sim.Policy.all;

  (* --- 4. The reservation holders got exactly their windows. --- *)
  Printf.printf "\nBlocked-capacity profile accepted by the book:\n";
  print_string
    (Gantt.render_profile ~width:70 ~height:8
       (Resa_sim.Reservation_book.blocked_profile book)
       ~hi:200)
