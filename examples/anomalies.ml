(* Scheduling anomalies: greedy lists behave non-monotonically.

   The paper's guarantees (Theorem 2, Propositions 1-3) bound how far a list
   schedule can drift from the optimum; this example shows the drift is not
   even monotone — classic Graham anomalies transposed to rigid parallel
   tasks, found by the Resa_analysis.Anomaly searchers.

   Run with: dune exec examples/anomalies.exe *)

open Resa_core
open Resa_analysis

let render title inst =
  Printf.printf "%s\n" title;
  print_string (Gantt.render ~width:60 inst (Resa_algos.Lsrc.run inst))

let () =
  (* --- Anomaly 1: removing a job makes the schedule LONGER. --- *)
  let inst = Instance.of_sizes ~m:3 [ (4, 2); (5, 1); (1, 3); (3, 1); (2, 2); (5, 1) ] in
  (match Anomaly.find_removal_anomaly inst with
  | None -> print_endline "no removal anomaly (unexpected)"
  | Some a ->
    Printf.printf
      "Removing job J%d makes FIFO list scheduling slower: %d -> %d time units.\n\n" a.removed
      a.with_job a.without_job;
    render "With every job:" inst;
    let reduced =
      Instance.of_sizes ~m:3 [ (4, 2); (5, 1); (1, 3); (2, 2); (5, 1) ]
    in
    render "\nWithout J3 (one job less, one unit longer):" reduced);

  (* --- Anomaly 2: adding a processor makes the schedule LONGER. --- *)
  let inst = Instance.of_sizes ~m:3 [ (2, 2); (3, 2); (5, 1) ] in
  (match Anomaly.find_machine_anomaly inst with
  | None -> print_endline "no machine anomaly (unexpected)"
  | Some a ->
    Printf.printf
      "\nGrowing the cluster from %d to %d processors makes the same list schedule slower:\n\
       %d -> %d time units.\n\n"
      a.m_small a.m_large a.cmax_small a.cmax_large;
    render "Three processors:" inst;
    let bigger = Instance.of_sizes ~m:4 [ (2, 2); (3, 2); (5, 1) ] in
    render "\nFour processors:" bigger);

  (* --- The optimum has no such anomalies; the guarantee still caps the
         damage. --- *)
  let r3 = Resa_exact.Bnb.solve (Instance.of_sizes ~m:3 [ (2, 2); (3, 2); (5, 1) ]) in
  let r4 = Resa_exact.Bnb.solve (Instance.of_sizes ~m:4 [ (2, 2); (3, 2); (5, 1) ]) in
  Printf.printf "\nExact optima: %d on 3 processors, %d on 4 (monotone, as optima must be).\n"
    r3.makespan r4.makespan;

  (* --- Worst-order search: how bad can a list be on a given instance? --- *)
  let rng = Prng.create ~seed:11 in
  let inst = Resa_gen.Random_inst.alpha_restricted rng ~m:8 ~n:10 ~alpha:0.5 ~pmax:6 () in
  let order, worst = Anomaly.worst_order rng inst in
  let fifo = Schedule.makespan inst (Resa_algos.Lsrc.run inst) in
  let opt = (Resa_exact.Bnb.solve inst).makespan in
  Printf.printf
    "\nWorst-order search on a random alpha=0.5 instance: FIFO %d, worst list order %d,\n\
     optimum %d — all within the 2/alpha = 4x guarantee (%.2fx used).\n"
    fifo worst opt
    (float_of_int worst /. float_of_int opt);
  ignore order
