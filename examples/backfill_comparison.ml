(* FCFS vs conservative backfilling vs EASY vs list scheduling (section 2.2
   of the paper), offline and online, on the same workload.

   Offline: exact makespans against the certified lower bound.
   Online:  a synthetic SWF trace replayed through the event simulator.

   Run with: dune exec examples/backfill_comparison.exe *)

open Resa_core
open Resa_algos

let () =
  (* --- Offline comparison on the paper's FCFS-pathological family --- *)
  let m = 8 in
  let inst, opt = Resa_gen.Adversarial.fcfs_bad ~m ~len:24 in
  Printf.printf "FCFS-bad family (m=%d): optimal makespan = %d\n\n" m opt;
  let t = Resa_stats.Table.create ~headers:[ "algorithm"; "makespan"; "ratio vs OPT" ] in
  let row name sched =
    let c = Schedule.makespan inst sched in
    Resa_stats.Table.add_row t
      [ name; string_of_int c; Printf.sprintf "%.2f" (float_of_int c /. float_of_int opt) ]
  in
  row "FCFS" (Fcfs.run inst);
  row "conservative BF" (Backfill.conservative inst);
  row "EASY BF" (Backfill.easy inst);
  row "LSRC (list)" (Lsrc.run inst);
  row "LSRC + LPT" (Lsrc.run ~priority:Priority.Lpt inst);
  row "shelf FFDH" (Shelf.run Shelf.Ffdh inst);
  print_string (Resa_stats.Table.render t);
  Printf.printf
    "\nFCFS pays the full ratio-%d pathology; every backfilling variant collapses it.\n\n" m;

  (* --- Online comparison on a synthetic cluster trace --- *)
  let rng = Prng.create ~seed:7 in
  let entries = Resa_swf.Swf.generate rng ~m:64 ~n:300 ~max_runtime:120 ~mean_gap:2.0 in
  let subs =
    List.map
      (fun (job, submit) -> Resa_sim.Simulator.{ job; submit })
      (Resa_swf.Swf.to_workload entries ~m:64)
  in
  Printf.printf "Online replay of a synthetic SWF trace (m=64, n=300):\n\n%s\n"
    Resa_sim.Metrics.header;
  List.iter
    (fun policy ->
      let trace = Resa_sim.Simulator.run ~policy ~m:64 subs in
      print_endline
        (Resa_sim.Metrics.row ~name:policy.Resa_sim.Policy.name
           (Resa_sim.Metrics.summarize trace)))
    Resa_sim.Policy.all;
  Printf.printf
    "\nThe online ordering mirrors the offline one: backfilling recovers most of the\n\
     utilization FCFS wastes, and the aggressive list policy packs tightest at the\n\
     price of guaranteed-start fairness.\n"
