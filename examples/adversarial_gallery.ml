(* A gallery of the paper's worst-case constructions, rendered.

   Run with: dune exec examples/adversarial_gallery.exe *)

open Resa_core
open Resa_algos

let show title inst opt sched =
  Printf.printf "\n--- %s ---\n" title;
  let c = Schedule.makespan inst sched in
  Printf.printf "optimal = %d, schedule = %d, ratio = %.3f\n" opt c
    (float_of_int c /. float_of_int opt);
  print_string (Gantt.render ~width:66 inst sched)

let () =
  (* Figure 3 (Proposition 2), drawn at k=3 so the chart stays readable:
     m = 18, one reservation of 6 processors from t=3, LSRC ratio 7/3. *)
  let k = 3 in
  let inst, opt = Resa_gen.Adversarial.prop2 ~k in
  show
    (Printf.sprintf "Proposition 2 family, k=%d (alpha=2/3): LSRC trapped by the reservation" k)
    inst opt (Lsrc.run inst);
  Printf.printf
    "The k wide-short jobs (first in the list) fill the machine at t=0; afterwards the\n\
     reservation leaves room for only one long job at a time: ratio 2/a - 1 + a/2.\n";

  (* Theorem 2 tightness: Graham's 2 - 1/m is attained. *)
  let m = 4 in
  let inst, opt = Resa_gen.Adversarial.graham_tight ~m in
  show
    (Printf.sprintf "Graham-tight family, m=%d: FIFO list scheduling hits 2 - 1/m" m)
    inst opt (Lsrc.run inst);
  show "same instance, LPT priority: optimal" inst opt (Lsrc.run ~priority:Priority.Lpt inst);

  (* FCFS without backfilling: ratio -> m. *)
  let inst, opt = Resa_gen.Adversarial.fcfs_bad ~m:4 ~len:12 in
  show "FCFS pathology, m=4: wide jobs serialise the queue" inst opt (Fcfs.run inst);
  show "same instance under LSRC" inst opt (Lsrc.run inst);

  (* Theorem 1: the 3-PARTITION wall. *)
  let xs = [| 4; 4; 4; 4; 4; 6 |] in
  let inst = Resa_analysis.Transform.of_three_partition ~xs ~b:13 ~rho:1 in
  let r = Resa_exact.Bnb.solve inst in
  Printf.printf
    "\n--- Theorem 1 reduction (NO instance of 3-PARTITION, rho=1) ---\n\
     No subset of {4,4,4,4,4,6} sums to 13, so no schedule fills the first window and\n\
     the optimum is pushed past the wall: C* = %d (target for a YES instance: %d).\n"
    r.makespan
    (Resa_analysis.Transform.three_partition_target ~k:2 ~b:13);
  print_string (Gantt.render ~width:66 inst r.schedule)
