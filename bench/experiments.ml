(* The paper's figures and the supplementary tables, regenerated.
   Each experiment prints the series a plotting tool would consume;
   EXPERIMENTS.md records the paper-vs-measured comparison.

   Every replicated measurement fans out over the Resa_par domain pool
   (RESA_DOMAINS / --jobs): replicates are either seeded independently
   (fresh Prng per replicate, as before) or pre-split from one generator
   via Resa_par.parallel_replicates, and rows are rendered in input
   order — so the printed tables are byte-identical at any domain
   count. *)

open Resa_core
open Resa_algos
open Resa_gen
open Resa_analysis
open Resa_exact
open Resa_stats

let section title =
  Printf.printf "\n=== %s ===\n" title

(* When RESA_CSV_DIR is set, every experiment table is also written there as
   <experiment>.csv for external plotting. *)
let emit name t =
  Table.render t |> print_string;
  match Sys.getenv_opt "RESA_CSV_DIR" with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (name ^ ".csv") in
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Table.to_csv t));
    Printf.printf "[csv written to %s]\n" path

(* ------------------------------------------------------------------ *)
(* FIG1 / Theorem 1: the 3-PARTITION reduction makes any non-optimal
   schedule arbitrarily bad.                                           *)
(* ------------------------------------------------------------------ *)

let witness_schedule tp inst =
  (* Schedule group l inside window l of the reduction instance. *)
  match Threepartition.solve tp with
  | None -> None
  | Some groups ->
    let b = tp.Threepartition.b in
    let n = Array.length tp.Threepartition.xs in
    let starts = Array.make n 0 in
    let offset = Array.init (Threepartition.k tp) (fun l -> l * (b + 1)) in
    for i = 0 to n - 1 do
      let g = groups.(i) in
      starts.(i) <- offset.(g);
      offset.(g) <- offset.(g) + tp.Threepartition.xs.(i)
    done;
    let s = Schedule.make starts in
    if Schedule.is_feasible inst s then Some s else None

let fig1 () =
  section "FIG1 (Theorem 1): scheduling with unrestricted reservations is inapproximable";
  Printf.printf
    "3-PARTITION reduction on one machine: YES instances have C*=k(B+1)-1, but a list\n\
     schedule that misses the optimum is pushed past the final reservation of length\n\
     rho*k*(B+1)+1, so its ratio grows linearly with rho (unbounded).\n\n";
  let t = Table.create ~headers:[ "k"; "B"; "rho"; "C*"; "LSRC(shuffled)"; "ratio" ] in
  let rng = Prng.create ~seed:2007 in
  (* The reduction instances share one sequential generator stream (the
     rows are cheap); only the shuffled-order probes of each row fan
     out. *)
  List.iter
    (fun (k, rho) ->
      let b = 12 in
      let tp = Threepartition.random_yes rng ~k ~b in
      let inst = Transform.of_three_partition ~xs:tp.Threepartition.xs ~b ~rho in
      let cstar = Transform.three_partition_target ~k ~b in
      (match witness_schedule tp inst with
      | Some w -> assert (Schedule.makespan inst w = cstar)
      | None -> failwith "FIG1: planted YES instance has no witness");
      (* The exact single-machine DP certifies the optimum up to k = 6. *)
      if 3 * k <= Resa_exact.Single_machine.max_jobs then
        assert (Resa_exact.Single_machine.optimal_makespan inst = cstar);
      (* A list schedule over a few shuffled orders: take the worst. *)
      let worst =
        Resa_par.parallel_for_reduce ~lo:1 ~hi:6 ~init:0
          ~f:(fun seed ->
            Schedule.makespan inst (Lsrc.run ~priority:(Priority.Random seed) inst))
          ~combine:max ()
      in
      Table.add_row t
        [
          string_of_int k; string_of_int b; string_of_int rho; string_of_int cstar;
          string_of_int worst;
          Printf.sprintf "%.2f" (float_of_int worst /. float_of_int cstar);
        ])
    [ (2, 1); (2, 2); (2, 4); (3, 1); (3, 2); (3, 4); (4, 2); (4, 8); (5, 4); (6, 4) ];
  emit "fig1" t;
  Printf.printf "Paper: ratio exceeds any fixed rho => no approximation algorithm (Thm 1).\n"

(* ------------------------------------------------------------------ *)
(* FIG2 / Proposition 1: non-increasing reservations.                  *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "FIG2 (Proposition 1): non-increasing reservations keep LSRC within 2 - 1/m(C*)";
  let t =
    Table.create
      ~headers:[ "seed"; "m"; "C*"; "m(C*)"; "LSRC"; "ratio"; "bound"; "I''-preserved" ]
  in
  let replicate seed =
    let rng = Prng.create ~seed in
    let inst = Random_inst.non_increasing rng ~m:8 ~n:6 ~pmax:8 ~levels:3 in
    let r = Bnb.solve ~node_limit:2_000_000 inst in
    if not r.optimal then None
    else begin
      let lsrc = Schedule.makespan inst (Lsrc.run inst) in
      let m_at = Profile.value_at (Instance.availability inst) r.makespan in
      let bound = Ratio_bounds.prop1_bound ~m_at_opt:m_at in
      let ratio = float_of_int lsrc /. float_of_int r.makespan in
      let rigid, _ = Transform.to_rigid inst in
      let ok =
        Schedule.makespan rigid (Lsrc.run rigid)
        = max (Instance.horizon inst) lsrc
      in
      Some
        ( ratio /. bound,
          ok,
          [
            string_of_int seed; string_of_int (Instance.m inst); string_of_int r.makespan;
            string_of_int m_at; string_of_int lsrc;
            Printf.sprintf "%.3f" ratio; Printf.sprintf "%.3f" bound;
            (if ok then "yes" else "NO");
          ] )
    end
  in
  let results = Resa_par.parallel_map replicate (Array.init 12 (fun i -> i + 1)) in
  let worst = ref 0.0 in
  let preserved = ref 0 and total = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some (ratio_over_bound, ok, row) ->
        incr total;
        worst := Float.max !worst ratio_over_bound;
        if ok then incr preserved;
        Table.add_row t row)
    results;
  emit "fig2" t;
  Printf.printf
    "Worst ratio/bound = %.3f (must stay <= 1). Transformation I->I'' preserved LSRC on %d/%d instances.\n"
    !worst !preserved !total

(* ------------------------------------------------------------------ *)
(* FIG3 / Proposition 2: the adversarial family and its exact ratio.   *)
(* ------------------------------------------------------------------ *)

let fig3_table () =
  let t =
    Table.create
      ~headers:[ "k"; "alpha"; "m"; "C*"; "LSRC"; "measured"; "predicted"; "2/a (ub)" ]
  in
  let rows =
    Resa_par.parallel_map
      (fun k ->
        let inst, opt = Adversarial.prop2 ~k in
        let alpha = Adversarial.prop2_alpha ~k in
        let lsrc = Schedule.makespan inst (Lsrc.run inst) in
        assert (lsrc = Adversarial.prop2_expected_lsrc ~k);
        [
          string_of_int k;
          Printf.sprintf "%.3f" alpha;
          string_of_int (Instance.m inst);
          string_of_int opt; string_of_int lsrc;
          Printf.sprintf "%.4f" (float_of_int lsrc /. float_of_int opt);
          Printf.sprintf "%.4f" (Ratio_bounds.prop2_value ~alpha);
          Printf.sprintf "%.4f" (Ratio_bounds.upper_bound ~alpha);
        ])
      [| 3; 4; 5; 6; 7; 8; 9; 10 |]
  in
  Array.iter (Table.add_row t) rows;
  t

let fig3 () =
  section "FIG3 (Proposition 2): adversarial family, ratio = 2/a - 1 + a/2 (a = 2/k)";
  Printf.printf "The k=6 row is exactly the instance drawn in Figure 3 (m=180, C*=6, LSRC=31).\n\n";
  emit "fig3" (fig3_table ())

(* ------------------------------------------------------------------ *)
(* FIG4: bounds B1, B2 and the 2/a upper bound over an alpha grid,
   with the best ratio we can actually measure.                        *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "FIG4: upper and lower bounds for LSRC on a-RESASCHEDULING, as a function of alpha";
  let t =
    Table.create ~headers:[ "alpha"; "2/a (upper)"; "B1"; "B2"; "measured-worst" ]
  in
  let alphas = List.init 19 (fun i -> 0.05 *. float_of_int (i + 1) +. 0.0) in
  let row alpha =
    (* Best measured ratio at this alpha: the widest Prop 2 member that is
       still alpha-restricted (k = floor(2/alpha); its instance has
       U = (1-2/k)m <= (1-alpha)m and q <= m/k <= alpha*m for k >= 1/alpha),
       backed up by a random search against the certified lower bound. *)
    let measured =
      let adversarial =
        let k = int_of_float (2.0 /. alpha +. 1e-9) in
        if k >= 3 then begin
          let inst, opt = Adversarial.prop2 ~k in
          if Instance.is_alpha_restricted inst ~alpha then
            Some (float_of_int (Schedule.makespan inst (Lsrc.run inst)) /. float_of_int opt)
          else None
        end
        else None
      in
      let random_search =
        (* Random instances, each probed with the worst-order local search
           (Anomaly.worst_order) rather than a single FIFO run. *)
        let worst = ref 1.0 in
        for seed = 1 to 8 do
          let rng = Prng.create ~seed:(seed + (int_of_float (alpha *. 1000.) * 131)) in
          let m = 24 in
          if int_of_float (alpha *. float_of_int m) >= 1 then begin
            let inst = Random_inst.alpha_restricted rng ~m ~n:10 ~alpha ~pmax:8 () in
            let lb = Lower_bounds.best inst in
            if lb > 0 then begin
              let _, bad = Anomaly.worst_order ~restarts:3 ~iterations:40 rng inst in
              worst := Float.max !worst (float_of_int bad /. float_of_int lb)
            end
          end
        done;
        !worst
      in
      Float.max random_search (Option.value adversarial ~default:1.0)
    in
    [
      Printf.sprintf "%.2f" alpha;
      Printf.sprintf "%.3f" (Ratio_bounds.upper_bound ~alpha);
      Printf.sprintf "%.3f" (Ratio_bounds.b1 ~alpha);
      Printf.sprintf "%.3f" (Ratio_bounds.b2 ~alpha);
      Printf.sprintf "%.3f" measured;
    ]
  in
  List.iter (Table.add_row t) (Resa_par.parallel_map_list row alphas);
  emit "fig4" t;
  Printf.printf
    "measured-worst uses the Prop 2 instance when 2/a is an integer (exact), otherwise a\n\
     random search against the certified lower bound (an underestimate). B1 <= measured\n\
     cannot be expected off the 2/k grid; the plotted curves match Figure 4.\n"

(* ------------------------------------------------------------------ *)
(* T1 / Theorem 2: the Graham bound without reservations.              *)
(* ------------------------------------------------------------------ *)

let t1 () =
  section "T1 (Theorem 2): LSRC <= (2 - 1/m) OPT without reservations";
  let t = Table.create ~headers:[ "family"; "m"; "OPT"; "LSRC"; "ratio"; "2-1/m"; "lemma1" ] in
  let rows =
    Resa_par.parallel_map
      (fun m ->
        let inst, opt = Adversarial.graham_tight ~m in
        let s = Lsrc.run inst in
        let lsrc = Schedule.makespan inst s in
        [
          "tight"; string_of_int m; string_of_int opt; string_of_int lsrc;
          Printf.sprintf "%.4f" (float_of_int lsrc /. float_of_int opt);
          Printf.sprintf "%.4f" (Ratio_bounds.graham ~m);
          (if Graham.lemma1_holds inst s then "holds" else "VIOLATED");
        ])
      [| 2; 3; 4; 6; 8; 12 |]
  in
  Array.iter (Table.add_row t) rows;
  (* Random packed instances with known optimum; each replicate draws
     from a generator pre-split off the campaign seed. *)
  let packed =
    Resa_par.parallel_replicates (Prng.create ~seed:4242) ~n:40 (fun rng _ ->
        let p = Packed.generate rng ~m:8 ~c:24 ~target_jobs:20 () in
        let s = Lsrc.run p.instance in
        let ratio =
          float_of_int (Schedule.makespan p.instance s) /. float_of_int p.optimal
        in
        (ratio, Graham.lemma1_holds p.instance s))
  in
  let worst = ref 1.0 and lemma_ok = ref true in
  Array.iter
    (fun (ratio, ok) ->
      worst := Float.max !worst ratio;
      if not ok then lemma_ok := false)
    packed;
  Table.add_row t
    [
      "packed(rand)"; "8"; "24"; "-"; Printf.sprintf "max %.4f" !worst;
      Printf.sprintf "%.4f" (Ratio_bounds.graham ~m:8);
      (if !lemma_ok then "holds" else "VIOLATED");
    ];
  emit "t1" t;
  Printf.printf "The tight family attains the bound exactly; random packings stay below it.\n"

(* ------------------------------------------------------------------ *)
(* T2 / Proposition 3: random a-restricted workloads, priority rules.  *)
(* ------------------------------------------------------------------ *)

let t2 () =
  section "T2 (Proposition 3): random a-RESASCHEDULING, ratio vs lower bound per priority rule";
  let t =
    Table.create
      ~headers:
        [ "alpha"; "2/a"; "FIFO max"; "FIFO avg"; "LPT max"; "LPT avg"; "SPT max"; "CONS max" ]
  in
  List.iter
    (fun alpha ->
      let replicate seed =
        let rng = Prng.create ~seed:(seed * 7919) in
        let inst = Random_inst.alpha_restricted rng ~m:32 ~n:25 ~alpha ~pmax:10 () in
        let lb = Lower_bounds.best inst in
        if lb <= 0 then None
        else begin
          let ratio s = float_of_int (Schedule.makespan inst s) /. float_of_int lb in
          Some
            ( ratio (Lsrc.run ~priority:Priority.Fifo inst),
              ratio (Lsrc.run ~priority:Priority.Lpt inst),
              ratio (Lsrc.run ~priority:Priority.Spt inst),
              ratio (Backfill.conservative inst) )
        end
      in
      let results = Resa_par.parallel_map replicate (Array.init 30 (fun i -> i + 1)) in
      let fifo = ref [] and lpt = ref [] and spt = ref [] and cons = ref [] in
      Array.iter
        (function
          | None -> ()
          | Some (f, l, s, c) ->
            fifo := f :: !fifo;
            lpt := l :: !lpt;
            spt := s :: !spt;
            cons := c :: !cons)
        results;
      let mx xs = List.fold_left Float.max 1.0 xs in
      Table.add_row t
        [
          Printf.sprintf "%.2f" alpha;
          Printf.sprintf "%.2f" (Ratio_bounds.upper_bound ~alpha);
          Printf.sprintf "%.3f" (mx !fifo);
          Printf.sprintf "%.3f" (Stats.mean !fifo);
          Printf.sprintf "%.3f" (mx !lpt);
          Printf.sprintf "%.3f" (Stats.mean !lpt);
          Printf.sprintf "%.3f" (mx !spt);
          Printf.sprintf "%.3f" (mx !cons);
        ])
    [ 0.25; 0.5; 0.75; 1.0 ];
  emit "t2" t;
  Printf.printf
    "All ratios sit far below 2/a; LPT (the conclusion's suggested priority) is on par\n\
     with or better than FIFO on average.\n"

(* ------------------------------------------------------------------ *)
(* T3: online simulation with an admission-capped reservation book.    *)
(* ------------------------------------------------------------------ *)

let t3 () =
  section "T3: online policies on a synthetic SWF trace with admitted reservations (a=0.5)";
  let m = 64 and n = 250 in
  let rng = Prng.create ~seed:777 in
  let entries = Resa_swf.Swf.generate rng ~m ~n ~max_runtime:200 ~mean_gap:6.0 in
  let workload = Resa_swf.Swf.to_workload entries ~m in
  (* Admit periodic demo reservations under the alpha cap. *)
  let book = Resa_sim.Reservation_book.create ~m ~alpha:0.5 () in
  let granted = ref 0 and rejected = ref 0 in
  for i = 0 to 19 do
    match
      Resa_sim.Reservation_book.request book ~start:(100 + (i * 137))
        ~p:(40 + (i mod 3 * 25))
        ~q:(16 + (i mod 4 * 12))
    with
    | Ok _ -> incr granted
    | Error _ -> incr rejected
  done;
  let reservations = Resa_sim.Reservation_book.accepted book in
  Printf.printf "Reservation book: %d granted, %d rejected by the alpha cap.\n\n" !granted !rejected;
  let subs =
    List.map (fun (job, submit) -> Resa_sim.Simulator.{ job; submit }) workload
  in
  print_endline Resa_sim.Metrics.header;
  (* One simulation per policy, in parallel; each policy value carries its
     own planning state and is used by exactly one task. *)
  let rows =
    Resa_par.parallel_map_list
      (fun policy ->
        let trace = Resa_sim.Simulator.run ~policy ~m ~reservations subs in
        let s = Resa_sim.Metrics.summarize trace in
        Resa_sim.Metrics.row ~name:policy.Resa_sim.Policy.name s)
      Resa_sim.Policy.all
  in
  List.iter print_endline rows;
  Printf.printf
    "\nExpected shape: FCFS worst on wait/utilization; backfilling recovers most of it;\n\
     the aggressive list policy (LSRC) packs tightest, as the paper's theory predicts.\n"

(* ------------------------------------------------------------------ *)
(* Ablation: what the alpha cap buys (DESIGN.md design-choice bench).  *)
(* ------------------------------------------------------------------ *)

let ablation_alpha_cap () =
  section "ABLATION: the alpha admission cap is what makes LSRC approximable";
  Printf.printf
    "A perfectly packed workload (OPT = 10) plus one 'wall' reservation starting exactly\n\
     at the optimum (the Theorem 1 trap). A capped system (a = 0.5: reject q > (1-a)m)\n\
     refuses wide walls, so LSRC keeps its 2/a guarantee; an uncapped system admits\n\
     them, and a single unlucky list order lands behind the wall.\n\n";
  let t =
    Table.create ~headers:[ "wall-q"; "admission"; "wall?"; "worst LSRC"; "ratio vs OPT" ]
  in
  let m = 16 and c = 10 in
  let cap = 8 (* (1 - 0.5) * m *) in
  let combos =
    List.concat_map (fun wall_q -> List.map (fun capped -> (wall_q, capped)) [ true; false ])
      [ 6; 12; 16 ]
  in
  let row (wall_q, capped) =
    let admitted = (not capped) || wall_q <= cap in
    let reservations =
      if admitted then [ (c, 100, wall_q) ] (* start, p, q *) else []
    in
    let rng = Prng.create ~seed:4 in
    let packed = Packed.generate rng ~m ~c ~target_jobs:18 () in
    (* Halve any job wider than alpha*m so the *job* side of the
       alpha-restriction holds too (the witness packing survives). *)
    let rec narrow (p, q) = if q <= m / 2 then [ (p, q) ] else narrow (p, q / 2) @ [ (p, q - (q / 2)) ] in
    let jobs =
      Array.to_list (Instance.jobs packed.instance)
      |> List.concat_map (fun j -> narrow (Job.p j, Job.q j))
    in
    let inst = Instance.of_sizes ~m ~reservations jobs in
    let worst = ref 0 in
    for seed = 1 to 8 do
      let s = Lsrc.run ~priority:(Priority.Random seed) inst in
      worst := max !worst (Schedule.makespan inst s)
    done;
    [
      string_of_int wall_q;
      (if capped then "capped" else "uncapped");
      (if admitted then "admitted" else "rejected");
      string_of_int !worst;
      Printf.sprintf "%.2f" (float_of_int !worst /. float_of_int c);
    ]
  in
  List.iter (Table.add_row t) (Resa_par.parallel_map_list row combos);
  emit "ablation" t;
  Printf.printf
    "With the full-width wall admitted, any imperfect order pays the whole wall length;\n\
     the cap bounds the damage exactly as section 4.2 intends.\n"

(* ------------------------------------------------------------------ *)
(* T4: sensitivity of the online policies to walltime overestimation.  *)
(* ------------------------------------------------------------------ *)

let t4 () =
  section "T4: walltime overestimation (requested vs actual runtimes), m=32";
  Printf.printf
    "Users request more walltime than they use; planners reserve the request and the\n\
     unused tail is released at completion. Factor 1.0 = perfect estimates.\n\n";
  let t =
    Table.create
      ~headers:[ "est-factor"; "policy"; "Cmax"; "mean_wait"; "bnd_slowdn"; "util" ]
  in
  let n_policies = List.length Resa_sim.Policy.all in
  (* Flattened (factor, policy) grid. The trace of a factor is regenerated
     inside each task from its fixed seed — cheap, and it keeps every task
     independent of the others. *)
  let combos =
    List.concat_map
      (fun factor -> List.init n_policies (fun i -> (factor, i)))
      [ 1.0; 2.0; 5.0 ]
  in
  let row (factor, policy_idx) =
    let rng = Prng.create ~seed:31337 in
    let entries =
      Resa_swf.Swf.generate ~overestimate:factor rng ~m:32 ~n:150 ~max_runtime:100
        ~mean_gap:6.0
    in
    let triples = Resa_swf.Swf.to_estimated_workload entries ~m:32 in
    let subs =
      List.map (fun (job, submit, _) -> Resa_sim.Simulator.{ job; submit }) triples
    in
    let estimates = Array.of_list (List.map (fun (_, _, e) -> e) triples) in
    let policy = List.nth Resa_sim.Policy.all policy_idx in
    let trace = Resa_sim.Simulator.run_estimated ~policy ~m:32 ~estimates subs in
    let s = Resa_sim.Metrics.summarize trace in
    [
      Printf.sprintf "%.1f" factor;
      policy.Resa_sim.Policy.name;
      string_of_int s.makespan;
      Printf.sprintf "%.1f" s.mean_wait;
      Printf.sprintf "%.2f" s.mean_bounded_slowdown;
      Printf.sprintf "%.3f" s.utilization;
    ]
  in
  List.iter (Table.add_row t) (Resa_par.parallel_map_list row combos);
  emit "t4" t;
  Printf.printf
    "The classic effect: FCFS is estimate-insensitive, planners (CONS/EASY) degrade\n\
     with inflated requests because backfill windows look too small, while the\n\
     aggressive list policy recovers capacity the moment the tails are released.\n"

(* ------------------------------------------------------------------ *)
(* T5: the price of non-preemption (related-work model, paper §1.3).   *)
(* ------------------------------------------------------------------ *)

let t5 () =
  section "T5: price of non-preemption — sequential tasks under reservations (§1.3 models)";
  Printf.printf
    "Earlier availability-constraint work allows preemption; the paper does not. For\n\
     sequential tasks (q=1) the preemptive optimum is computed exactly (max-flow over\n\
     availability segments), giving the gap the non-preemptive model pays.\n\n";
  let t =
    Table.create
      ~headers:[ "seed"; "m"; "n"; "preempt-OPT"; "non-preempt-OPT"; "LSRC"; "np/p"; "lsrc/p" ]
  in
  let replicate seed =
    let rng = Prng.create ~seed:(seed * 613) in
    let m = Prng.int_incl rng ~lo:2 ~hi:4 in
    let n = Prng.int_incl rng ~lo:5 ~hi:8 in
    let jobs =
      List.init n (fun i -> Job.make ~id:i ~p:(Prng.int_incl rng ~lo:1 ~hi:9) ~q:1)
    in
    let reservations =
      [
        Reservation.make ~id:0 ~start:(Prng.int_incl rng ~lo:2 ~hi:6)
          ~p:(Prng.int_incl rng ~lo:2 ~hi:6) ~q:(m - 1);
      ]
    in
    let inst = Instance.create_exn ~m ~jobs ~reservations in
    let pre = (Preemptive.optimal inst).makespan in
    let np = Bnb.solve ~node_limit:2_000_000 inst in
    if not np.optimal then None
    else begin
      let lsrc = Schedule.makespan inst (Lsrc.run inst) in
      Some
        ( float_of_int np.makespan /. float_of_int pre,
          [
            string_of_int seed; string_of_int m; string_of_int n; string_of_int pre;
            string_of_int np.makespan; string_of_int lsrc;
            Printf.sprintf "%.3f" (float_of_int np.makespan /. float_of_int pre);
            Printf.sprintf "%.3f" (float_of_int lsrc /. float_of_int pre);
          ] )
    end
  in
  let results = Resa_par.parallel_map replicate (Array.init 12 (fun i -> i + 1)) in
  let gaps = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some (gap, row) ->
        gaps := gap :: !gaps;
        Table.add_row t row)
    results;
  emit "t5" t;
  Printf.printf
    "Mean non-preemptive/preemptive gap: %.3f — the paper's model pays a real but\n\
     modest price for forbidding preemption, while keeping schedules implementable\n\
     on clusters without checkpointing.\n"
    (Resa_stats.Stats.mean !gaps)

let run_all () =
  fig1 ();
  fig2 ();
  fig3 ();
  fig4 ();
  t1 ();
  t2 ();
  t3 ();
  t4 ();
  t5 ();
  ablation_alpha_cap ()
