(* Best-effort git revision for the bench trajectory records: resolved by
   reading .git directly (no subprocess, no dependency), "unknown" when
   anything is missing — benches must run from exported tarballs too. *)

let read_line_of path =
  try
    In_channel.with_open_text path (fun ic ->
        Option.map String.trim (In_channel.input_line ic))
  with Sys_error _ -> None

let rec find_git_dir dir =
  let cand = Filename.concat dir ".git" in
  if Sys.file_exists cand then
    if Sys.is_directory cand then Some cand
    else
      (* Worktree/submodule: a file containing "gitdir: <path>". *)
      match read_line_of cand with
      | Some line when String.length line > 8 && String.sub line 0 8 = "gitdir: " ->
        Some (String.sub line 8 (String.length line - 8))
      | _ -> None
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_git_dir parent

let packed_ref git_dir name =
  try
    In_channel.with_open_text (Filename.concat git_dir "packed-refs") (fun ic ->
        let rec scan () =
          match In_channel.input_line ic with
          | None -> None
          | Some line ->
            if String.length line > 41 && String.sub line 41 (String.length line - 41) = name
            then Some (String.sub line 0 40)
            else scan ()
        in
        scan ())
  with Sys_error _ -> None

let resolve () =
  match find_git_dir (Sys.getcwd ()) with
  | None -> "unknown"
  | Some git_dir -> (
    match read_line_of (Filename.concat git_dir "HEAD") with
    | None -> "unknown"
    | Some head ->
      let hash =
        if String.length head > 5 && String.sub head 0 5 = "ref: " then begin
          let name = String.sub head 5 (String.length head - 5) in
          match read_line_of (Filename.concat git_dir name) with
          | Some h -> Some h
          | None -> packed_ref git_dir name
        end
        else Some head
      in
      (match hash with
      | Some h when String.length h >= 12 -> String.sub h 0 12
      | Some h when h <> "" -> h
      | _ -> "unknown"))

let get = lazy (resolve ())
let short () = Lazy.force get
