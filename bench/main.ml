(* Benchmark harness: regenerates every figure of the paper (FIG1-FIG4),
   the supplementary validation tables (T1-T3), the alpha-cap ablation, and
   Bechamel microbenchmarks. `dune exec bench/main.exe` prints everything;
   pass experiment names (fig1 fig3 t2 perf ...) to run a subset. *)

let registry =
  [
    ("fig1", Experiments.fig1);
    ("fig2", Experiments.fig2);
    ("fig3", Experiments.fig3);
    ("fig4", Experiments.fig4);
    ("t1", Experiments.t1);
    ("t2", Experiments.t2);
    ("t3", Experiments.t3);
    ("t4", Experiments.t4);
    ("t5", Experiments.t5);
    ("ablation", Experiments.ablation_alpha_cap);
    ("perf", Perf.run);
    ("scaling", Perf.scaling);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
    Experiments.run_all ();
    Perf.run ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt (String.lowercase_ascii name) registry with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat " " (List.map fst registry));
          exit 1)
      names
