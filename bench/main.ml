(* Benchmark harness: regenerates every figure of the paper (FIG1-FIG4),
   the supplementary validation tables (T1-T5), the alpha-cap ablation, and
   Bechamel microbenchmarks. `dune exec bench/main.exe` prints everything;
   pass experiment names (fig1 fig3 t2 perf ...) to run a subset.

   Flags:
     --jobs N     executor pool size (overrides RESA_DOMAINS; default:
                  Domain.recommended_domain_count, capped at 8)
     --json PATH  write BENCH_<experiment>.json trajectory records for the
                  perf experiments into directory PATH (also settable via
                  RESA_BENCH_JSON)
     --small      reduced problem sizes for the scaling sweep (CI smoke) *)

open Resa_bench

let registry =
  [
    ("fig1", Experiments.fig1);
    ("fig2", Experiments.fig2);
    ("fig3", Experiments.fig3);
    ("fig4", Experiments.fig4);
    ("t1", Experiments.t1);
    ("t2", Experiments.t2);
    ("t3", Experiments.t3);
    ("t4", Experiments.t4);
    ("t5", Experiments.t5);
    ("ablation", Experiments.ablation_alpha_cap);
    ("perf", Perf.run);
    ("scaling", Perf.scaling);
    ("sim", Perf.sim_scaling);
    ("bnb", Bnb_bench.run);
    (* Registry-only: replays up to 10M jobs per policy, so it is not in
       the default phase list below. *)
    ("replay", Replay_bench.run);
  ]

let usage () =
  Printf.eprintf "usage: main.exe [--jobs N] [--json DIR] [--small] [experiment ...]\n";
  Printf.eprintf "available experiments: %s\n" (String.concat " " (List.map fst registry));
  exit 1

let () =
  let rec parse names = function
    | [] -> List.rev names
    | "--jobs" :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 ->
        Resa_par.set_domains n;
        parse names rest
      | _ ->
        Printf.eprintf "--jobs expects a positive integer, got %S\n" v;
        exit 1)
    | "--json" :: dir :: rest ->
      Bench_json.set_dir dir;
      parse names rest
    | "--small" :: rest ->
      Perf.small := true;
      parse names rest
    | ("--jobs" | "--json") :: [] -> usage ()
    | name :: rest -> parse (name :: names) rest
  in
  let names = parse [] (List.tl (Array.to_list Sys.argv)) in
  match names with
  | [] ->
    (* Full run: every experiment in the canonical order, each timed, with
       the per-phase wall clocks recorded to BENCH_phases.json when a JSON
       directory is configured. Stdout is identical either way. *)
    let phases =
      [
        "fig1"; "fig2"; "fig3"; "fig4"; "t1"; "t2"; "t3"; "t4"; "t5"; "ablation"; "perf";
        "sim"; "bnb";
      ]
    in
    let records =
      List.map
        (fun name ->
          let t0 = Resa_obs.Prof.now_ns () in
          (List.assoc name registry) ();
          let wall_s = float_of_int (Resa_obs.Prof.now_ns () - t0) /. 1e9 in
          Bench_json.
            {
              experiment = "phases";
              n = 0;
              algo = name;
              wall_s;
              speedup = None;
              domains = Resa_par.domain_count ();
              seed = 0;
            })
        phases
    in
    Bench_json.write "phases" records
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt (String.lowercase_ascii name) registry with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat " " (List.map fst registry));
          exit 1)
      names
