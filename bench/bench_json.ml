(* Machine-readable bench trajectory. When a destination directory is
   configured (--json PATH on the harness, or the RESA_BENCH_JSON
   environment variable), each perf experiment also writes
   BENCH_<experiment>.json: a JSON array of uniform records

     {experiment, n, algo, wall_s, speedup, domains, seed, git_rev, ts, host}

   so future PRs can diff wall-clock numbers against a recorded
   baseline instead of eyeballing table output (`resa benchdiff`). [ts]
   is the ISO-8601 UTC instant and [host] the machine the row was
   measured on — provenance for judging whether two trajectories are
   comparable at all. *)

type record = {
  experiment : string;
  n : int;  (* problem size of the row; 0 when not applicable *)
  algo : string;  (* algorithm / benchmark name *)
  wall_s : float;  (* measured wall-clock seconds (per run) *)
  speedup : float option;  (* vs the experiment's reference, if any *)
  domains : int;  (* executor pool size during the measurement *)
  seed : int;  (* PRNG seed of the measured workload *)
}

let configured_dir = ref None
let set_dir d = configured_dir := Some d

let dir () =
  match !configured_dir with
  | Some _ as d -> d
  | None -> Sys.getenv_opt "RESA_BENCH_JSON"

(* Minimal JSON string escaping: the only dynamic strings are benchmark
   names and the git revision. *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let iso8601_utc () =
  let t = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900) (t.Unix.tm_mon + 1)
    t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec

let hostname () = try Unix.gethostname () with Unix.Unix_error _ -> "unknown"

let record_to_json ~ts ~host r =
  Printf.sprintf
    "{\"experiment\": \"%s\", \"n\": %d, \"algo\": \"%s\", \"wall_s\": %.6f, \"speedup\": %s, \
     \"domains\": %d, \"seed\": %d, \"git_rev\": \"%s\", \"ts\": \"%s\", \"host\": \"%s\"}"
    (escape r.experiment) r.n (escape r.algo) r.wall_s
    (match r.speedup with None -> "null" | Some s -> Printf.sprintf "%.3f" s)
    r.domains r.seed
    (escape (Git_rev.short ()))
    (escape ts) (escape host)

let write experiment records =
  match dir () with
  | None -> ()
  | Some d ->
    if not (Sys.file_exists d) then Sys.mkdir d 0o755;
    let path = Filename.concat d (Printf.sprintf "BENCH_%s.json" experiment) in
    (* One stamp per file: all rows of an experiment come from the same
       harness invocation. *)
    let ts = iso8601_utc () and host = hostname () in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc "[\n";
        List.iteri
          (fun i r ->
            if i > 0 then Out_channel.output_string oc ",\n";
            Out_channel.output_string oc "  ";
            Out_channel.output_string oc (record_to_json ~ts ~host r))
          records;
        Out_channel.output_string oc "\n]\n");
    Printf.printf "[bench json written to %s]\n" path
