(* Streaming replay throughput: jobs/second and peak RSS for each native
   online policy over a synthetic SWF stream, at trace lengths far beyond
   what the materialising path could hold. The point of the series is the
   memory row staying flat as n grows 50x — the engine keeps only the live
   set, the metrics are incremental, and the timeline is compacted as the
   replay advances.

   Registry-only: the full sweep replays 10M jobs per policy, so it is not
   part of the default `bench/main.exe` phase list. Run it explicitly with
   `dune exec bench/main.exe -- replay` (or `--small replay` in CI).

   JSON rows (experiment = "replay"): wall-clock rows carry
   algo = "<policy>" with wall_s in seconds; peak-RSS rows carry
   algo = "rss_mb:<policy>" with wall_s holding the high-water mark in MB
   (the record schema has one float slot; the prefix disambiguates). RSS is
   a process-wide cumulative high-water mark, so within one harness run it
   is monotone across rows — only the first row of a given size regime
   measures that regime cleanly. *)

open Resa_core

let replay_seed = 4242

let run () =
  Printf.printf "\n=== PERF: Streaming replay throughput (m=128, mean_gap=150, gc_every=1000) ===\n";
  let m = 128 and max_runtime = 2000 and mean_gap = 150.0 and overestimate = 2.0 in
  let gc_every = 1000 in
  let sizes = if !Perf.small then [ 20_000 ] else [ 200_000; 1_000_000; 10_000_000 ] in
  let t =
    Resa_stats.Table.create
      ~headers:[ "n"; "policy"; "wall_s"; "jobs/s"; "max_live"; "util"; "rss_MB" ]
  in
  let records = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (policy : Resa_sim.Policy.t) ->
          let rng = Prng.create ~seed:replay_seed in
          let src =
            Resa_swf.Swf_stream.synthetic ~overestimate rng ~m ~n ~max_runtime ~mean_gap
          in
          let ms = Resa_sim.Metrics.Stream.create ~m ~reservations:[] () in
          let t0 = Resa_obs.Prof.now_ns () in
          let stats =
            Resa_sim.Simulator.run_stream ~gc_every
              ~on_record:(Resa_sim.Metrics.Stream.observe ms) ~policy ~m
              (fun () ->
                Option.map
                  (fun (a : Resa_swf.Swf_stream.arrival) ->
                    Resa_sim.Simulator.{ job = a.job; submit = a.submit; estimate = a.estimate })
                  (src ()))
          in
          let wall_s = float_of_int (Resa_obs.Prof.now_ns () - t0) /. 1e9 in
          let s = Resa_sim.Metrics.Stream.summary ms in
          let rss_mb =
            match Resa_obs.Prof.peak_rss_kb () with
            | Some kb -> float_of_int kb /. 1024.
            | None -> Float.nan
          in
          Resa_stats.Table.add_row t
            [
              string_of_int n;
              policy.Resa_sim.Policy.name;
              Printf.sprintf "%.2f" wall_s;
              Printf.sprintf "%.0f" (float_of_int stats.Resa_sim.Simulator.jobs /. Float.max wall_s 1e-9);
              string_of_int stats.Resa_sim.Simulator.max_live;
              Printf.sprintf "%.3f" s.Resa_sim.Metrics.utilization;
              (if Float.is_nan rss_mb then "-" else Printf.sprintf "%.1f" rss_mb);
            ];
          let mk algo wall_s =
            Bench_json.
              {
                experiment = "replay";
                n;
                algo;
                wall_s;
                speedup = None;
                domains = Resa_par.domain_count ();
                seed = replay_seed;
              }
          in
          records := mk ("rss_mb:" ^ policy.Resa_sim.Policy.name) rss_mb :: !records;
          records := mk policy.Resa_sim.Policy.name wall_s :: !records)
        Resa_sim.Policy.all)
    sizes;
  print_string (Resa_stats.Table.render t);
  Bench_json.write "replay" (List.rev !records)
