(* Bechamel microbenchmarks: algorithm and data-structure throughput. *)

open Bechamel
open Resa_core
open Resa_gen

(* Reduced-size mode for CI smoke runs (--small on the harness). *)
let small = ref false

let workload n =
  let rng = Prng.create ~seed:1234 in
  Random_inst.cluster_workload rng ~m:128 ~n ~max_runtime:100

let reserved_workload_seed = 1235

let reserved_workload n =
  let rng = Prng.create ~seed:reserved_workload_seed in
  Random_inst.alpha_restricted rng ~m:128 ~n ~alpha:0.5 ~pmax:100 ~n_reservations:(n / 5) ()

let algorithm_tests =
  let make_algo name f =
    List.map
      (fun n ->
        let inst = reserved_workload n in
        Test.make ~name:(Printf.sprintf "%s/n=%d" name n) (Staged.stage (fun () -> f inst)))
      [ 50; 200 ]
  in
  make_algo "lsrc" (fun i -> ignore (Resa_algos.Lsrc.run i))
  @ make_algo "fcfs" (fun i -> ignore (Resa_algos.Fcfs.run i))
  @ make_algo "conservative" (fun i -> ignore (Resa_algos.Backfill.conservative i))
  @ make_algo "easy" (fun i -> ignore (Resa_algos.Backfill.easy i))
  @ make_algo "shelf-ffdh" (fun i -> ignore (Resa_algos.Shelf.run Resa_algos.Shelf.Ffdh i))

let profile_tests =
  let inst = workload 500 in
  let sched = Resa_algos.Lsrc.run inst in
  let usage = Schedule.usage inst sched in
  [
    Test.make ~name:"profile/usage-build/n=500"
      (Staged.stage (fun () -> ignore (Schedule.usage inst sched)));
    Test.make ~name:"profile/earliest-fit"
      (Staged.stage (fun () -> ignore (Profile.earliest_fit usage ~from:0 ~dur:50 ~need:100)));
    Test.make ~name:"profile/integral"
      (Staged.stage (fun () -> ignore (Profile.integral_on usage ~lo:0 ~hi:10_000)));
  ]

let heap_tests =
  [
    Test.make ~name:"event-heap/push-pop-1k"
      (Staged.stage (fun () ->
           let h = Resa_sim.Event_heap.create () in
           for i = 0 to 999 do
             Resa_sim.Event_heap.push h ~time:((i * 7919) mod 1000) i
           done;
           while not (Resa_sim.Event_heap.is_empty h) do
             ignore (Resa_sim.Event_heap.pop h)
           done));
  ]

let simulator_tests =
  let subs =
    let inst = workload 200 in
    let rng = Prng.create ~seed:7 in
    let arr = Arrivals.poisson rng ~n:200 ~mean_gap:5.0 in
    List.init 200 (fun i -> Resa_sim.Simulator.{ job = Instance.job inst i; submit = arr.(i) })
  in
  [
    Test.make ~name:"simulator/easy/n=200"
      (Staged.stage (fun () ->
           ignore
             (Resa_sim.Simulator.run ~policy:Resa_sim.Policy.easy ~m:128 subs)));
  ]

let all_tests = algorithm_tests @ profile_tests @ heap_tests @ simulator_tests

(* Parse the trailing "n=<d>" convention of benchmark names, for the JSON
   records ("lsrc/n=200" -> 200); 0 when the name carries no size. *)
let size_of_name name =
  match String.rindex_opt name '=' with
  | None -> 0
  | Some i -> (
    match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) with
    | Some n -> n
    | None -> 0)

(* --- timeline vs profile scaling series --------------------------------- *)

(* Whole-schedule wall clock at n in {1k, 5k, 20k}: the segment-tree
   timeline path against the retained Profile-backed reference. The
   quadratic reference is capped per algorithm so the series itself stays
   tractable; above the cap only the timeline column is measured. LSRC is
   left uncapped — its 20k row is the headline before/after number.

   Workload construction fans out over the Resa_par pool; the timed
   sections themselves run sequentially so the measurements never contend
   for cores. *)
let scaling () =
  Printf.printf
    "\n=== PERF: Timeline vs Profile scaling (one full run, m=128, n/5 reservations) ===\n";
  let time f x y =
    let t0 = Sys.time () in
    ignore (f x y);
    Sys.time () -. t0
  in
  let pretty s =
    if s >= 1.0 then Printf.sprintf "%.2f s" s else Printf.sprintf "%.1f ms" (s *. 1000.)
  in
  let algos =
    [
      ("lsrc", Resa_algos.Lsrc.run_order, Resa_algos.Lsrc.run_order_reference, max_int);
      ("fcfs", Resa_algos.Fcfs.run_order, Resa_algos.Fcfs.run_order_reference, 5_000);
      ( "conservative",
        Resa_algos.Backfill.conservative_order,
        Resa_algos.Backfill.conservative_order_reference,
        5_000 );
      ("easy", Resa_algos.Backfill.easy_order, Resa_algos.Backfill.easy_order_reference, 1_000);
    ]
  in
  let sizes = if !small then [| 1_000 |] else [| 1_000; 5_000; 20_000 |] in
  let t_prep0 = Resa_obs.Prof.now_ns () in
  let prepared =
    Resa_par.parallel_map
      (fun n ->
        let inst = reserved_workload n in
        (n, inst, Resa_algos.Priority.order Resa_algos.Priority.Fifo inst))
      sizes
  in
  let prepare_s = float_of_int (Resa_obs.Prof.now_ns () - t_prep0) /. 1e9 in
  let t_meas0 = Resa_obs.Prof.now_ns () in
  let t =
    Resa_stats.Table.create ~headers:[ "algorithm"; "n"; "timeline"; "profile"; "speedup" ]
  in
  let records = ref [] in
  Array.iter
    (fun (n, inst, order) ->
      List.iter
        (fun (name, fast, reference, ref_cap) ->
          let fast_s = time fast inst order in
          let speedup =
            if n > ref_cap then None
            else begin
              let ref_s = time reference inst order in
              Some (ref_s, ref_s /. Float.max fast_s 1e-9)
            end
          in
          let ref_cell, speedup_cell =
            match speedup with
            | None -> ("(skipped)", "-")
            | Some (ref_s, sp) -> (pretty ref_s, Printf.sprintf "%.1fx" sp)
          in
          records :=
            Bench_json.
              {
                experiment = "scaling";
                n;
                algo = name;
                wall_s = fast_s;
                speedup = Option.map snd speedup;
                domains = Resa_par.domain_count ();
                seed = reserved_workload_seed;
              }
            :: !records;
          Resa_stats.Table.add_row t
            [ name; string_of_int n; pretty fast_s; ref_cell; speedup_cell ])
        algos)
    prepared;
  let measure_s = float_of_int (Resa_obs.Prof.now_ns () - t_meas0) /. 1e9 in
  print_string (Resa_stats.Table.render t);
  (* Per-phase wall-time rows ride along in the same trajectory file; the
     "phase:" prefix keeps them apart from per-algorithm measurements. *)
  let phase name wall_s =
    Bench_json.
      {
        experiment = "scaling";
        n = 0;
        algo = "phase:" ^ name;
        wall_s;
        speedup = None;
        domains = Resa_par.domain_count ();
        seed = reserved_workload_seed;
      }
  in
  Bench_json.write "scaling"
    (List.rev !records @ [ phase "prepare" prepare_s; phase "measure" measure_s ])

(* --- simulator scaling series ------------------------------------------- *)

let sim_workload_seed = 1236

(* Reserved online workload: alpha-restricted jobs (mean work ~1.6k
   core-units, so ~13 time units of service at m=128) arriving with mean
   gap 16 — utilization ~0.8, queues stay bounded but never empty. *)
let sim_subs n =
  let rng = Prng.create ~seed:sim_workload_seed in
  let inst =
    Random_inst.alpha_restricted rng ~m:128 ~n ~alpha:0.5 ~pmax:100
      ~n_reservations:(n / 20) ()
  in
  let arr = Arrivals.poisson rng ~n ~mean_gap:16.0 in
  let subs =
    List.init n (fun i -> Resa_sim.Simulator.{ job = Instance.job inst i; submit = arr.(i) })
  in
  (subs, Array.to_list (Instance.reservations inst))

(* Whole-simulation wall clock under all four online policies, timeline-
   native engine vs the retained Profile-snapshot reference policies on the
   same seed. The reference pays one forward-profile export per decision;
   that snapshot walks every not-yet-reached reservation edge, so the
   reference engine is effectively quadratic in n and is capped per policy
   (EASY is allowed the 50k column — that speedup is the headline number —
   the rest stop at 10k). Above the cap only the native column is
   measured; the EASY row at 200k is native-only by construction. *)
let sim_scaling () =
  Printf.printf
    "\n=== PERF: simulator scaling (one full replay, m=128, n/20 reservations) ===\n";
  let time f x =
    let t0 = Resa_obs.Prof.now_ns () in
    ignore (f x);
    float_of_int (Resa_obs.Prof.now_ns () - t0) /. 1e9
  in
  let pretty s =
    if s >= 1.0 then Printf.sprintf "%.2f s" s else Printf.sprintf "%.1f ms" (s *. 1000.)
  in
  let policies =
    [
      ("fcfs", Resa_sim.Policy.fcfs, Resa_sim.Policy.fcfs_reference, 10_000);
      ( "conservative",
        Resa_sim.Policy.conservative,
        Resa_sim.Policy.conservative_reference,
        10_000 );
      ("easy", Resa_sim.Policy.easy, Resa_sim.Policy.easy_reference, 50_000);
      ("lsrc", Resa_sim.Policy.aggressive, Resa_sim.Policy.aggressive_reference, 10_000);
    ]
  in
  let sizes = if !small then [| 2_000 |] else [| 10_000; 50_000; 200_000 |] in
  let t_prep0 = Resa_obs.Prof.now_ns () in
  let prepared = Resa_par.parallel_map (fun n -> (n, sim_subs n)) sizes in
  let prepare_s = float_of_int (Resa_obs.Prof.now_ns () - t_prep0) /. 1e9 in
  let t_meas0 = Resa_obs.Prof.now_ns () in
  let t =
    Resa_stats.Table.create ~headers:[ "policy"; "n"; "timeline"; "profile"; "speedup" ]
  in
  let records = ref [] in
  Array.iter
    (fun (n, (subs, reservations)) ->
      List.iter
        (fun (name, native, reference, ref_cap) ->
          let run policy =
            Resa_sim.Simulator.run ~policy ~m:128 ~reservations subs
          in
          let fast_s = time run native in
          let speedup =
            if n > ref_cap then None
            else begin
              let ref_s = time run reference in
              Some (ref_s, ref_s /. Float.max fast_s 1e-9)
            end
          in
          let ref_cell, speedup_cell =
            match speedup with
            | None -> ("(skipped)", "-")
            | Some (ref_s, sp) -> (pretty ref_s, Printf.sprintf "%.1fx" sp)
          in
          records :=
            Bench_json.
              {
                experiment = "sim";
                n;
                algo = name;
                wall_s = fast_s;
                speedup = Option.map snd speedup;
                domains = Resa_par.domain_count ();
                seed = sim_workload_seed;
              }
            :: !records;
          Resa_stats.Table.add_row t
            [ name; string_of_int n; pretty fast_s; ref_cell; speedup_cell ])
        policies)
    prepared;
  let measure_s = float_of_int (Resa_obs.Prof.now_ns () - t_meas0) /. 1e9 in
  print_string (Resa_stats.Table.render t);
  let phase name wall_s =
    Bench_json.
      {
        experiment = "sim";
        n = 0;
        algo = "phase:" ^ name;
        wall_s;
        speedup = None;
        domains = Resa_par.domain_count ();
        seed = sim_workload_seed;
      }
  in
  Bench_json.write "sim"
    (List.rev !records @ [ phase "prepare" prepare_s; phase "measure" measure_s ])

let run () =
  Printf.printf "\n=== PERF: Bechamel microbenchmarks (ns/run, OLS fit) ===\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false () in
  let t = Resa_stats.Table.create ~headers:[ "benchmark"; "time/run"; "r^2" ] in
  let records = ref [] in
  let t_bench0 = Resa_obs.Prof.now_ns () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      (* Bechamel hands results back in a hash table: sort by benchmark name
         so table rows and JSON records come out in a deterministic order. *)
      let rows =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Hashtbl.fold (fun name raw acc -> (name, raw) :: acc) results [])
      in
      List.iter
        (fun (name, raw) ->
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ v ] -> v
            | _ -> Float.nan
          in
          let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square est) in
          let pretty =
            if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          records :=
            Bench_json.
              {
                experiment = "perf";
                n = size_of_name name;
                algo = name;
                wall_s = (if Float.is_nan ns then 0.0 else ns /. 1e9);
                speedup = None;
                domains = Resa_par.domain_count ();
                seed = reserved_workload_seed;
              }
            :: !records;
          Resa_stats.Table.add_row t [ name; pretty; Printf.sprintf "%.3f" r2 ])
        rows)
    all_tests;
  let microbench_s = float_of_int (Resa_obs.Prof.now_ns () - t_bench0) /. 1e9 in
  print_string (Resa_stats.Table.render t);
  Bench_json.write "perf"
    (List.rev !records
    @ [
        {
          Bench_json.experiment = "perf";
          n = 0;
          algo = "phase:microbench";
          wall_s = microbench_s;
          speedup = None;
          domains = Resa_par.domain_count ();
          seed = reserved_workload_seed;
        };
      ]);
  scaling ()
