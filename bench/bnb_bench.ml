(* Exact-solver benchmark: the speculative timeline-native Bnb.solve against
   the frozen persistent-profile Bnb.solve_reference, on the FIG2 staircase
   family and on random reserved instances.

   Each family is a batch of instances (consecutive seeds) solved to
   optimality; batches keep single-instance search-tree noise out of the
   ratios. Reported per family:

     - time-to-optimal wall clock, reference vs speculative (sequential),
     - node throughput (nodes/sec) for both solvers — the data-structure
       win, independent of the speculative solver's stronger pruning,
     - speculative wall clock at pool sizes 1, 2 and 4.

   JSON rows (experiment "bnb") follow the usual record shape; throughput
   rows use the "nps:" algo prefix with wall_s holding nodes/sec and
   speedup holding the nodes/sec ratio over the reference (same field
   overloading convention as the "phase:" rows). *)

open Resa_core
open Resa_gen

let node_limit = 50_000_000

let staircase_seed = 2001

(* Staircase availability (the FIG2 family) with enough identical-size
   collisions to exercise the twin chain; the "reserved" family packs a few
   wide jobs over hundreds of reservations, where the candidate set is
   dominated by availability breakpoints — the regime the timeline-native
   bounds are built for (the reference pays per-segment profile scans and
   O(k) persistent reserves there). Reserved instances are hand-picked
   seeds whose search trees close within the node budget; neighbouring
   seeds can be orders of magnitude harder. *)
let families () =
  let staircase seed n =
    let rng = Prng.create ~seed in
    Random_inst.non_increasing rng ~m:8 ~n ~pmax:8 ~levels:3
  in
  let reserved (m, n, pmax, res, horizon, alpha, seed) =
    let rng = Prng.create ~seed in
    Random_inst.alpha_restricted rng ~m ~n ~alpha ~pmax ~n_reservations:res ~horizon ()
  in
  let batch mk seed0 count n = List.init count (fun i -> mk (seed0 + i) n) in
  if !Perf.small then
    [
      ("staircase", staircase_seed, batch staircase staircase_seed 3 7);
      ("reserved", 2, List.map reserved [ (128, 6, 300, 150, 8000, 0.6, 2) ]);
    ]
  else
    [
      ("staircase", staircase_seed, batch staircase staircase_seed 5 9);
      ( "reserved",
        1,
        List.map reserved
          [
            (64, 6, 200, 100, 4000, 0.6, 1);
            (64, 7, 200, 100, 4000, 0.7, 2);
            (128, 6, 300, 150, 8000, 0.6, 2);
          ] );
    ]

let time f =
  let t0 = Resa_obs.Prof.now_ns () in
  let r = f () in
  (r, float_of_int (Resa_obs.Prof.now_ns () - t0) /. 1e9)

let pretty s =
  if s >= 1.0 then Printf.sprintf "%.2f s" s else Printf.sprintf "%.1f ms" (s *. 1000.)

let run () =
  Printf.printf "\n=== BNB: speculative exact solver vs reference (time to optimal) ===\n";
  let t =
    Resa_stats.Table.create
      ~headers:
        [ "family"; "insts"; "reference"; "speculative"; "speedup"; "nps-ratio"; "pool=2"; "pool=4" ]
  in
  let records = ref [] in
  let emit ~n ~algo ~wall_s ~speedup ~seed =
    records :=
      Bench_json.
        {
          experiment = "bnb";
          n;
          algo;
          wall_s;
          speedup;
          domains = Resa_par.domain_count ();
          seed;
        }
      :: !records
  in
  List.iter
    (fun (family, seed, insts) ->
      let count = List.length insts in
      let total_n = List.fold_left (fun a i -> a + Instance.n_jobs i) 0 insts in
      let solve_all solver =
        List.fold_left
          (fun (cmaxes, nodes) inst ->
            let r = solver ?node_limit:(Some node_limit) inst in
            if not r.Resa_exact.Bnb.optimal then
              failwith (Printf.sprintf "bnb bench: %s instance not solved to optimality" family);
            (r.Resa_exact.Bnb.makespan :: cmaxes, nodes + r.Resa_exact.Bnb.nodes))
          ([], 0) insts
      in
      let (ref_cmaxes, ref_nodes), ref_s = time (fun () -> solve_all Resa_exact.Bnb.solve_reference) in
      let (new_cmaxes, new_nodes), seq_s =
        time (fun () -> Resa_par.with_domains 1 (fun () -> solve_all Resa_exact.Bnb.solve))
      in
      if ref_cmaxes <> new_cmaxes then
        failwith (Printf.sprintf "bnb bench: makespan mismatch on family %s" family);
      let pool d =
        snd (time (fun () -> Resa_par.with_domains d (fun () -> solve_all Resa_exact.Bnb.solve)))
      in
      let pool2_s = pool 2 and pool4_s = pool 4 in
      let nps_ref = float_of_int ref_nodes /. Float.max ref_s 1e-9 in
      let nps_new = float_of_int new_nodes /. Float.max seq_s 1e-9 in
      let speedup = ref_s /. Float.max seq_s 1e-9 in
      let nps_ratio = nps_new /. Float.max nps_ref 1e-9 in
      emit ~n:total_n ~algo:(family ^ ":reference") ~wall_s:ref_s ~speedup:None ~seed;
      emit ~n:total_n ~algo:(family ^ ":solve") ~wall_s:seq_s ~speedup:(Some speedup) ~seed;
      emit ~n:total_n ~algo:("nps:" ^ family) ~wall_s:nps_new ~speedup:(Some nps_ratio) ~seed;
      emit ~n:total_n ~algo:(family ^ ":solve@d2") ~wall_s:pool2_s
        ~speedup:(Some (seq_s /. Float.max pool2_s 1e-9)) ~seed;
      emit ~n:total_n ~algo:(family ^ ":solve@d4") ~wall_s:pool4_s
        ~speedup:(Some (seq_s /. Float.max pool4_s 1e-9)) ~seed;
      Resa_stats.Table.add_row t
        [
          family;
          string_of_int count;
          pretty ref_s;
          pretty seq_s;
          Printf.sprintf "%.1fx" speedup;
          Printf.sprintf "%.1fx" nps_ratio;
          pretty pool2_s;
          pretty pool4_s;
        ])
    (families ());
  print_string (Resa_stats.Table.render t);
  Bench_json.write "bnb" (List.rev !records)
